// Microbenchmarks of the core data structures (google-benchmark):
// the hash tables behind the LOT/LTT (FlatHashMap and its chained
// oracle, A/B), the circular cell list, the event queue, block
// encode/decode, CRC32C, the metrics hot path (typed handle vs
// deprecated string lookup), and a whole-simulation throughput
// measurement. main() also hand-times the metrics comparison and the
// 10^7-entry flat-vs-chained table gate (Find ns/op and RSS bytes per
// entry) and records both in results/BENCH_micro_structures.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/manager_factory.h"
#include "db/database.h"
#include "harness/report.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "util/chained_hash_map.h"
#include "util/crc32c.h"
#include "util/flat_hash_map.h"
#include "util/intrusive_list.h"
#include "util/random.h"
#include "util/string_util.h"
#include "wal/block_format.h"
#include "wal/block_pool.h"

namespace {

using namespace elog;

void BM_ChainedHashMapInsertErase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ChainedHashMap<uint64_t, uint64_t> map;
    for (int i = 0; i < n; ++i) map.Insert(static_cast<uint64_t>(i), i * 3);
    for (int i = 0; i < n; ++i) map.Erase(static_cast<uint64_t>(i));
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_ChainedHashMapInsertErase)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_ChainedHashMapFind(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  ChainedHashMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < n; ++i) map.Insert(i, i);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(rng.NextBounded(n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainedHashMapFind)->Arg(1 << 8)->Arg(1 << 16);

void BM_FlatHashMapInsertErase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    FlatHashMap<uint64_t, uint64_t> map;
    for (int i = 0; i < n; ++i) map.Insert(static_cast<uint64_t>(i), i * 3);
    for (int i = 0; i < n; ++i) map.Erase(static_cast<uint64_t>(i));
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_FlatHashMapInsertErase)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_FlatHashMapFind(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  FlatHashMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < n; ++i) map.Insert(i, i);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(rng.NextBounded(n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatHashMapFind)->Arg(1 << 8)->Arg(1 << 16);

struct BenchNode {
  ListNode link;
  uint64_t payload = 0;
};

void BM_CellListPushRemove(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<BenchNode> nodes(n);
  for (auto _ : state) {
    IntrusiveCircularList<BenchNode, &BenchNode::link> list;
    for (auto& node : nodes) list.PushBack(&node);
    while (!list.empty()) list.Remove(list.front());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_CellListPushRemove)->Arg(1 << 8)->Arg(1 << 14);

void BM_CellListMoveToBack(benchmark::State& state) {
  const int n = 1024;
  std::vector<BenchNode> nodes(n);
  IntrusiveCircularList<BenchNode, &BenchNode::link> list;
  for (auto& node : nodes) list.PushBack(&node);
  for (auto _ : state) {
    list.MoveToBack(list.front());  // the recirculation primitive
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CellListMoveToBack);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < n; ++i) {
      queue.Schedule(static_cast<SimTime>(rng.NextBounded(1'000'000)), [] {});
    }
    SimTime t;
    while (!queue.empty()) queue.PopNext(&t);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1 << 10)->Arg(1 << 14);

/// Capture shape of a realistic simulator callback (device completion:
/// owner pointer + address + a couple of counters). At 40 bytes it
/// exceeds libstdc++'s 16-byte std::function SBO, so the legacy queue
/// heap-allocates per event while InlineCallback stays in its slab.
struct RealisticCapture {
  void* owner;
  uint64_t address;
  uint64_t seq;
  uint64_t attempt;
  uint64_t flags;
};

/// Minimal replica of the pre-rework event queue: (time, seq)-ordered
/// binary heap of entries owning type-erased std::function callbacks,
/// with an unordered_set of cancelled ids consulted at pop. Kept here as
/// the comparison baseline for the slab/InlineCallback design.
class LegacyEventQueueShim {
 public:
  uint64_t Schedule(SimTime time, std::function<void()> fn) {
    const uint64_t id = next_seq_++;
    heap_.push_back(Entry{time, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later);
    return id;
  }
  void Cancel(uint64_t id) { cancelled_.insert(id); }
  bool empty() {
    SkipCancelled();
    return heap_.empty();
  }
  std::function<void()> PopNext(SimTime* time) {
    SkipCancelled();
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    *time = entry.time;
    return std::move(entry.fn);
  }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  static bool Later(const Entry& a, const Entry& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
  void SkipCancelled() {
    while (!heap_.empty() && cancelled_.count(heap_.front().seq) > 0) {
      std::pop_heap(heap_.begin(), heap_.end(), Later);
      cancelled_.erase(heap_.back().seq);
      heap_.pop_back();
    }
  }
  std::vector<Entry> heap_;
  std::unordered_set<uint64_t> cancelled_;
  uint64_t next_seq_ = 1;
};

void BM_EventQueueRealisticLegacy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  uint64_t sink = 0;
  for (auto _ : state) {
    LegacyEventQueueShim queue;
    for (int i = 0; i < n; ++i) {
      RealisticCapture c{&sink, rng.NextUint64(), static_cast<uint64_t>(i),
                         0, 0};
      queue.Schedule(static_cast<SimTime>(rng.NextBounded(1'000'000)),
                     [c, &sink] { sink += c.address + c.seq; });
    }
    SimTime t;
    while (!queue.empty()) queue.PopNext(&t)();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_EventQueueRealisticLegacy)->Arg(1 << 10)->Arg(1 << 14);

void BM_EventQueueRealisticInline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  uint64_t sink = 0;
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < n; ++i) {
      RealisticCapture c{&sink, rng.NextUint64(), static_cast<uint64_t>(i),
                         0, 0};
      queue.Schedule(static_cast<SimTime>(rng.NextBounded(1'000'000)),
                     [c, &sink] { sink += c.address + c.seq; });
    }
    SimTime t;
    while (!queue.empty()) queue.PopNext(&t)();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_EventQueueRealisticInline)->Arg(1 << 10)->Arg(1 << 14);

void BM_BlockEncodeDecode(benchmark::State& state) {
  std::vector<wal::LogRecord> records;
  for (uint32_t i = 0; i < 20; ++i) {
    records.push_back(wal::LogRecord::MakeData(
        i, 1000 + i, i * 17, 100, wal::ComputeValueDigest(i, i * 17, 1000 + i)));
  }
  for (auto _ : state) {
    wal::BlockImage image = wal::EncodeBlock(0, 42, records);
    auto decoded = wal::DecodeBlock(image);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetItemsProcessed(state.iterations() * records.size());
}
BENCHMARK(BM_BlockEncodeDecode);

/// Same work as BM_BlockEncodeDecode, but round-tripping through a
/// BlockImagePool and the *Into variants so buffers are reused.
void BM_BlockEncodeDecodePooled(benchmark::State& state) {
  std::vector<wal::LogRecord> records;
  for (uint32_t i = 0; i < 20; ++i) {
    records.push_back(wal::LogRecord::MakeData(
        i, 1000 + i, i * 17, 100, wal::ComputeValueDigest(i, i * 17, 1000 + i)));
  }
  wal::BlockImagePool pool;
  wal::DecodedBlock decoded;
  for (auto _ : state) {
    wal::BlockImage image = pool.Acquire();
    wal::EncodeBlockInto(0, 42, records, &image);
    benchmark::DoNotOptimize(wal::DecodeBlockInto(image, &decoded).ok());
    pool.Release(std::move(image));
  }
  state.SetItemsProcessed(state.iterations() * records.size());
}
BENCHMARK(BM_BlockEncodeDecodePooled);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(2048)->Arg(1 << 16);

void BM_Crc32cTable(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::ExtendTable(0, data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32cTable)->Arg(2048)->Arg(1 << 16);

void BM_Crc32cSlice8(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crc32c::ExtendSlice8(0, data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32cSlice8)->Arg(2048)->Arg(1 << 16);

void BM_Crc32cHardware(benchmark::State& state) {
  if (!crc32c::HardwareAvailable()) {
    state.SkipWithError("no CRC32C hardware on this host");
    return;
  }
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crc32c::ExtendHardware(0, data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32cHardware)->Arg(2048)->Arg(1 << 16);

/// Registers the metric names a realistic single-run registry holds
/// (manager + device + drives + workload), so the lookup benchmarks
/// search a map of representative size.
void PopulateRunLikeRegistry(sim::MetricsRegistry* metrics) {
  for (const char* name :
       {"el.appended", "el.forwarded", "el.recirculated", "el.discarded",
        "el.flush_enqueues", "el.urgent_flushes", "el.flushed", "el.killed",
        "el.aborted", "el.unsafe_commit_drops", "el.unsafe_committing_kills",
        "el.log_write_retries", "el.log_writes_lost", "el.flush_failures",
        "el.steals", "el.compensations", "log_device.writes",
        "log_device.write_retries", "log_device.writes_lost",
        "log_device.bit_rot_writes", "flush_drive.flushes",
        "flush_drive.retries", "flush_drive.lost", "workload.started",
        "workload.committed", "workload.aborted", "workload.killed",
        "workload.updates"}) {
    metrics->GetCounter(name);
  }
  for (int g = 0; g < 2; ++g) {
    const std::string gen = "el.gen" + std::to_string(g);
    metrics->GetGauge(gen + ".occupancy");
    metrics->GetCounter(gen + ".forwarded");
    metrics->GetCounter(gen + ".recirculated");
    metrics->GetCounter("log_device.writes.gen" + std::to_string(g));
  }
  for (int d = 0; d < 10; ++d) {
    metrics->GetGauge("flush_drive.d" + std::to_string(d) + ".pending");
  }
  metrics->GetGauge("el.memory_bytes");
}

/// The instrumentation hot path after the API redesign: a Counter*
/// acquired once at construction, bumped directly.
void BM_MetricTypedIncr(benchmark::State& state) {
  sim::MetricsRegistry metrics;
  PopulateRunLikeRegistry(&metrics);
  sim::Counter* counter = metrics.GetCounter("el.gen1.recirculated");
  for (auto _ : state) {
    counter->Incr();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricTypedIncr);

/// The per-event string path the handle convention replaced: every
/// increment re-resolves the name through the registry map.
void BM_MetricStringIncr(benchmark::State& state) {
  sim::MetricsRegistry metrics;
  PopulateRunLikeRegistry(&metrics);
  for (auto _ : state) {
    metrics.GetCounter("el.gen1.recirculated")->Incr();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricStringIncr);

/// Log-manager hot path: one begin + 2 updates + commit cycle per
/// iteration, driven directly (no workload generator), with periodic
/// simulated-time advancement so group commit and flushing progress.
void BM_ElManagerTransactionCycle(benchmark::State& state) {
  sim::Simulator sim;
  LogManagerOptions options;
  options.generation_blocks = {18, 12};
  disk::LogStorage storage(options.generation_blocks);
  disk::LogDevice device(&sim, &storage, options.log_write_latency, nullptr);
  disk::DriveArray drives(&sim, options.num_flush_drives,
                          options.num_objects, options.flush_transfer_time,
                          nullptr);
  LogManagerSet set = MakeLogManager(ManagerKind::kEphemeral, options, &sim,
                                     &device, &drives, nullptr);
  LogManager& manager = *set.manager;
  // Long calibration runs push this fixed {18,12} log into saturation,
  // where a kill storm can take the freshly begun transaction along with
  // a batch of stalled committers. tids are monotone and the loop's tid
  // is always the newest, so "max killed == tid" detects its death even
  // when the storm keeps killing older tids afterwards.
  class MaxKillListener : public KillListener {
   public:
    void OnTransactionKilled(TxId tid) override {
      if (max_killed == kInvalidTxId || tid > max_killed) max_killed = tid;
    }
    TxId max_killed = kInvalidTxId;
  } listener;
  manager.set_kill_listener(&listener);
  workload::TransactionType type;
  type.lifetime = SecondsToSimTime(1);
  Rng rng(3);
  int64_t iterations = 0;
  for (auto _ : state) {
    TxId tid = manager.BeginTransaction(type);
    if (listener.max_killed != tid) {
      manager.WriteUpdate(tid, rng.NextBounded(options.num_objects), 100);
    }
    if (listener.max_killed != tid) {
      manager.WriteUpdate(tid, rng.NextBounded(options.num_objects), 100);
    }
    if (listener.max_killed != tid) {
      manager.Commit(tid, [](TxId) {});
    }
    if (++iterations % 16 == 0) {
      manager.ForceWriteOpenBuffers();
      sim.RunUntil(sim.Now() + 50 * kMillisecond);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ElManagerTransactionCycle);

/// Forwarding pressure: a long-lived transaction's records being pushed
/// through a tiny generation 0 (head advance + relocation per record).
void BM_ElManagerForwardingPressure(benchmark::State& state) {
  sim::Simulator sim;
  LogManagerOptions options;
  options.generation_blocks = {4, 400};
  disk::LogStorage storage(options.generation_blocks);
  disk::LogDevice device(&sim, &storage, options.log_write_latency, nullptr);
  disk::DriveArray drives(&sim, options.num_flush_drives,
                          options.num_objects, options.flush_transfer_time,
                          nullptr);
  LogManagerSet set = MakeLogManager(ManagerKind::kEphemeral, options, &sim,
                                     &device, &drives, nullptr);
  LogManager& manager = *set.manager;
  // Rotate long-lived transactions (commit each after 500 updates) so the
  // large generation 1 absorbs forwarded records without ever saturating.
  // The keeper is a long-lived kActive transaction — the kill policy's
  // preferred victim once a long calibration run builds up pressure — so
  // track kills and restart it when it dies (keeper is always the newest
  // tid, so "max killed == keeper" is exact).
  class MaxKillListener : public KillListener {
   public:
    void OnTransactionKilled(TxId tid) override {
      if (max_killed == kInvalidTxId || tid > max_killed) max_killed = tid;
    }
    TxId max_killed = kInvalidTxId;
  } listener;
  manager.set_kill_listener(&listener);
  workload::TransactionType type;
  type.lifetime = SecondsToSimTime(100000);
  TxId keeper = manager.BeginTransaction(type);
  int updates = 0;
  Rng rng(5);
  for (auto _ : state) {
    if (listener.max_killed == keeper) {
      keeper = manager.BeginTransaction(type);
      updates = 0;
    }
    manager.WriteUpdate(keeper, rng.NextBounded(options.num_objects), 100);
    if (++updates == 500) {
      updates = 0;
      if (listener.max_killed != keeper) manager.Commit(keeper, [](TxId) {});
      manager.ForceWriteOpenBuffers();
      sim.RunUntil(sim.Now() + SecondsToSimTime(1));  // flushes drain
      keeper = manager.BeginTransaction(type);
    }
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(set.el->records_forwarded());
}
BENCHMARK(BM_ElManagerForwardingPressure);

/// End-to-end simulator throughput: one full paper workload (shortened to
/// 50 simulated seconds) per iteration.
void BM_FullSimulationEL(benchmark::State& state) {
  for (auto _ : state) {
    db::DatabaseConfig config;
    config.workload = workload::PaperMix(0.05);
    config.workload.runtime = SecondsToSimTime(50);
    config.log.generation_blocks = {18, 12};
    db::Database database(config);
    db::RunStats stats = database.Run();
    benchmark::DoNotOptimize(stats.log_writes_per_sec);
  }
}
BENCHMARK(BM_FullSimulationEL)->Unit(benchmark::kMillisecond);

void BM_FullSimulationFW(benchmark::State& state) {
  for (auto _ : state) {
    db::DatabaseConfig config;
    config.workload = workload::PaperMix(0.05);
    config.workload.runtime = SecondsToSimTime(50);
    config.log = MakeFirewallOptions(123);
    db::Database database(config);
    db::RunStats stats = database.Run();
    benchmark::DoNotOptimize(stats.log_writes_per_sec);
  }
}
BENCHMARK(BM_FullSimulationFW)->Unit(benchmark::kMillisecond);

/// Best-of-5 hand timing of `fn` over `iters` calls, in ns per call.
/// google-benchmark prints the same comparison; this one feeds the
/// machine-readable artifact without depending on its reporter.
template <typename Fn>
double TimeNsPerOp(int64_t iters, Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    const std::chrono::duration<double, std::nano> elapsed =
        std::chrono::steady_clock::now() - start;
    best = std::min(best, elapsed.count() / static_cast<double>(iters));
  }
  return best;
}

/// Resident-set size in bytes (Linux; 0 elsewhere, which skips the
/// bytes-per-entry gate the same way missing CRC hardware skips its
/// gate).
size_t ResidentBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long total = 0, resident = 0;
  const int matched = std::fscanf(f, "%lu %lu", &total, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  return resident * 4096u;
#else
  return 0;
#endif
}

struct TableAbResult {
  double find_ns = 0;
  double rss_bytes_per_entry = 0;
};

/// Builds an `entries`-sized uint64->uint64 table of type MapT, measures
/// random-probe Find ns/op and the construction RSS delta per entry.
/// The flat table is measured FIRST in main(): its storage is one large
/// mmap'd block that really returns to the OS on destruction, so the
/// chained table's node churn afterwards lands on fresh pages and both
/// RSS deltas are honest.
template <typename MapT>
TableAbResult MeasureTableAt(uint64_t entries) {
  TableAbResult result;
  const size_t rss_before = ResidentBytes();
  MapT map;
  for (uint64_t i = 0; i < entries; ++i) {
    map.Insert(i * 0x9E3779B97F4A7C15ull, i);
  }
  result.rss_bytes_per_entry =
      static_cast<double>(ResidentBytes() - rss_before) /
      static_cast<double>(entries);
  Rng rng(7);
  constexpr int64_t kProbes = 2'000'000;
  uint64_t sink = 0;
  result.find_ns = TimeNsPerOp(kProbes, [&] {
    sink += map.Find(rng.NextBounded(entries) * 0x9E3779B97F4A7C15ull) !=
            nullptr;
  });
  benchmark::DoNotOptimize(sink);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  // LOT/LTT table A/B, measured before anything else touches the heap:
  // google-benchmark's calibration loops leave freed-but-resident arena
  // pages behind, and a construction-RSS delta measured after them reads
  // near zero. Flat first — see MeasureTableAt on RSS honesty. Two
  // scales: 10^7 entries (LOT scale, DRAM-bound — both layouts pay ~2
  // dependent loads per probe, so the win there is memory, not latency)
  // and 64k entries (LTT scale, cache-resident — where losing the
  // pointer chase shows up directly in Find).
  constexpr uint64_t kTableEntries = 10'000'000;
  constexpr uint64_t kCacheEntries = 65'536;
  const TableAbResult flat_ab =
      MeasureTableAt<FlatHashMap<uint64_t, uint64_t>>(kTableEntries);
  const TableAbResult chained_ab =
      MeasureTableAt<ChainedHashMap<uint64_t, uint64_t>>(kTableEntries);
  const TableAbResult flat_cache =
      MeasureTableAt<FlatHashMap<uint64_t, uint64_t>>(kCacheEntries);
  const TableAbResult chained_cache =
      MeasureTableAt<ChainedHashMap<uint64_t, uint64_t>>(kCacheEntries);

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Typed-handle vs string-lookup increment, recorded as the
  // BENCH_micro_structures.json artifact. The typed-handle convention
  // exists to make this ratio large: the string path re-resolves the
  // name through the registry map per event, the handle path is a
  // pointer bump.
  harness::WallTimer timer;
  sim::MetricsRegistry metrics;
  PopulateRunLikeRegistry(&metrics);
  sim::Counter* handle = metrics.GetCounter("el.gen1.recirculated");
  constexpr int64_t kIters = 2'000'000;
  const double typed_ns = TimeNsPerOp(kIters, [&] {
    handle->Incr();
    benchmark::ClobberMemory();  // keep one store per iteration
  });
  const double string_ns = TimeNsPerOp(kIters, [&] {
    metrics.GetCounter("el.gen1.recirculated")->Incr();
    benchmark::ClobberMemory();
  });
  const double ratio = typed_ns > 0 ? string_ns / typed_ns : 0.0;

  TableWriter table({"path", "ns_per_incr"});
  table.AddRow({"typed_handle", StrFormat("%.3f", typed_ns)});
  table.AddRow({"string_lookup", StrFormat("%.3f", string_ns)});
  harness::PrintTable(
      StrFormat("Metrics hot path: typed handle vs string lookup "
                "(%.1fx speedup)",
                ratio),
      table);

  // CRC32C implementations, MB/s over block-sized payloads. The hardware
  // path must beat the bytewise table by >= 2x where present; hosts
  // without the instruction skip the gate (the simulation is equally
  // correct on the slice-by-8 fallback, just slower).
  std::vector<uint8_t> payload(wal::kBlockPhysicalBytes, 0xAB);
  constexpr int64_t kCrcIters = 200'000;
  const auto mb_per_s = [&payload](double ns_per_op) {
    return ns_per_op > 0
               ? static_cast<double>(payload.size()) * 1000.0 / ns_per_op
               : 0.0;
  };
  const double crc_table_ns = TimeNsPerOp(kCrcIters, [&] {
    benchmark::DoNotOptimize(
        crc32c::ExtendTable(0, payload.data(), payload.size()));
  });
  const double crc_slice8_ns = TimeNsPerOp(kCrcIters, [&] {
    benchmark::DoNotOptimize(
        crc32c::ExtendSlice8(0, payload.data(), payload.size()));
  });
  const bool crc_hw = crc32c::HardwareAvailable();
  const double crc_hw_ns = crc_hw ? TimeNsPerOp(kCrcIters, [&] {
    benchmark::DoNotOptimize(
        crc32c::ExtendHardware(0, payload.data(), payload.size()));
  })
                                  : 0.0;
  const double crc_hw_over_table =
      crc_hw && crc_hw_ns > 0 ? crc_table_ns / crc_hw_ns : 0.0;

  TableWriter crc_table_out({"impl", "mb_per_s"});
  crc_table_out.AddRow({"table", StrFormat("%.1f", mb_per_s(crc_table_ns))});
  crc_table_out.AddRow(
      {"slice8", StrFormat("%.1f", mb_per_s(crc_slice8_ns))});
  crc_table_out.AddRow(
      {"hw", crc_hw ? StrFormat("%.1f", mb_per_s(crc_hw_ns)) : "n/a"});
  harness::PrintTable(
      StrFormat("CRC32C over %u-byte blocks (dispatched: %s)",
                wal::kBlockPhysicalBytes, crc32c::ImplName()),
      crc_table_out);

  // Event queue: legacy std::function heap vs the slab/InlineCallback
  // kernel, with realistic 40-byte captures (the shape that made the old
  // queue allocate per event).
  uint64_t sink = 0;
  constexpr int kQueueBatch = 1024;
  Rng rng(13);
  const double eventq_legacy_ns = TimeNsPerOp(200, [&] {
    LegacyEventQueueShim queue;
    for (int i = 0; i < kQueueBatch; ++i) {
      RealisticCapture c{&sink, rng.NextUint64(), static_cast<uint64_t>(i),
                         0, 0};
      queue.Schedule(static_cast<SimTime>(rng.NextBounded(1'000'000)),
                     [c, &sink] { sink += c.address + c.seq; });
    }
    SimTime t;
    while (!queue.empty()) queue.PopNext(&t)();
  });
  const double eventq_inline_ns = TimeNsPerOp(200, [&] {
    sim::EventQueue queue;
    for (int i = 0; i < kQueueBatch; ++i) {
      RealisticCapture c{&sink, rng.NextUint64(), static_cast<uint64_t>(i),
                         0, 0};
      queue.Schedule(static_cast<SimTime>(rng.NextBounded(1'000'000)),
                     [c, &sink] { sink += c.address + c.seq; });
    }
    SimTime t;
    while (!queue.empty()) queue.PopNext(&t)();
  });
  benchmark::DoNotOptimize(sink);

  // Block encode+decode, fresh allocations vs pooled buffers.
  std::vector<wal::LogRecord> records;
  for (uint32_t i = 0; i < 20; ++i) {
    records.push_back(wal::LogRecord::MakeData(
        i, 1000 + i, i * 17, 100,
        wal::ComputeValueDigest(i, i * 17, 1000 + i)));
  }
  const double block_plain_ns = TimeNsPerOp(100'000, [&] {
    wal::BlockImage image = wal::EncodeBlock(0, 42, records);
    benchmark::DoNotOptimize(wal::DecodeBlock(image).ok());
  });
  wal::BlockImagePool pool;
  wal::DecodedBlock decoded;
  const double block_pooled_ns = TimeNsPerOp(100'000, [&] {
    wal::BlockImage image = pool.Acquire();
    wal::EncodeBlockInto(0, 42, records, &image);
    benchmark::DoNotOptimize(wal::DecodeBlockInto(image, &decoded).ok());
    pool.Release(std::move(image));
  });

  // LOT/LTT table A/B results (measured up top, before the benchmark
  // runner could pollute the RSS deltas).
  const double find_speedup =
      flat_ab.find_ns > 0 ? chained_ab.find_ns / flat_ab.find_ns : 0.0;
  const double find_speedup_cache =
      flat_cache.find_ns > 0 ? chained_cache.find_ns / flat_cache.find_ns
                             : 0.0;
  const bool rss_valid =
      flat_ab.rss_bytes_per_entry > 0 && chained_ab.rss_bytes_per_entry > 0;
  const double bytes_ratio =
      rss_valid ? flat_ab.rss_bytes_per_entry / chained_ab.rss_bytes_per_entry
                : 0.0;

  TableWriter table_ab({"table", "entries", "find_ns", "rss_bytes_per_entry"});
  table_ab.AddRow({"flat", "10^7", StrFormat("%.1f", flat_ab.find_ns),
                   StrFormat("%.1f", flat_ab.rss_bytes_per_entry)});
  table_ab.AddRow({"chained", "10^7", StrFormat("%.1f", chained_ab.find_ns),
                   StrFormat("%.1f", chained_ab.rss_bytes_per_entry)});
  table_ab.AddRow({"flat", "64k", StrFormat("%.1f", flat_cache.find_ns), "-"});
  table_ab.AddRow(
      {"chained", "64k", StrFormat("%.1f", chained_cache.find_ns), "-"});
  harness::PrintTable(
      StrFormat("LOT/LTT table: flat vs chained (find %.1fx at 10^7, "
                "%.1fx at 64k, %.2fx bytes)",
                find_speedup, find_speedup_cache, bytes_ratio),
      table_ab);

  TableWriter hotpath_table({"structure", "old_ns_per_op", "new_ns_per_op"});
  hotpath_table.AddRow({"event_queue_batch1024",
                        StrFormat("%.0f", eventq_legacy_ns),
                        StrFormat("%.0f", eventq_inline_ns)});
  hotpath_table.AddRow({"block_encode_decode",
                        StrFormat("%.0f", block_plain_ns),
                        StrFormat("%.0f", block_pooled_ns)});
  harness::PrintTable("Hot structures: before/after this rework",
                      hotpath_table);

  runner::BenchJson bench("micro_structures");
  bench.AddConfig("metric_incr_iters", kIters);
  bench.AddConfig("registry_counters",
                  static_cast<int64_t>(metrics.counters().size()));
  bench.AddConfig("registry_gauges",
                  static_cast<int64_t>(metrics.gauges().size()));
  bench.AddConfig("crc_payload_bytes",
                  static_cast<int64_t>(payload.size()));
  bench.AddConfig("crc32c_dispatched", crc32c::ImplName());
  bench.AddMetric("typed_incr_ns", typed_ns);
  bench.AddMetric("string_incr_ns", string_ns);
  bench.AddMetric("string_over_typed_ratio", ratio);
  bench.AddMetric("crc32c_table_mb_s", mb_per_s(crc_table_ns));
  bench.AddMetric("crc32c_slice8_mb_s", mb_per_s(crc_slice8_ns));
  bench.AddMetric("crc32c_hw_mb_s", crc_hw ? mb_per_s(crc_hw_ns) : 0.0);
  bench.AddMetric("crc32c_hw_over_table_ratio", crc_hw_over_table);
  bench.AddMetric("eventq_legacy_batch_ns", eventq_legacy_ns);
  bench.AddMetric("eventq_inline_batch_ns", eventq_inline_ns);
  bench.AddMetric("block_encode_decode_ns", block_plain_ns);
  bench.AddMetric("block_encode_decode_pooled_ns", block_pooled_ns);
  bench.AddConfig("table_ab_entries", static_cast<int64_t>(kTableEntries));
  bench.AddConfig("table_cache_entries", static_cast<int64_t>(kCacheEntries));
  bench.AddMetric("flat_find_ns", flat_ab.find_ns);
  bench.AddMetric("chained_find_ns", chained_ab.find_ns);
  bench.AddMetric("chained_over_flat_find_ratio", find_speedup);
  bench.AddMetric("flat_find_ns_cache", flat_cache.find_ns);
  bench.AddMetric("chained_find_ns_cache", chained_cache.find_ns);
  bench.AddMetric("chained_over_flat_find_ratio_cache", find_speedup_cache);
  bench.AddMetric("flat_rss_bytes_per_entry", flat_ab.rss_bytes_per_entry);
  bench.AddMetric("chained_rss_bytes_per_entry",
                  chained_ab.rss_bytes_per_entry);
  bench.AddMetric("flat_over_chained_bytes_ratio", bytes_ratio);
  Status status =
      harness::WriteBenchJson("results", &bench, table, timer.Seconds());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (ratio < 2.0) {
    std::fprintf(stderr,
                 "typed-handle increment only %.2fx faster than string "
                 "lookup (expected >= 2x)\n",
                 ratio);
    return 1;
  }
  if (find_speedup_cache < 2.0) {
    std::fprintf(stderr,
                 "flat-table Find only %.2fx faster than chained at 64k "
                 "entries (expected >= 2x when cache-resident)\n",
                 find_speedup_cache);
    return 1;
  }
  if (find_speedup < 1.1) {
    std::fprintf(stderr,
                 "flat-table Find only %.2fx vs chained at 10^7 entries "
                 "(expected >= 1.1x; DRAM-bound, both layouts pay ~2 "
                 "dependent loads per probe)\n",
                 find_speedup);
    return 1;
  }
  if (rss_valid) {
    if (bytes_ratio > 0.7) {
      std::fprintf(stderr,
                   "flat table uses %.2fx of the chained table's RSS per "
                   "entry at 10^7 entries (expected <= 0.7x)\n",
                   bytes_ratio);
      return 1;
    }
  } else {
    std::fprintf(stderr,
                 "RSS unavailable on this host; skipping the table "
                 "bytes-per-entry gate\n");
  }
  if (crc_hw) {
    if (crc_hw_over_table < 2.0) {
      std::fprintf(stderr,
                   "hardware CRC32C only %.2fx faster than the bytewise "
                   "table (expected >= 2x)\n",
                   crc_hw_over_table);
      return 1;
    }
  } else {
    std::fprintf(stderr,
                 "CRC32C hardware unavailable on this host; skipping the "
                 "hw-vs-table speedup gate\n");
  }
  return 0;
}
