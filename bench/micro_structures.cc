// Microbenchmarks of the core data structures (google-benchmark):
// the chained hash tables behind the LOT/LTT, the circular cell list, the
// event queue, block encode/decode, CRC32C, and a whole-simulation
// throughput measurement.

#include <benchmark/benchmark.h>

#include <vector>

#include "db/database.h"
#include "sim/event_queue.h"
#include "util/chained_hash_map.h"
#include "util/crc32c.h"
#include "util/intrusive_list.h"
#include "util/random.h"
#include "wal/block_format.h"

namespace {

using namespace elog;

void BM_ChainedHashMapInsertErase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ChainedHashMap<uint64_t, uint64_t> map;
    for (int i = 0; i < n; ++i) map.Insert(static_cast<uint64_t>(i), i * 3);
    for (int i = 0; i < n; ++i) map.Erase(static_cast<uint64_t>(i));
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_ChainedHashMapInsertErase)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 16);

void BM_ChainedHashMapFind(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  ChainedHashMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < n; ++i) map.Insert(i, i);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(rng.NextBounded(n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainedHashMapFind)->Arg(1 << 8)->Arg(1 << 16);

struct BenchNode {
  ListNode link;
  uint64_t payload = 0;
};

void BM_CellListPushRemove(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<BenchNode> nodes(n);
  for (auto _ : state) {
    IntrusiveCircularList<BenchNode, &BenchNode::link> list;
    for (auto& node : nodes) list.PushBack(&node);
    while (!list.empty()) list.Remove(list.front());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_CellListPushRemove)->Arg(1 << 8)->Arg(1 << 14);

void BM_CellListMoveToBack(benchmark::State& state) {
  const int n = 1024;
  std::vector<BenchNode> nodes(n);
  IntrusiveCircularList<BenchNode, &BenchNode::link> list;
  for (auto& node : nodes) list.PushBack(&node);
  for (auto _ : state) {
    list.MoveToBack(list.front());  // the recirculation primitive
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CellListMoveToBack);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < n; ++i) {
      queue.Schedule(static_cast<SimTime>(rng.NextBounded(1'000'000)), [] {});
    }
    SimTime t;
    while (!queue.empty()) queue.PopNext(&t);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1 << 10)->Arg(1 << 14);

void BM_BlockEncodeDecode(benchmark::State& state) {
  std::vector<wal::LogRecord> records;
  for (uint32_t i = 0; i < 20; ++i) {
    records.push_back(wal::LogRecord::MakeData(
        i, 1000 + i, i * 17, 100, wal::ComputeValueDigest(i, i * 17, 1000 + i)));
  }
  for (auto _ : state) {
    wal::BlockImage image = wal::EncodeBlock(0, 42, records);
    auto decoded = wal::DecodeBlock(image);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetItemsProcessed(state.iterations() * records.size());
}
BENCHMARK(BM_BlockEncodeDecode);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(2048)->Arg(1 << 16);

/// Log-manager hot path: one begin + 2 updates + commit cycle per
/// iteration, driven directly (no workload generator), with periodic
/// simulated-time advancement so group commit and flushing progress.
void BM_ElManagerTransactionCycle(benchmark::State& state) {
  sim::Simulator sim;
  LogManagerOptions options;
  options.generation_blocks = {18, 12};
  disk::LogStorage storage(options.generation_blocks);
  disk::LogDevice device(&sim, &storage, options.log_write_latency, nullptr);
  disk::DriveArray drives(&sim, options.num_flush_drives,
                          options.num_objects, options.flush_transfer_time,
                          nullptr);
  EphemeralLogManager manager(&sim, options, &device, &drives, nullptr);
  workload::TransactionType type;
  type.lifetime = SecondsToSimTime(1);
  Rng rng(3);
  int64_t iterations = 0;
  for (auto _ : state) {
    TxId tid = manager.BeginTransaction(type);
    manager.WriteUpdate(tid, rng.NextBounded(options.num_objects), 100);
    manager.WriteUpdate(tid, rng.NextBounded(options.num_objects), 100);
    manager.Commit(tid, [](TxId) {});
    if (++iterations % 16 == 0) {
      manager.ForceWriteOpenBuffers();
      sim.RunUntil(sim.Now() + 50 * kMillisecond);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ElManagerTransactionCycle);

/// Forwarding pressure: a long-lived transaction's records being pushed
/// through a tiny generation 0 (head advance + relocation per record).
void BM_ElManagerForwardingPressure(benchmark::State& state) {
  sim::Simulator sim;
  LogManagerOptions options;
  options.generation_blocks = {4, 400};
  disk::LogStorage storage(options.generation_blocks);
  disk::LogDevice device(&sim, &storage, options.log_write_latency, nullptr);
  disk::DriveArray drives(&sim, options.num_flush_drives,
                          options.num_objects, options.flush_transfer_time,
                          nullptr);
  EphemeralLogManager manager(&sim, options, &device, &drives, nullptr);
  // Rotate long-lived transactions (commit each after 500 updates) so the
  // large generation 1 absorbs forwarded records without ever saturating.
  class NullListener : public KillListener {
   public:
    void OnTransactionKilled(TxId) override {}
  } listener;
  manager.set_kill_listener(&listener);
  workload::TransactionType type;
  type.lifetime = SecondsToSimTime(100000);
  TxId keeper = manager.BeginTransaction(type);
  int updates = 0;
  Rng rng(5);
  for (auto _ : state) {
    manager.WriteUpdate(keeper, rng.NextBounded(options.num_objects), 100);
    if (++updates == 500) {
      updates = 0;
      manager.Commit(keeper, [](TxId) {});
      manager.ForceWriteOpenBuffers();
      sim.RunUntil(sim.Now() + SecondsToSimTime(1));  // flushes drain
      keeper = manager.BeginTransaction(type);
    }
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(manager.records_forwarded());
}
BENCHMARK(BM_ElManagerForwardingPressure);

/// End-to-end simulator throughput: one full paper workload (shortened to
/// 50 simulated seconds) per iteration.
void BM_FullSimulationEL(benchmark::State& state) {
  for (auto _ : state) {
    db::DatabaseConfig config;
    config.workload = workload::PaperMix(0.05);
    config.workload.runtime = SecondsToSimTime(50);
    config.log.generation_blocks = {18, 12};
    db::Database database(config);
    db::RunStats stats = database.Run();
    benchmark::DoNotOptimize(stats.log_writes_per_sec);
  }
}
BENCHMARK(BM_FullSimulationEL)->Unit(benchmark::kMillisecond);

void BM_FullSimulationFW(benchmark::State& state) {
  for (auto _ : state) {
    db::DatabaseConfig config;
    config.workload = workload::PaperMix(0.05);
    config.workload.runtime = SecondsToSimTime(50);
    config.log = MakeFirewallOptions(123);
    db::Database database(config);
    db::RunStats stats = database.Run();
    benchmark::DoNotOptimize(stats.log_writes_per_sec);
  }
}
BENCHMARK(BM_FullSimulationFW)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
