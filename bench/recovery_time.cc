// Recovery-cost comparison (§4: "recovery time is proportional to the
// amount of log information and so less disk space means faster
// recovery"; the paper claims sub-second single-pass recovery for EL but
// does not simulate it — this bench does).
//
// Crashes an EL system and an FW system mid-run and recovers each,
// reporting the log volume scanned, a modeled disk read time (one
// sequential block read per written block), and the measured in-memory
// pass time.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "core/fw_manager.h"
#include "db/database.h"
#include "db/recovery.h"
#include "harness/report.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace elog;

namespace {

struct RecoveryRow {
  std::string scheme;
  uint32_t total_blocks = 0;
  size_t blocks_written = 0;
  size_t records = 0;
  double modeled_read_ms = 0;
  double measured_pass_us = 0;
  size_t recovered_objects = 0;
};

RecoveryRow CrashAndRecover(const std::string& scheme,
                            const db::DatabaseConfig& config,
                            SimTime crash_time) {
  db::Database database(config);
  db::Database::CrashImage image =
      database.RunUntilCrash(crash_time, /*torn_write=*/true);

  auto start = std::chrono::steady_clock::now();
  db::RecoveryResult result =
      db::RecoveryManager::Recover(image.log, image.stable);
  auto stop = std::chrono::steady_clock::now();

  RecoveryRow row;
  row.scheme = scheme;
  row.total_blocks = config.log.total_blocks();
  row.blocks_written = result.scan.blocks_scanned - result.scan.blocks_empty;
  row.records = result.scan.records;
  // Modeled I/O: one 15 ms sequential block read per written block (the
  // simulator's disk constant; a single pass, as §4 argues).
  row.modeled_read_ms =
      static_cast<double>(row.blocks_written) *
      SimTimeToSeconds(config.log.log_write_latency) * 1000.0;
  row.measured_pass_us =
      std::chrono::duration<double, std::micro>(stop - start).count();
  row.recovered_objects = result.state.size();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t crash_s = 120;
  std::string csv;
  FlagSet flags;
  flags.AddInt64("crash_s", &crash_s, "crash instant, simulated seconds");
  flags.AddString("csv", &csv, "write results as CSV to this path");
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Help(argv[0]);
    return 2;
  }

  SimTime crash = SecondsToSimTime(crash_s) + 7 * kMillisecond;
  TableWriter table({"scheme", "log_blocks", "blocks_scanned", "records",
                     "modeled_disk_read_ms", "in_memory_pass_us",
                     "objects_recovered"});

  // EL at the paper's recirculating operating point.
  {
    db::DatabaseConfig config;
    config.workload = workload::PaperMix(0.05);
    config.workload.runtime = SecondsToSimTime(3600);
    config.log.generation_blocks = {18, 10};
    config.log.recirculation = true;
    RecoveryRow row = CrashAndRecover("EL (18+10)", config, crash);
    table.AddRow({row.scheme, std::to_string(row.total_blocks),
                  std::to_string(row.blocks_written),
                  std::to_string(row.records),
                  StrFormat("%.0f", row.modeled_read_ms),
                  StrFormat("%.0f", row.measured_pass_us),
                  std::to_string(row.recovered_objects)});
  }
  // FW at its minimum.
  {
    db::DatabaseConfig config;
    config.workload = workload::PaperMix(0.05);
    config.workload.runtime = SecondsToSimTime(3600);
    config.log = MakeFirewallOptions(123);
    RecoveryRow row = CrashAndRecover("FW (123)", config, crash);
    table.AddRow({row.scheme, std::to_string(row.total_blocks),
                  std::to_string(row.blocks_written),
                  std::to_string(row.records),
                  StrFormat("%.0f", row.modeled_read_ms),
                  StrFormat("%.0f", row.measured_pass_us),
                  std::to_string(row.recovered_objects)});
  }

  harness::PrintTable(
      "Recovery cost after a crash (single pass; modeled 15 ms/block "
      "reads). Paper: \"less disk space means faster recovery\"; EL's "
      "whole log fits in memory.",
      table);
  std::printf("note: FW without checkpoints cannot actually recover "
              "committed state (its log drops committed records at "
              "commit); the row above measures scan volume only.\n");
  Status status = harness::MaybeWriteCsv(csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
