// Recovery-cost comparison (§4: "recovery time is proportional to the
// amount of log information and so less disk space means faster
// recovery"; the paper claims sub-second single-pass recovery for EL but
// does not simulate it — this bench does).
//
// Crashes an EL system and an FW system mid-run and recovers each,
// reporting the log volume scanned, a modeled disk read time (one
// sequential block read per written block), and the measured in-memory
// pass time. Duplexed rows crash a mirrored-log system under bit-rot and
// transient-error injection and recover with the read-repair merge on
// and off: the merge reads both replica images (double the modeled I/O)
// and, with repair on, pays one extra write per stale/corrupt/missing
// copy it heals.

#include <cctype>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "core/fw_manager.h"
#include "db/database.h"
#include "db/recovery.h"
#include "harness/bench_cli.h"
#include "harness/report.h"
#include "util/string_util.h"

using namespace elog;

namespace {

struct RecoveryRow {
  std::string scheme;
  uint32_t total_blocks = 0;
  size_t blocks_written = 0;
  size_t records = 0;
  double modeled_read_ms = 0;
  double measured_pass_us = 0;
  size_t recovered_objects = 0;
  size_t blocks_repaired = 0;
};

RecoveryRow CrashAndRecover(const std::string& scheme,
                            const db::DatabaseConfig& config,
                            SimTime crash_time, bool read_repair = true) {
  db::Database database(config);
  db::Database::CrashImage image =
      database.RunUntilCrash(crash_time, /*torn_write=*/true);

  auto start = std::chrono::steady_clock::now();
  db::RecoveryResult result =
      config.duplex_log
          ? db::RecoveryManager::RecoverDuplex(
                image.log_readable ? &image.log : nullptr,
                image.mirror_readable ? &image.mirror_log : nullptr,
                image.stable, read_repair)
          : db::RecoveryManager::Recover(image.log, image.stable);
  auto stop = std::chrono::steady_clock::now();

  RecoveryRow row;
  row.scheme = scheme;
  row.total_blocks = config.log.total_blocks();
  if (config.duplex_log) {
    // The merge scans every readable replica image: the modeled I/O is
    // the sum of both replicas' written blocks, not the merged count.
    for (int i = 0; i < 2; ++i) {
      row.blocks_written += result.duplex.replica[i].blocks_scanned -
                            result.duplex.replica[i].blocks_empty;
    }
  } else {
    row.blocks_written = result.scan.blocks_scanned - result.scan.blocks_empty;
  }
  row.records = result.scan.records;
  // Modeled I/O: one 15 ms sequential block read per written block (the
  // simulator's disk constant; a single pass, as §4 argues), plus one
  // block write per read-repair.
  row.modeled_read_ms =
      static_cast<double>(row.blocks_written +
                          result.duplex.blocks_repaired) *
      SimTimeToSeconds(config.log.log_write_latency) * 1000.0;
  row.measured_pass_us =
      std::chrono::duration<double, std::micro>(stop - start).count();
  row.recovered_objects = result.state.size();
  row.blocks_repaired = result.duplex.blocks_repaired;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t crash_s = 120;
  harness::BenchCli cli;
  FlagSet& flags = cli.flags();
  flags.AddInt64("crash_s", &crash_s, "crash instant, simulated seconds");
  if (!cli.Parse(argc, argv)) return 2;

  SimTime crash = SecondsToSimTime(crash_s) + 7 * kMillisecond;
  TableWriter table({"scheme", "log_blocks", "blocks_scanned", "records",
                     "modeled_disk_read_ms", "in_memory_pass_us",
                     "objects_recovered", "blocks_repaired"});
  auto add_row = [&table](const RecoveryRow& row) {
    table.AddRow({row.scheme, std::to_string(row.total_blocks),
                  std::to_string(row.blocks_written),
                  std::to_string(row.records),
                  StrFormat("%.0f", row.modeled_read_ms),
                  StrFormat("%.0f", row.measured_pass_us),
                  std::to_string(row.recovered_objects),
                  std::to_string(row.blocks_repaired)});
  };

  harness::WallTimer timer;
  std::vector<RecoveryRow> rows;

  // EL at the paper's recirculating operating point, single log.
  {
    db::DatabaseConfig config;
    config.workload = workload::PaperMix(0.05);
    config.workload.runtime = SecondsToSimTime(3600);
    config.log.generation_blocks = {18, 10};
    config.log.recirculation = true;
    rows.push_back(CrashAndRecover("EL (18+10)", config, crash));
  }
  // Same operating point, duplexed log under fault injection, recovered
  // with and without read-repair. The two runs are identical up to the
  // crash (same seeds); only the recovery pass differs.
  for (bool read_repair : {true, false}) {
    db::DatabaseConfig config;
    config.workload = workload::PaperMix(0.05);
    config.workload.runtime = SecondsToSimTime(3600);
    config.log.generation_blocks = {18, 10};
    config.log.recirculation = true;
    config.duplex_log = true;
    config.faults.seed = 0x5ec0bef5ull;
    config.faults.log_transient_error_rate = 0.02;
    config.faults.log_bit_rot_rate = 0.01;
    rows.push_back(CrashAndRecover(
        read_repair ? "EL duplex, repair on" : "EL duplex, repair off",
        config, crash, read_repair));
  }
  // FW at its minimum.
  {
    db::DatabaseConfig config;
    config.workload = workload::PaperMix(0.05);
    config.workload.runtime = SecondsToSimTime(3600);
    config.log = MakeFirewallOptions(123);
    rows.push_back(CrashAndRecover("FW (123)", config, crash));
  }
  const double wall_s = timer.Seconds();
  for (const RecoveryRow& row : rows) add_row(row);

  harness::PrintTable(
      "Recovery cost after a crash (single pass; modeled 15 ms/block "
      "reads). Paper: \"less disk space means faster recovery\"; EL's "
      "whole log fits in memory. Duplex rows scan both replica images.",
      table);
  std::printf("note: FW without checkpoints cannot actually recover "
              "committed state (its log drops committed records at "
              "commit); the row above measures scan volume only.\n");
  Status status = harness::MaybeWriteCsv(cli.csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  runner::BenchJson bench("recovery_time");
  bench.AddConfig("crash_s", crash_s);
  for (const RecoveryRow& row : rows) {
    // Metric keys derive from the scheme name: lowercase alnum + '_'.
    std::string key;
    for (char c : row.scheme) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      } else if (!key.empty() && key.back() != '_') {
        key += '_';
      }
    }
    if (!key.empty() && key.back() == '_') key.pop_back();
    bench.AddMetric(key + "_modeled_read_ms", row.modeled_read_ms);
    bench.AddMetric(key + "_blocks_scanned",
                    static_cast<int64_t>(row.blocks_written));
    bench.AddMetric(key + "_blocks_repaired",
                    static_cast<int64_t>(row.blocks_repaired));
  }
  status = harness::WriteBenchJson(cli.json_dir, &bench, table, wall_s);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
