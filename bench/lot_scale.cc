// LOT scalability: the logged-object table (util::FlatHashMap keyed by
// oid, LotEntry values) driven to 10^5..10^8 entries, measuring
// Find/Insert/Erase ns/op and bytes per object against the paper's §5
// memory model (40 B per updated-but-unflushed object).
//
// Two bytes-per-object figures are reported: `table_bytes_per_object`
// is the table's own accounting (MemoryBytes() / n — capacity-derived,
// fully deterministic, the figure the CI jobs-identity diff checks) and
// `rss_bytes_per_object` is the resident-set delta around table
// construction (what the OS actually charges, including slot padding
// and the tag array). Timing and RSS metrics carry `_ns` /
// `_rss_bytes` suffixes so CI can exclude the measured lines when
// diffing --jobs 1 vs --jobs 4 runs for byte-identity.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/tables.h"
#include "harness/bench_cli.h"
#include "harness/report.h"
#include "util/random.h"
#include "util/string_util.h"

#if defined(__linux__)
#include <unistd.h>
#endif

using namespace elog;

namespace {

/// Resident-set size in bytes (0 where /proc is unavailable; the RSS
/// columns then read 0 and only the deterministic table accounting is
/// meaningful).
size_t ResidentBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long total = 0, resident = 0;
  const int matched = std::fscanf(f, "%lu %lu", &total, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  return resident * static_cast<size_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScalePoint {
  uint64_t n = 0;
  double insert_ns = 0;   // amortized, includes growth rehashes
  double find_ns = 0;     // random present keys
  double miss_ns = 0;     // random absent keys
  double erase_ns = 0;
  size_t table_bytes = 0;  // MemoryBytes() at full population
  size_t rss_bytes = 0;    // resident delta across construction
};

/// One sweep size: populate a LoggedObjectTable with n oids, probe it,
/// then drain it. Oids are splashed through a 64-bit multiplier so the
/// key stream is neither sequential nor adversarial.
ScalePoint RunPoint(uint64_t n, uint64_t seed) {
  ScalePoint point;
  point.n = n;
  constexpr uint64_t kOidStride = 0x9E3779B97F4A7C15ull;

  const size_t rss_before = ResidentBytes();
  LoggedObjectTable lot;
  double t0 = NowNs();
  for (uint64_t i = 0; i < n; ++i) {
    LotEntry entry;
    auto [slot, inserted] = lot.Insert(i * kOidStride, std::move(entry));
    slot->committed = nullptr;
    (void)inserted;
  }
  point.insert_ns = (NowNs() - t0) / static_cast<double>(n);
  point.table_bytes = lot.MemoryBytes();
  point.rss_bytes = ResidentBytes() - rss_before;

  const uint64_t probes = n < 2'000'000 ? n : 2'000'000;
  Rng rng(seed);
  uint64_t sink = 0;
  t0 = NowNs();
  for (uint64_t i = 0; i < probes; ++i) {
    LotEntry* entry = lot.Find(rng.NextBounded(n) * kOidStride);
    sink += entry != nullptr ? 1 : 0;
  }
  point.find_ns = (NowNs() - t0) / static_cast<double>(probes);
  if (sink != probes) std::fprintf(stderr, "lost keys: %llu hits\n",
                                   static_cast<unsigned long long>(sink));

  t0 = NowNs();
  for (uint64_t i = 0; i < probes; ++i) {
    // Absent keys: the stride multiplied range, offset by 1.
    sink += lot.Find(rng.NextBounded(n) * kOidStride + 1) != nullptr;
  }
  point.miss_ns = (NowNs() - t0) / static_cast<double>(probes);

  t0 = NowNs();
  for (uint64_t i = 0; i < n; ++i) {
    lot.Erase(i * kOidStride);
  }
  point.erase_ns = (NowNs() - t0) / static_cast<double>(n);
  if (!lot.empty()) {
    std::fprintf(stderr, "table not drained: %zu left\n", lot.size());
  }
  return point;
}

std::string SizeName(uint64_t n) {
  int exp = 0;
  for (uint64_t v = n; v >= 10; v /= 10) ++exp;
  return StrFormat("n1e%d", exp);
}

}  // namespace

int main(int argc, char** argv) {
  harness::BenchCli cli;
  cli.AddQuick("caps the sweep at 10^6 oids");
  cli.AddSeed(42, "probe RNG seed");
  if (!cli.Parse(argc, argv)) return 2;

  std::vector<uint64_t> sizes = {100'000, 1'000'000, 10'000'000,
                                 100'000'000};
  if (cli.quick) sizes = {100'000, 1'000'000};

  // The §5 model: 40 bytes per updated-but-unflushed object, i.e. per
  // LOT entry (LogManagerOptions::el_bytes_per_object's default).
  constexpr double kModelBytesPerObject = 40.0;

  harness::WallTimer timer;
  std::vector<ScalePoint> points;
  for (uint64_t n : sizes) {
    std::fprintf(stderr, "lot_scale: %llu oids...\n",
                 static_cast<unsigned long long>(n));
    points.push_back(RunPoint(n, static_cast<uint64_t>(cli.seed)));
  }

  // Human-facing table: everything, including the measured columns.
  TableWriter measured({"oids", "insert_ns", "find_ns", "miss_ns",
                        "erase_ns", "table_B_per_obj", "rss_B_per_obj"});
  for (const ScalePoint& p : points) {
    measured.AddRow(
        {StrFormat("%llu", static_cast<unsigned long long>(p.n)),
         StrFormat("%.1f", p.insert_ns), StrFormat("%.1f", p.find_ns),
         StrFormat("%.1f", p.miss_ns), StrFormat("%.1f", p.erase_ns),
         StrFormat("%.1f", static_cast<double>(p.table_bytes) / p.n),
         StrFormat("%.1f", static_cast<double>(p.rss_bytes) / p.n)});
  }
  harness::PrintTable(
      "LOT scalability: FlatHashMap<Oid, LotEntry> at 10^5..10^8 entries",
      measured);
  Status status = harness::MaybeWriteCsv(cli.csv, measured);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  // Artifact table: deterministic columns only (the CI jobs-identity
  // diff compares these verbatim). table_bytes is capacity-derived, so
  // measured-over-model is reproducible bit for bit.
  TableWriter artifact({"oids", "table_bytes_per_object",
                        "model_bytes_per_object", "table_over_model"});
  for (const ScalePoint& p : points) {
    const double per_obj = static_cast<double>(p.table_bytes) / p.n;
    artifact.AddRow(
        {StrFormat("%llu", static_cast<unsigned long long>(p.n)),
         StrFormat("%.4f", per_obj),
         StrFormat("%.0f", kModelBytesPerObject),
         StrFormat("%.4f", per_obj / kModelBytesPerObject)});
  }

  runner::BenchJson bench("lot_scale");
  bench.AddConfig("jobs", cli.jobs);
  bench.AddConfig("seed", cli.seed);
  bench.AddConfig("quick", cli.quick);
  bench.AddConfig("model_bytes_per_object",
                  static_cast<int64_t>(kModelBytesPerObject));
  bench.AddConfig("lot_entry_bytes", static_cast<int64_t>(sizeof(LotEntry)));
  for (const ScalePoint& p : points) {
    const std::string prefix = SizeName(p.n);
    bench.AddMetric(prefix + "_table_bytes_per_object",
                    static_cast<double>(p.table_bytes) / p.n);
    bench.AddMetric(prefix + "_insert_ns", p.insert_ns);
    bench.AddMetric(prefix + "_find_ns", p.find_ns);
    bench.AddMetric(prefix + "_miss_ns", p.miss_ns);
    bench.AddMetric(prefix + "_erase_ns", p.erase_ns);
    bench.AddMetric(prefix + "_rss_bytes", static_cast<int64_t>(p.rss_bytes));
  }
  status = harness::WriteBenchJson(cli.json_dir, &bench, artifact,
                                   timer.Seconds());
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
