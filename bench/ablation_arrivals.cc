// Extension bench: deterministic vs Poisson arrivals (§3 future work).
//
// The paper evaluates with deterministic arrivals. Poisson arrivals are
// burstier: the same mean rate produces transient overloads that stress
// the k-block gap and the minimum-space configurations tuned under the
// deterministic model.

#include <cstdio>
#include <iostream>

#include "db/database.h"
#include "harness/bench_cli.h"
#include "harness/report.h"
#include "runner/sweep_runner.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  int64_t runtime_s = 200;
  harness::BenchCli cli;
  FlagSet& flags = cli.flags();
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  if (!cli.Parse(argc, argv)) return 2;

  // Two layouts per arrival process: the deterministic minimum (tight)
  // and a roomier one.
  std::vector<db::DatabaseConfig> configs;
  std::vector<std::string> process_names;
  std::vector<std::vector<uint32_t>> layouts;
  for (workload::ArrivalProcess process :
       {workload::ArrivalProcess::kDeterministic,
        workload::ArrivalProcess::kPoisson}) {
    for (std::vector<uint32_t> layout :
         {std::vector<uint32_t>{18, 10}, std::vector<uint32_t>{22, 16}}) {
      db::DatabaseConfig config;
      config.workload = workload::PaperMix(0.05);
      config.workload.runtime = SecondsToSimTime(runtime_s);
      config.workload.arrival_process = process;
      config.log.generation_blocks = layout;
      config.log.recirculation = true;
      configs.push_back(config);
      process_names.push_back(process == workload::ArrivalProcess::kPoisson
                                  ? "poisson"
                                  : "deterministic");
      layouts.push_back(layout);
    }
  }

  runner::SweepOptions sweep_options;
  sweep_options.jobs = static_cast<int>(cli.jobs);
  sweep_options.derive_seeds = false;  // paired across layouts/processes
  runner::SweepRunner sweeper(sweep_options);

  harness::WallTimer timer;
  std::vector<db::RunStats> results = sweeper.Run(configs);
  const double wall_s = timer.Seconds();

  TableWriter table({"arrivals", "layout", "killed", "writes_per_s",
                     "commit_p99_ms", "flush_backlog"});
  for (size_t i = 0; i < configs.size(); ++i) {
    const db::RunStats& stats = results[i];
    table.AddRow({process_names[i],
                  StrFormat("%u+%u", layouts[i][0], layouts[i][1]),
                  std::to_string(stats.total_killed),
                  StrFormat("%.2f", stats.log_writes_per_sec),
                  StrFormat("%.1f", stats.commit_latency_p99_us / 1000.0),
                  std::to_string(stats.flush_backlog)});
  }
  harness::PrintTable(
      "Extension: arrival-process sensitivity (deterministic §3 vs "
      "Poisson)",
      table);
  Status status = harness::MaybeWriteCsv(cli.csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  runner::BenchJson bench("ablation_arrivals");
  bench.AddConfig("jobs", static_cast<int64_t>(sweeper.jobs()));
  bench.AddConfig("runtime_s", runtime_s);
  status = harness::WriteBenchJson(cli.json_dir, &bench, table, wall_s);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
