// Extension bench: deterministic vs Poisson arrivals (§3 future work).
//
// The paper evaluates with deterministic arrivals. Poisson arrivals are
// burstier: the same mean rate produces transient overloads that stress
// the k-block gap and the minimum-space configurations tuned under the
// deterministic model.

#include <cstdio>
#include <iostream>

#include "db/database.h"
#include "harness/report.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  int64_t runtime_s = 200;
  std::string csv;
  FlagSet flags;
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  flags.AddString("csv", &csv, "write results as CSV to this path");
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Help(argv[0]);
    return 2;
  }

  TableWriter table({"arrivals", "layout", "killed", "writes_per_s",
                     "commit_p99_ms", "flush_backlog"});
  for (workload::ArrivalProcess process :
       {workload::ArrivalProcess::kDeterministic,
        workload::ArrivalProcess::kPoisson}) {
    // Two layouts: the deterministic minimum (tight) and a roomier one.
    for (std::vector<uint32_t> layout :
         {std::vector<uint32_t>{18, 10}, std::vector<uint32_t>{22, 16}}) {
      db::DatabaseConfig config;
      config.workload = workload::PaperMix(0.05);
      config.workload.runtime = SecondsToSimTime(runtime_s);
      config.workload.arrival_process = process;
      config.log.generation_blocks = layout;
      config.log.recirculation = true;
      db::Database database(config);
      db::RunStats stats = database.Run();
      table.AddRow(
          {process == workload::ArrivalProcess::kPoisson ? "poisson"
                                                         : "deterministic",
           StrFormat("%u+%u", layout[0], layout[1]),
           std::to_string(stats.total_killed),
           StrFormat("%.2f", stats.log_writes_per_sec),
           StrFormat("%.1f", stats.commit_latency_p99_us / 1000.0),
           std::to_string(stats.flush_backlog)});
    }
  }
  harness::PrintTable(
      "Extension: arrival-process sensitivity (deterministic §3 vs "
      "Poisson)",
      table);
  Status status = harness::MaybeWriteCsv(csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
