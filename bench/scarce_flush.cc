// §4 in-text experiment: EL when flushing bandwidth is scarce.
//
// Flush transfer time is raised from 25 ms to 45 ms, so the 10 drives
// provide 222 flushes/s against an average update rate of 210/s. The
// paper reports: EL with recirculation needs 31 blocks (20 + 11) and
// 13.96 writes/s; unflushed committed updates recirculate until flushed;
// the mean oid distance between successive flushes falls to 109,000 from
// the 235,000 observed at 25 ms — a backlog makes flushing I/O more
// sequential, a stabilizing negative feedback.

#include <cstdio>
#include <iostream>

#include "harness/figures.h"
#include "harness/report.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  std::string csv;
  int64_t runtime_s = 500;
  FlagSet flags;
  flags.AddString("csv", &csv, "write results as CSV to this path");
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Help(argv[0]);
    return 2;
  }

  workload::WorkloadSpec spec = workload::PaperMix(0.05);
  spec.runtime = SecondsToSimTime(runtime_s);
  LogManagerOptions base;

  harness::ScarceFlushResult result = harness::RunScarceFlush(base, spec);
  const db::RunStats& scarce = result.scarce.stats;
  const db::RunStats& normal = result.normal_stats;

  TableWriter table({"metric", "scarce_45ms", "normal_25ms", "paper_scarce"});
  table.AddRow({"min_total_blocks",
                std::to_string(result.scarce.total_blocks), "-",
                StrFormat("%.0f", harness::PaperReference::kScarceSpaceBlocks)});
  table.AddRow({"gen_split",
                StrFormat("%u+%u", result.scarce.generation_blocks[0],
                          result.scarce.generation_blocks[1]),
                "-", "20+11"});
  table.AddRow({"log_writes_per_s", StrFormat("%.3f", scarce.log_writes_per_sec),
                StrFormat("%.3f", normal.log_writes_per_sec),
                StrFormat("%.2f", harness::PaperReference::kScarceBandwidth)});
  table.AddRow({"mean_flush_seek_distance",
                StrFormat("%.0f", scarce.mean_flush_seek_distance),
                StrFormat("%.0f", normal.mean_flush_seek_distance),
                StrFormat("%.0f", harness::PaperReference::kScarceSeekDistance)});
  table.AddRow({"flush_backlog_at_end", std::to_string(scarce.flush_backlog),
                std::to_string(normal.flush_backlog), "-"});
  table.AddRow({"recirculated_records",
                std::to_string(scarce.records_recirculated),
                std::to_string(normal.records_recirculated), "-"});
  table.AddRow({"kills", std::to_string(scarce.kills),
                std::to_string(normal.kills), "0"});

  harness::PrintTable(
      "Scarce flush bandwidth (45 ms transfers; 222 flush/s vs 210 upd/s)",
      table);
  status = harness::MaybeWriteCsv(csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
