// Ablation: EL vs the §6 EL–FW hybrid.
//
// The hybrid keeps one pointer per transaction (flat memory) but must
// regenerate a transaction's entire record set whenever its oldest record
// reaches a queue head (bandwidth premium). The trade is starkest when
// transactions update many objects — exactly the §6 scenario.

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/hybrid_manager.h"
#include "db/database.h"
#include "harness/bench_cli.h"
#include "harness/report.h"
#include "runner/sweep_runner.h"
#include "util/string_util.h"

using namespace elog;

namespace {

struct AblationStats {
  double writes_per_sec = 0;
  double peak_memory = 0;
  int64_t killed = 0;
  int64_t committed = 0;
  int64_t rewrites = 0;  // forwarded+recirculated (EL) / regenerated (hybrid)
};

workload::WorkloadSpec ManyUpdateMix(int64_t runtime_s) {
  // 90% short transactions with 2 updates; 10% long transactions with 30
  // updates each — heavy per-transaction object counts.
  workload::TransactionType small;
  small.name = "small";
  small.probability = 0.9;
  small.lifetime = SecondsToSimTime(1);
  small.num_data_records = 2;
  small.data_record_bytes = 100;
  workload::TransactionType wide;
  wide.name = "wide";
  wide.probability = 0.1;
  wide.lifetime = SecondsToSimTime(10);
  wide.num_data_records = 30;
  wide.data_record_bytes = 100;
  workload::WorkloadSpec spec;
  spec.types = {small, wide};
  spec.arrival_rate_tps = 50.0;
  spec.runtime = SecondsToSimTime(runtime_s);
  return spec;
}

AblationStats RunEl(const workload::WorkloadSpec& spec,
                    const LogManagerOptions& options) {
  db::DatabaseConfig config;
  config.workload = spec;
  config.log = options;
  db::Database database(config);
  db::RunStats stats = database.Run();
  AblationStats out;
  out.writes_per_sec = stats.log_writes_per_sec;
  out.peak_memory = stats.peak_memory_bytes;
  out.killed = stats.total_killed;
  out.committed = stats.total_committed;
  out.rewrites = stats.records_forwarded + stats.records_recirculated;
  return out;
}

AblationStats RunHybrid(const workload::WorkloadSpec& spec,
                        LogManagerOptions options) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  disk::LogStorage storage(options.generation_blocks);
  disk::LogDevice device(&sim, &storage, options.log_write_latency, &metrics);
  disk::DriveArray drives(&sim, options.num_flush_drives, options.num_objects,
                          options.flush_transfer_time, &metrics);
  HybridLogManager manager(&sim, options, &device, &drives, &metrics);
  workload::WorkloadGenerator generator(&sim, spec, &manager, &metrics);

  class Relay : public KillListener {
   public:
    explicit Relay(workload::WorkloadGenerator* g) : generator(g) {}
    void OnTransactionKilled(TxId tid) override {
      generator->NotifyKilled(tid);
    }
    workload::WorkloadGenerator* generator;
  } relay(&generator);
  manager.set_kill_listener(&relay);

  generator.Start();
  sim.RunUntil(spec.runtime);
  int64_t window_writes = device.writes_completed();
  double peak = manager.memory_usage().peak();
  for (int i = 0; i < 1000 && generator.active() > 0; ++i) {
    manager.ForceWriteOpenBuffers();
    sim.RunUntil(sim.Now() + 100 * kMillisecond);
  }
  sim.Run();
  manager.CheckInvariants();

  AblationStats out;
  out.writes_per_sec = window_writes / SimTimeToSeconds(spec.runtime);
  out.peak_memory = peak;
  out.killed = generator.killed();
  out.committed = generator.committed();
  out.rewrites = manager.records_regenerated();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t runtime_s = 120;
  harness::BenchCli cli;
  FlagSet& flags = cli.flags();
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  if (!cli.Parse(argc, argv)) return 2;

  workload::WorkloadSpec spec = ManyUpdateMix(runtime_s);
  LogManagerOptions options;
  // Sized so both schemes run kill-free. The hybrid concentrates a wide
  // transaction's records in its residence generation and can only
  // reclaim them whole-transaction at head passes, so the older
  // generation needs room for the full live set (~50 wide txns x up to
  // 31 records) plus FIFO slack — one facet of the §6 trade: the hybrid
  // saves memory but wants more disk than cell-tracked EL.
  options.generation_blocks = {24, 150};
  options.recirculation = true;

  runner::SweepOptions sweep_options;
  sweep_options.jobs = static_cast<int>(cli.jobs);
  runner::SweepRunner sweeper(sweep_options);

  // The two schemes are independent single-threaded simulations; run them
  // as sibling tasks on the shared pool.
  harness::WallTimer timer;
  AblationStats el;
  AblationStats hybrid;
  runner::TaskGroup group(sweeper.pool());
  group.Spawn([&] { el = RunEl(spec, options); });
  group.Spawn([&] { hybrid = RunHybrid(spec, options); });
  group.Wait();
  const double wall_s = timer.Seconds();

  TableWriter table({"metric", "el", "hybrid_el_fw"});
  table.AddRow({"log_writes_per_s", StrFormat("%.2f", el.writes_per_sec),
                StrFormat("%.2f", hybrid.writes_per_sec)});
  table.AddRow({"peak_memory_bytes", StrFormat("%.0f", el.peak_memory),
                StrFormat("%.0f", hybrid.peak_memory)});
  table.AddRow({"records_rewritten", std::to_string(el.rewrites),
                std::to_string(hybrid.rewrites)});
  table.AddRow({"committed", std::to_string(el.committed),
                std::to_string(hybrid.committed)});
  table.AddRow({"killed", std::to_string(el.killed),
                std::to_string(hybrid.killed)});
  harness::PrintTable(
      "Ablation: EL vs EL-FW hybrid (§6) on a 30-update/long-tx workload "
      "(hybrid: less memory, more bandwidth)",
      table);
  Status status = harness::MaybeWriteCsv(cli.csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  runner::BenchJson bench("ablation_hybrid");
  bench.AddConfig("jobs", static_cast<int64_t>(sweeper.jobs()));
  bench.AddConfig("runtime_s", runtime_s);
  status = harness::WriteBenchJson(cli.json_dir, &bench, table, wall_s);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
