// Ablation: §6 lifetime hints.
//
// "Rather than letting the transaction's records progress through
// successively older generations, [the LM] directly adds the
// transaction's log records to the tail of a generation in which the
// records are unlikely to reach the head before the transaction
// finishes." Hints should cut forwarding traffic for long transactions.

#include <cstdio>
#include <iostream>

#include "db/database.h"
#include "harness/report.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  int64_t runtime_s = 200;
  std::string csv;
  FlagSet flags;
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  flags.AddString("csv", &csv, "write results as CSV to this path");
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Help(argv[0]);
    return 2;
  }

  workload::WorkloadSpec spec = workload::PaperMix(0.05);
  spec.runtime = SecondsToSimTime(runtime_s);

  TableWriter table({"config", "writes_per_s", "gen1_writes_per_s",
                     "forwarded", "recirculated", "commit_p99_ms",
                     "killed"});
  for (bool hints : {false, true}) {
    db::DatabaseConfig config;
    config.workload = spec;
    config.log.generation_blocks = {18, 12};
    config.log.recirculation = true;
    if (hints) {
      config.log.lifetime_hints = true;
      config.log.hint_lifetime_threshold = SecondsToSimTime(5);
      config.log.hint_target_generation = 1;
      // Hinted commits land in the sleepy last generation; bound their
      // acknowledgement delay.
      config.log.group_commit_linger = 200 * kMillisecond;
    }
    db::Database database(config);
    db::RunStats stats = database.Run();
    table.AddRow({hints ? "el+hints" : "el",
                  StrFormat("%.2f", stats.log_writes_per_sec),
                  StrFormat("%.2f",
                            stats.log_writes_per_sec_by_generation[1]),
                  std::to_string(stats.records_forwarded),
                  std::to_string(stats.records_recirculated),
                  StrFormat("%.1f", stats.commit_latency_p99_us / 1000.0),
                  std::to_string(stats.kills)});
  }
  harness::PrintTable(
      "Ablation: lifetime hints (§6) — long transactions write directly "
      "to generation 1",
      table);
  Status status = harness::MaybeWriteCsv(csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
