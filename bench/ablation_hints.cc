// Ablation: §6 lifetime hints.
//
// "Rather than letting the transaction's records progress through
// successively older generations, [the LM] directly adds the
// transaction's log records to the tail of a generation in which the
// records are unlikely to reach the head before the transaction
// finishes." Hints should cut forwarding traffic for long transactions.

#include <cstdio>
#include <iostream>

#include "db/database.h"
#include "harness/bench_cli.h"
#include "harness/report.h"
#include "runner/sweep_runner.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  int64_t runtime_s = 200;
  harness::BenchCli cli;
  FlagSet& flags = cli.flags();
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  if (!cli.Parse(argc, argv)) return 2;

  workload::WorkloadSpec spec = workload::PaperMix(0.05);
  spec.runtime = SecondsToSimTime(runtime_s);

  std::vector<db::DatabaseConfig> configs(2);
  for (size_t i = 0; i < configs.size(); ++i) {
    bool hints = i == 1;
    configs[i].workload = spec;
    configs[i].log.generation_blocks = {18, 12};
    configs[i].log.recirculation = true;
    if (hints) {
      configs[i].log.lifetime_hints = true;
      configs[i].log.hint_lifetime_threshold = SecondsToSimTime(5);
      configs[i].log.hint_target_generation = 1;
      // Hinted commits land in the sleepy last generation; bound their
      // acknowledgement delay.
      configs[i].log.group_commit_linger = 200 * kMillisecond;
    }
  }

  runner::SweepOptions sweep_options;
  sweep_options.jobs = static_cast<int>(cli.jobs);
  sweep_options.derive_seeds = false;  // paired with/without hints
  runner::SweepRunner sweeper(sweep_options);

  harness::WallTimer timer;
  std::vector<db::RunStats> results = sweeper.Run(configs);
  const double wall_s = timer.Seconds();

  TableWriter table({"config", "writes_per_s", "gen1_writes_per_s",
                     "forwarded", "recirculated", "commit_p99_ms",
                     "killed"});
  for (size_t i = 0; i < configs.size(); ++i) {
    const db::RunStats& stats = results[i];
    table.AddRow({i == 1 ? "el+hints" : "el",
                  StrFormat("%.2f", stats.log_writes_per_sec),
                  StrFormat("%.2f",
                            stats.log_writes_per_sec_by_generation[1]),
                  std::to_string(stats.records_forwarded),
                  std::to_string(stats.records_recirculated),
                  StrFormat("%.1f", stats.commit_latency_p99_us / 1000.0),
                  std::to_string(stats.kills)});
  }
  harness::PrintTable(
      "Ablation: lifetime hints (§6) — long transactions write directly "
      "to generation 1",
      table);
  Status status = harness::MaybeWriteCsv(cli.csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  runner::BenchJson bench("ablation_hints");
  bench.AddConfig("jobs", static_cast<int64_t>(sweeper.jobs()));
  bench.AddConfig("runtime_s", runtime_s);
  status = harness::WriteBenchJson(cli.json_dir, &bench, table, wall_s);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
