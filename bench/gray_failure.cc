// Gray-failure tolerance: fail-slow drives vs detection + hedged duplex
// writes + quarantine/eject (src/health, docs/fault_model.md).
//
// The paper's disk model is bimodal — healthy or dead — but real fleets
// mostly *degrade*: a fail-slow drive silently drags every write it
// services, and a duplexed log that waits for both copies inherits the
// slower replica's latency. This bench forces a sustained fail-slow plan
// onto one log replica (fault::FaultConfig::force_fail_slow_replica) and
// sweeps severity x {detection off, on} for four stacks:
//
//   el        — single-log EL: shows the raw exposure (nothing to hedge).
//   el_dup    — duplexed EL: the gated configuration.
//   hybrid_dup— duplexed EL–FW hybrid.
//   sharded_dup — 4 duplexed EL shards; the slow replica is shard 0's
//               mirror, so 3/4 of the fleet is unaffected.
//
// Detection off: the duplex merge waits for the slow copy — at 10x a
// single degraded mirror halves effective log bandwidth below the offered
// rate and the open-loop backlog drives commit p99 through the floor.
// Detection on: the health monitor flags the outlier within a few
// hundred ms of onset, hedged writes ack on the first-landed copy, and
// the quarantined replica is ejected and resilvered (fresh media), after
// which the run proceeds at healthy latency.
//
// Self-gated like bench/overload: on the duplexed-EL rows at the highest
// severity, detection ON must finish with zero unsafe committing kills
// and commit p99 <= 2x the healthy baseline, while detection OFF must
// show p99 >= 5x baseline (no silent pass: if the injected gray failure
// were too mild to hurt, the off row would fail the gate). Deterministic
// at any --jobs: fixed config enumeration, per-run virtual clocks.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_cli.h"
#include "harness/report.h"
#include "runner/bench_json.h"
#include "runner/progress.h"
#include "runner/sweep_runner.h"
#include "util/string_util.h"

using namespace elog;

namespace {

enum class Stack { kEl, kElDuplex, kHybridDuplex, kShardedDuplex };

const char* Name(Stack s) {
  switch (s) {
    case Stack::kEl: return "el";
    case Stack::kElDuplex: return "el_dup";
    case Stack::kHybridDuplex: return "hybrid_dup";
    case Stack::kShardedDuplex: return "sharded_dup";
  }
  return "?";
}

bool Duplexed(Stack s) { return s != Stack::kEl; }

db::DatabaseConfig MakeConfig(Stack stack, double severity, bool detection,
                              SimTime runtime, uint64_t seed) {
  db::DatabaseConfig config;
  config.workload = workload::PaperMix(0.05);
  config.workload.runtime = runtime;
  config.workload.seed = seed;
  switch (stack) {
    case Stack::kEl:
      config.log.generation_blocks = {18, 16};
      break;
    case Stack::kElDuplex:
      config.log.generation_blocks = {18, 16};
      config.duplex_log = true;
      break;
    case Stack::kHybridDuplex:
      config.log.generation_blocks = {18, 16};
      config.manager = ManagerKind::kHybrid;
      config.duplex_log = true;
      break;
    case Stack::kShardedDuplex:
      config.log.generation_blocks = {40, 40};
      config.log.shards = 4;
      config.duplex_log = true;
      break;
  }
  if (severity > 1.0) {
    // Force the plan (no RNG draw): the mirror replica of a duplexed
    // stack (shard 0's mirror when sharded), the lone drive otherwise.
    // Onset 1 s in, so every run starts from the same healthy state.
    config.faults.seed = seed;
    config.faults.fail_slow_multiplier = severity;
    config.faults.force_fail_slow_replica = Duplexed(stack) ? 1 : 0;
    config.faults.force_fail_slow_onset = kSecond;
  }
  if (detection) {
    config.health.enabled = true;
    // Pin the laggard wait to just past one healthy service time: a
    // hedged ack then lands ~2x the healthy write latency — inside the
    // 2x-p99 gate — instead of the looser fleet-relative default.
    config.health.hedge.deadline = 20 * kMillisecond;
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t runtime_s = 15;
  harness::BenchCli cli;
  cli.AddQuick("severities {1, 10} only");
  cli.AddSeed(42, "workload RNG seed");
  FlagSet& flags = cli.flags();
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  if (!cli.Parse(argc, argv)) return 2;

  const SimTime runtime = SecondsToSimTime(runtime_s);
  const uint64_t seed = static_cast<uint64_t>(cli.seed);
  const std::vector<Stack> stacks = {Stack::kEl, Stack::kElDuplex,
                                     Stack::kHybridDuplex,
                                     Stack::kShardedDuplex};
  // Severity = sustained service-time multiplier of the fail-slow drive;
  // 1 is the healthy baseline the gates compare against.
  const std::vector<double> severities =
      cli.quick ? std::vector<double>{1, 10} : std::vector<double>{1, 4, 10};

  runner::ProgressReporter progress("gray_failure");
  runner::SweepOptions sweep_options;
  sweep_options.jobs = static_cast<int>(cli.jobs);
  // Paired comparison: every point replays the same arrival stream, so
  // curve differences come from the fail-slow drive and the defense.
  sweep_options.derive_seeds = false;
  sweep_options.progress = &progress;
  runner::SweepRunner sweeper(sweep_options);
  harness::WallTimer timer;

  struct Point {
    Stack stack;
    double severity;
    bool detection;
  };
  std::vector<Point> points;
  std::vector<db::DatabaseConfig> configs;
  for (Stack stack : stacks) {
    for (double severity : severities) {
      for (bool detection : {false, true}) {
        points.push_back({stack, severity, detection});
        configs.push_back(
            MakeConfig(stack, severity, detection, runtime, seed));
      }
    }
  }
  std::vector<db::RunStats> results = sweeper.Run(std::move(configs));

  TableWriter table({"manager", "severity", "detection", "committed_tps",
                     "p50_ms", "p99_ms", "p999_ms", "killed", "unsafe",
                     "hedges_fired", "hedge_wins", "quarantines",
                     "quarantine_skips", "degraded", "flush_redirects"});
  // Healthy baseline p99 per stack: the severity-1, detection-off row.
  std::vector<double> baseline_p99(stacks.size(), 0.0);
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (p.severity == 1.0 && !p.detection) {
      baseline_p99[static_cast<size_t>(p.stack)] =
          results[i].commit_latency_p99_us;
    }
  }
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const db::RunStats& stats = results[i];
    table.AddRow(
        {Name(p.stack), StrFormat("%.0fx", p.severity),
         p.detection ? "on" : "off",
         StrFormat("%.1f", static_cast<double>(stats.total_committed) /
                               static_cast<double>(runtime_s)),
         StrFormat("%.2f", stats.commit_latency_p50_us / 1000.0),
         StrFormat("%.2f", stats.commit_latency_p99_us / 1000.0),
         StrFormat("%.2f", stats.commit_latency_p999_us / 1000.0),
         std::to_string(stats.total_killed),
         std::to_string(stats.unsafe_committing_kills),
         std::to_string(stats.hedges_fired),
         std::to_string(stats.hedge_wins), std::to_string(stats.quarantines),
         std::to_string(stats.quarantine_skips),
         std::to_string(stats.degraded_writes),
         std::to_string(stats.flush_redirects)});
  }

  // The gate, on the duplexed-EL stack at the highest severity. Both
  // directions are checked so the bench cannot silently pass by injecting
  // a gray failure too mild to matter.
  const double top = severities.back();
  const double base_p99 =
      baseline_p99[static_cast<size_t>(Stack::kElDuplex)];
  bool gate_ok = true;
  std::string gate_detail;
  double p99_ratio_on = 0.0;
  double p99_ratio_off = 0.0;
  int64_t unsafe_on = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (p.stack != Stack::kElDuplex || p.severity != top) continue;
    const double ratio =
        base_p99 > 0 ? results[i].commit_latency_p99_us / base_p99 : 0.0;
    if (p.detection) {
      p99_ratio_on = ratio;
      unsafe_on = results[i].unsafe_committing_kills;
      if (results[i].unsafe_committing_kills != 0 || ratio > 2.0) {
        gate_ok = false;
        gate_detail += StrFormat(
            "  el_dup %.0fx detection-on: unsafe=%lld p99=%.1fx baseline "
            "(need unsafe=0, <= 2.0x)\n",
            top, (long long)results[i].unsafe_committing_kills, ratio);
      }
    } else {
      p99_ratio_off = ratio;
      if (ratio < 5.0) {
        gate_ok = false;
        gate_detail += StrFormat(
            "  el_dup %.0fx detection-off: p99=%.1fx baseline (need >= "
            "5.0x — the injected fail-slow is too mild to gate on)\n",
            top, ratio);
      }
    }
  }

  harness::PrintTable(
      "Gray failures: commit-latency quantiles vs fail-slow severity, "
      "detection off/on (gate: duplexed EL at top severity — detection on "
      "keeps unsafe=0 and p99 <= 2x baseline, detection off shows >= 5x)",
      table);

  const double wall_s = timer.Seconds();
  progress.Finish();

  Status status = harness::MaybeWriteCsv(cli.csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  runner::BenchJson bench("gray_failure");
  bench.AddConfig("jobs", static_cast<int64_t>(sweeper.jobs()));
  bench.AddConfig("seed", cli.seed);
  bench.AddConfig("runtime_s", runtime_s);
  bench.AddConfig("quick", cli.quick);
  bench.AddConfig("top_severity", top);
  bench.AddMetric("baseline_p99_ms", base_p99 / 1000.0);
  bench.AddMetric("p99_ratio_detection_on", p99_ratio_on);
  bench.AddMetric("p99_ratio_detection_off", p99_ratio_off);
  bench.AddMetric("unsafe_kills_detection_on", unsafe_on);
  status = harness::WriteBenchJson(cli.json_dir, &bench, table, wall_s);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  if (!gate_ok) {
    std::fprintf(stderr, "FAIL: gray-failure gate broken:\n%s",
                 gate_detail.c_str());
    return 1;
  }
  return 0;
}
