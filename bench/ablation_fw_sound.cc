// Ablation: how much does the paper's FW simplification flatter FW?
//
// §4: "We did not implement a checkpoint facility for the FW technique;
// the firewall was always the oldest non-garbage log record from the
// oldest active transaction. This omission favors FW because it ignores
// the overhead (in terms of disk space and bandwidth) associated with
// checkpointing."
//
// Our engine can run the crash-sound variant: a single queue that — like
// EL — retains a committed transaction's records until its updates are
// flushed to the stable version (release_on_commit off). The space gap
// between the two FW variants bounds what a checkpointing facility would
// have to buy back.

#include <cstdio>
#include <iostream>

#include "core/fw_manager.h"
#include "harness/min_space.h"
#include "harness/report.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  int64_t runtime_s = 200;
  std::string csv;
  FlagSet flags;
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  flags.AddString("csv", &csv, "write results as CSV to this path");
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Help(argv[0]);
    return 2;
  }

  workload::WorkloadSpec spec = workload::PaperMix(0.05);
  spec.runtime = SecondsToSimTime(runtime_s);

  TableWriter table({"variant", "min_blocks", "writes_per_s",
                     "urgent_flushes", "unsafe_commit_drops",
                     "peak_mem_bytes"});

  // Paper FW: committed records become garbage at commit.
  {
    harness::MinSpaceResult result =
        harness::MinFirewallSpace(MakeFirewallOptions(8), spec);
    table.AddRow({"fw_paper (release at commit)",
                  std::to_string(result.total_blocks),
                  StrFormat("%.2f", result.stats.log_writes_per_sec),
                  std::to_string(result.stats.urgent_flushes),
                  std::to_string(result.stats.unsafe_commit_drops),
                  StrFormat("%.0f", result.stats.peak_memory_bytes)});
  }
  // Sound FW: records retained until flushed (no checkpoints, so
  // committed-unflushed records reaching the head are urgently flushed).
  {
    LogManagerOptions sound = MakeFirewallOptions(8);
    sound.release_on_commit = false;
    harness::MinSpaceResult result =
        harness::MinFirewallSpace(sound, spec);
    table.AddRow({"fw_sound (retain until flushed)",
                  std::to_string(result.total_blocks),
                  StrFormat("%.2f", result.stats.log_writes_per_sec),
                  std::to_string(result.stats.urgent_flushes),
                  std::to_string(result.stats.unsafe_commit_drops),
                  StrFormat("%.0f", result.stats.peak_memory_bytes)});
  }
  // The same pair under scarce flushing (45 ms transfers): now retention
  // actually holds log space and forces urgent head-of-queue flushes.
  for (bool release : {true, false}) {
    LogManagerOptions options = MakeFirewallOptions(8);
    options.release_on_commit = release;
    options.flush_transfer_time = 45 * kMillisecond;
    harness::MinSpaceResult result = harness::MinFirewallSpace(options, spec);
    table.AddRow({release ? "fw_paper @45ms flush"
                          : "fw_sound @45ms flush",
                  std::to_string(result.total_blocks),
                  StrFormat("%.2f", result.stats.log_writes_per_sec),
                  std::to_string(result.stats.urgent_flushes),
                  std::to_string(result.stats.unsafe_commit_drops),
                  StrFormat("%.0f", result.stats.peak_memory_bytes)});
  }

  harness::PrintTable(
      "Ablation: paper FW (checkpoint cost ignored) vs crash-sound FW "
      "(committed records retained until flushed)",
      table);
  Status status = harness::MaybeWriteCsv(csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
