// Ablation: how much does the paper's FW simplification flatter FW?
//
// §4: "We did not implement a checkpoint facility for the FW technique;
// the firewall was always the oldest non-garbage log record from the
// oldest active transaction. This omission favors FW because it ignores
// the overhead (in terms of disk space and bandwidth) associated with
// checkpointing."
//
// Our engine can run the crash-sound variant: a single queue that — like
// EL — retains a committed transaction's records until its updates are
// flushed to the stable version (release_on_commit off). The space gap
// between the two FW variants bounds what a checkpointing facility would
// have to buy back.

#include <cstdio>
#include <iostream>

#include "core/fw_manager.h"
#include "harness/min_space.h"
#include "harness/bench_cli.h"
#include "harness/report.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  int64_t runtime_s = 200;
  harness::BenchCli cli;
  FlagSet& flags = cli.flags();
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  if (!cli.Parse(argc, argv)) return 2;

  workload::WorkloadSpec spec = workload::PaperMix(0.05);
  spec.runtime = SecondsToSimTime(runtime_s);

  // Four FW variants: {release-at-commit, retain-until-flushed} at the
  // paper's 25 ms flush transfers and at scarce 45 ms transfers. Each
  // minimum-space search is independent; run them as sibling tasks.
  struct Case {
    const char* label;
    bool release_on_commit;
    bool scarce_flush;
  };
  const std::vector<Case> cases = {
      {"fw_paper (release at commit)", true, false},
      {"fw_sound (retain until flushed)", false, false},
      {"fw_paper @45ms flush", true, true},
      {"fw_sound @45ms flush", false, true},
  };

  runner::SweepOptions sweep_options;
  sweep_options.jobs = static_cast<int>(cli.jobs);
  runner::SweepRunner sweeper(sweep_options);

  harness::WallTimer timer;
  std::vector<harness::MinSpaceResult> results(cases.size());
  runner::TaskGroup group(sweeper.pool());
  for (size_t i = 0; i < cases.size(); ++i) {
    group.Spawn([&, i] {
      LogManagerOptions options = MakeFirewallOptions(8);
      options.release_on_commit = cases[i].release_on_commit;
      if (cases[i].scarce_flush) {
        options.flush_transfer_time = 45 * kMillisecond;
      }
      results[i] = harness::MinFirewallSpace(options, spec, &sweeper);
    });
  }
  group.Wait();
  const double wall_s = timer.Seconds();

  TableWriter table({"variant", "min_blocks", "writes_per_s",
                     "urgent_flushes", "unsafe_commit_drops",
                     "peak_mem_bytes"});
  for (size_t i = 0; i < cases.size(); ++i) {
    const harness::MinSpaceResult& result = results[i];
    table.AddRow({cases[i].label, std::to_string(result.total_blocks),
                  StrFormat("%.2f", result.stats.log_writes_per_sec),
                  std::to_string(result.stats.urgent_flushes),
                  std::to_string(result.stats.unsafe_commit_drops),
                  StrFormat("%.0f", result.stats.peak_memory_bytes)});
  }

  harness::PrintTable(
      "Ablation: paper FW (checkpoint cost ignored) vs crash-sound FW "
      "(committed records retained until flushed)",
      table);
  Status status = harness::MaybeWriteCsv(cli.csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  runner::BenchJson bench("ablation_fw_sound");
  bench.AddConfig("jobs", static_cast<int64_t>(sweeper.jobs()));
  bench.AddConfig("runtime_s", runtime_s);
  status = harness::WriteBenchJson(cli.json_dir, &bench, table, wall_s);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
