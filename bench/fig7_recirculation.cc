// Figure 7: EL disk bandwidth vs. disk space with recirculation enabled.
//
// Procedure from the paper: 5% mix; generation 0 fixed at 18 blocks (its
// no-recirculation optimum); the last generation is progressively shrunk
// until transactions are killed. Space falls from 34 to 28 blocks while
// total bandwidth rises from 12.87 to 12.99 writes/s. Against FW
// (123 blocks, 11.63 w/s) that is a 4.4x space reduction for a 12%
// bandwidth increase.

#include <cstdio>
#include <iostream>
#include <string>

#include "db/database.h"
#include "harness/figures.h"
#include "harness/bench_cli.h"
#include "harness/report.h"
#include "runner/sweep_runner.h"
#include "util/check.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  int64_t runtime_s = 500;
  int64_t gen0 = 18;
  int64_t gen1_start = 16;
  harness::BenchCli cli;
  cli.AddSeed(42, "workload RNG seed");
  FlagSet& flags = cli.flags();
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  flags.AddInt64("gen0", &gen0, "fixed generation-0 size (paper: 18)");
  flags.AddInt64("gen1_start", &gen1_start,
                 "largest last-generation size swept (paper starts at 16)");
  if (!cli.Parse(argc, argv)) return 2;

  workload::WorkloadSpec spec = workload::PaperMix(0.05);
  spec.runtime = SecondsToSimTime(runtime_s);
  spec.seed = static_cast<uint64_t>(cli.seed);
  LogManagerOptions base;

  runner::SweepOptions sweep_options;
  sweep_options.jobs = static_cast<int>(cli.jobs);
  runner::SweepRunner sweeper(sweep_options);

  harness::WallTimer timer;
  harness::Fig7Result result = harness::RunFig7(
      base, spec, static_cast<uint32_t>(gen0),
      static_cast<uint32_t>(gen1_start), &sweeper);
  const double wall_s = timer.Seconds();

  TableWriter table({"gen1_blocks", "total_blocks", "survives",
                     "gen1_writes_per_s", "total_writes_per_s",
                     "recirculated_records"});
  for (const harness::Fig7Point& point : result.points) {
    table.AddRow({std::to_string(point.gen1_blocks),
                  std::to_string(point.total_blocks),
                  point.survives ? "yes" : "no (killed)",
                  StrFormat("%.3f", point.bandwidth_gen1),
                  StrFormat("%.3f", point.bandwidth_total),
                  std::to_string(point.recirculated)});
  }
  harness::PrintTable(
      StrFormat("Figure 7: EL bandwidth vs space, recirculation on, gen0=%u "
                "(paper: 34->28 blocks, 12.87->12.99 w/s; min total 28)",
                result.gen0_blocks),
      table);
  std::printf("minimum surviving configuration: %u + %u = %u blocks\n",
              result.gen0_blocks, result.min_gen1_blocks,
              result.gen0_blocks + result.min_gen1_blocks);

  Status status = harness::MaybeWriteCsv(cli.csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  // Cross-check: re-run the minimum surviving configuration with the
  // MetricSampler on and assert the series' final cumulative values are
  // the very scalars the manager reports — recirculation/forwarding
  // accounting has one pipeline (the "el.*" registry counters), not a
  // parallel ad-hoc one.
  db::DatabaseConfig check_config;
  check_config.log = base;
  check_config.log.generation_blocks = {result.gen0_blocks,
                                        result.min_gen1_blocks};
  check_config.log.recirculation = true;
  check_config.workload = spec;
  check_config.metric_sample_interval = SecondsToSimTime(1);
  db::Database check_db(check_config);
  db::RunStats check_stats = check_db.Run();
  const obs::MetricSampler& sampler = *check_db.sampler();
  const size_t last = sampler.num_samples() - 1;
  ELOG_CHECK_EQ(sampler.Value(last, "el.recirculated"),
                static_cast<double>(check_stats.records_recirculated));
  ELOG_CHECK_EQ(sampler.Value(last, "el.forwarded"),
                static_cast<double>(check_stats.records_forwarded));
  double per_gen_forwarded = 0.0;
  double per_gen_recirculated = 0.0;
  for (size_t g = 0; g < check_config.log.generation_blocks.size(); ++g) {
    const std::string gen = "el.gen" + std::to_string(g);
    per_gen_forwarded += sampler.Value(last, gen + ".forwarded");
    per_gen_recirculated += sampler.Value(last, gen + ".recirculated");
  }
  ELOG_CHECK_EQ(per_gen_forwarded,
                static_cast<double>(check_stats.records_forwarded));
  ELOG_CHECK_EQ(per_gen_recirculated,
                static_cast<double>(check_stats.records_recirculated));

  runner::BenchJson bench("fig7_recirculation");
  bench.AddConfig("jobs", static_cast<int64_t>(sweeper.jobs()));
  bench.AddConfig("seed", cli.seed);
  bench.AddConfig("runtime_s", runtime_s);
  bench.AddConfig("gen0", gen0);
  bench.AddConfig("gen1_start", gen1_start);
  bench.AddMetric("min_gen1_blocks",
                  static_cast<int64_t>(result.min_gen1_blocks));
  bench.AddMetric("min_total_blocks",
                  static_cast<int64_t>(result.gen0_blocks +
                                       result.min_gen1_blocks));
  bench.AddMetric("min_config_recirculated",
                  check_stats.records_recirculated);
  bench.AddMetric("min_config_forwarded", check_stats.records_forwarded);
  status = harness::WriteBenchJson(cli.json_dir, &bench, table, wall_s);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
