// Ablation: the §2.2 forwarding quantum ("fill the buffer before the
// forced write").
//
// Forwarded records must be written out promptly, so each forwarding
// episode costs one block write regardless of payload. The paper tops the
// buffer up with more head-region records to amortize that write; the
// cost is that young records leave generation 0 early. This bench
// measures both sides, at the paper operating point and on a heavier
// wide-transaction workload where the top-up dominates bandwidth.

#include <cstdio>
#include <iostream>

#include "db/database.h"
#include "harness/bench_cli.h"
#include "harness/report.h"
#include "runner/sweep_runner.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  int64_t runtime_s = 150;
  harness::BenchCli cli;
  FlagSet& flags = cli.flags();
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  if (!cli.Parse(argc, argv)) return 2;

  workload::WorkloadSpec paper = workload::PaperMix(0.05);
  paper.runtime = SecondsToSimTime(runtime_s);

  // Wide transactions: many more mandatory forwards per head advance.
  workload::TransactionType small;
  small.name = "small";
  small.probability = 0.9;
  small.lifetime = SecondsToSimTime(1);
  small.num_data_records = 2;
  small.data_record_bytes = 100;
  workload::TransactionType wide;
  wide.name = "wide";
  wide.probability = 0.1;
  wide.lifetime = SecondsToSimTime(10);
  wide.num_data_records = 30;
  wide.data_record_bytes = 100;
  workload::WorkloadSpec heavy;
  heavy.types = {small, wide};
  heavy.arrival_rate_tps = 50;
  heavy.runtime = SecondsToSimTime(runtime_s);

  struct Case {
    const char* label;
    const workload::WorkloadSpec* spec;
    std::vector<uint32_t> layout;
    bool forward_fill;
  };
  const std::vector<Case> cases = {
      {"paper_5pct", &paper, {18, 12}, true},
      {"paper_5pct", &paper, {18, 12}, false},
      {"wide_10pct", &heavy, {24, 72}, true},
      {"wide_10pct", &heavy, {24, 72}, false},
  };
  std::vector<db::DatabaseConfig> configs(cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    configs[i].workload = *cases[i].spec;
    configs[i].log.generation_blocks = cases[i].layout;
    configs[i].log.recirculation = true;
    configs[i].log.forward_fill = cases[i].forward_fill;
  }

  runner::SweepOptions sweep_options;
  sweep_options.jobs = static_cast<int>(cli.jobs);
  sweep_options.derive_seeds = false;  // paired on/off per workload
  runner::SweepRunner sweeper(sweep_options);

  harness::WallTimer timer;
  std::vector<db::RunStats> results = sweeper.Run(configs);
  const double wall_s = timer.Seconds();

  TableWriter table({"workload", "topup", "writes_per_s", "gen1_wps",
                     "forwarded", "killed"});
  for (size_t i = 0; i < cases.size(); ++i) {
    const db::RunStats& stats = results[i];
    table.AddRow({cases[i].label, cases[i].forward_fill ? "on" : "off",
                  StrFormat("%.2f", stats.log_writes_per_sec),
                  StrFormat("%.2f",
                            stats.log_writes_per_sec_by_generation.back()),
                  std::to_string(stats.records_forwarded),
                  std::to_string(stats.kills)});
  }

  harness::PrintTable(
      "Ablation: §2.2 forwarding top-up (gather-to-fill before the forced "
      "write)",
      table);
  Status status = harness::MaybeWriteCsv(cli.csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  runner::BenchJson bench("ablation_topup");
  bench.AddConfig("jobs", static_cast<int64_t>(sweeper.jobs()));
  bench.AddConfig("runtime_s", runtime_s);
  status = harness::WriteBenchJson(cli.json_dir, &bench, table, wall_s);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
