// Ablation: the §2.2 forwarding quantum ("fill the buffer before the
// forced write").
//
// Forwarded records must be written out promptly, so each forwarding
// episode costs one block write regardless of payload. The paper tops the
// buffer up with more head-region records to amortize that write; the
// cost is that young records leave generation 0 early. This bench
// measures both sides, at the paper operating point and on a heavier
// wide-transaction workload where the top-up dominates bandwidth.

#include <cstdio>
#include <iostream>

#include "db/database.h"
#include "harness/report.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace elog;

namespace {

void Row(TableWriter* table, const char* label,
         const workload::WorkloadSpec& spec,
         const std::vector<uint32_t>& layout, bool forward_fill) {
  db::DatabaseConfig config;
  config.workload = spec;
  config.log.generation_blocks = layout;
  config.log.recirculation = true;
  config.log.forward_fill = forward_fill;
  db::Database database(config);
  db::RunStats stats = database.Run();
  table->AddRow({label, forward_fill ? "on" : "off",
                 StrFormat("%.2f", stats.log_writes_per_sec),
                 StrFormat("%.2f",
                           stats.log_writes_per_sec_by_generation.back()),
                 std::to_string(stats.records_forwarded),
                 std::to_string(stats.kills)});
}

}  // namespace

int main(int argc, char** argv) {
  int64_t runtime_s = 150;
  std::string csv;
  FlagSet flags;
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  flags.AddString("csv", &csv, "write results as CSV to this path");
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Help(argv[0]);
    return 2;
  }

  TableWriter table({"workload", "topup", "writes_per_s", "gen1_wps",
                     "forwarded", "killed"});

  workload::WorkloadSpec paper = workload::PaperMix(0.05);
  paper.runtime = SecondsToSimTime(runtime_s);
  Row(&table, "paper_5pct", paper, {18, 12}, true);
  Row(&table, "paper_5pct", paper, {18, 12}, false);

  // Wide transactions: many more mandatory forwards per head advance.
  workload::TransactionType small;
  small.name = "small";
  small.probability = 0.9;
  small.lifetime = SecondsToSimTime(1);
  small.num_data_records = 2;
  small.data_record_bytes = 100;
  workload::TransactionType wide;
  wide.name = "wide";
  wide.probability = 0.1;
  wide.lifetime = SecondsToSimTime(10);
  wide.num_data_records = 30;
  wide.data_record_bytes = 100;
  workload::WorkloadSpec heavy;
  heavy.types = {small, wide};
  heavy.arrival_rate_tps = 50;
  heavy.runtime = SecondsToSimTime(runtime_s);
  Row(&table, "wide_10pct", heavy, {24, 72}, true);
  Row(&table, "wide_10pct", heavy, {24, 72}, false);

  harness::PrintTable(
      "Ablation: §2.2 forwarding top-up (gather-to-fill before the forced "
      "write)",
      table);
  Status status = harness::MaybeWriteCsv(csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
