// Extension bench: UNDO/REDO logging (§1's generalization) vs the
// paper's REDO-only assumption.
//
// With a steal policy, uncommitted updates may reach the stable version
// early (modeled buffer-pool pressure); data records carry before-images
// (+8 accounted bytes), aborts compensate, and recovery gains an undo
// pass. This bench measures the log-bandwidth premium and the undo
// activity at several steal rates, with a crash mid-run to exercise
// recovery's undo pass.

#include <cstdio>
#include <iostream>

#include "db/database.h"
#include "db/recovery.h"
#include "harness/bench_cli.h"
#include "harness/report.h"
#include "runner/sweep_runner.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  int64_t runtime_s = 120;
  harness::BenchCli cli;
  FlagSet& flags = cli.flags();
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  if (!cli.Parse(argc, argv)) return 2;

  struct Case {
    const char* name;
    bool undo_redo;
    SimTime steal_interval;
  };
  const std::vector<Case> cases = {
      {"redo_only", false, 0},
      {"undo_redo_nosteal", true, 0},
      {"undo_redo_steal_10ps", true, 100 * kMillisecond},
      {"undo_redo_steal_100ps", true, 10 * kMillisecond},
  };

  runner::SweepOptions sweep_options;
  sweep_options.jobs = static_cast<int>(cli.jobs);
  runner::SweepRunner sweeper(sweep_options);

  // Each case is a crash-recovery run plus a full-window measurement run;
  // the steal/compensation counters live on the Database's manager, so
  // the rows are assembled inside the task and stored per index.
  struct Row {
    double writes_per_sec = 0;
    int64_t steals = 0;
    int64_t compensations = 0;
    size_t crash_undos = 0;
    int64_t killed = 0;
  };
  harness::WallTimer timer;
  std::vector<Row> rows(cases.size());
  runner::TaskGroup group(sweeper.pool());
  for (size_t i = 0; i < cases.size(); ++i) {
    group.Spawn([&, i] {
      const Case& c = cases[i];
      // Bandwidth/steal measurement over the full window. The workload
      // has a 2% abort rate so compensations actually occur.
      db::DatabaseConfig config;
      config.workload = workload::PaperMix(0.10);
      for (auto& type : config.workload.types) {
        type.abort_probability = 0.02;
      }
      config.workload.runtime = SecondsToSimTime(runtime_s);
      config.log.generation_blocks = {20, 16};
      config.log.recirculation = true;
      config.log.undo_redo = c.undo_redo;
      config.log.steal_interval = c.steal_interval;

      {
        // Separate run crashed mid-flight for the recovery undo count.
        db::DatabaseConfig crash_config = config;
        crash_config.workload.runtime = SecondsToSimTime(3600);
        db::Database crash_db(crash_config);
        db::Database::CrashImage image = crash_db.RunUntilCrash(
            SecondsToSimTime(std::min<int64_t>(runtime_s, 30)), true);
        db::RecoveryResult result =
            db::RecoveryManager::Recover(image.log, image.stable);
        rows[i].crash_undos = result.undos_applied;
      }

      db::Database database(config);
      db::RunStats stats = database.Run();
      rows[i].writes_per_sec = stats.log_writes_per_sec;
      rows[i].steals = database.manager().steals();
      rows[i].compensations = database.manager().compensations();
      rows[i].killed = stats.total_killed;
    });
  }
  group.Wait();
  const double wall_s = timer.Seconds();

  TableWriter table({"mode", "steal_per_s", "writes_per_s", "steals",
                     "compensations", "crash_undos", "killed"});
  for (size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    double steal_rate = c.steal_interval > 0
                            ? 1.0 / SimTimeToSeconds(c.steal_interval)
                            : 0.0;
    table.AddRow({c.name, StrFormat("%.0f", steal_rate),
                  StrFormat("%.2f", rows[i].writes_per_sec),
                  std::to_string(rows[i].steals),
                  std::to_string(rows[i].compensations),
                  std::to_string(rows[i].crash_undos),
                  std::to_string(rows[i].killed)});
  }

  harness::PrintTable(
      "Extension: UNDO/REDO logging with a steal policy (before-images "
      "+8 B/record; recovery gains an undo pass)",
      table);
  Status status = harness::MaybeWriteCsv(cli.csv, table);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  runner::BenchJson bench("ablation_undo_redo");
  bench.AddConfig("jobs", static_cast<int64_t>(sweeper.jobs()));
  bench.AddConfig("runtime_s", runtime_s);
  status = harness::WriteBenchJson(cli.json_dir, &bench, table, wall_s);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
