// Interactive-workload comparison: EL vs FW on the paper's motivating
// scenario — an interactive system where most transactions are short but
// a minority run 10x longer (§1, §4).
//
// Prints a side-by-side comparison of disk space, bandwidth and memory at
// each scheme's minimum viable log size.

#include <cstdio>
#include <iostream>

#include "core/fw_manager.h"
#include "harness/min_space.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  int64_t runtime_s = 120;
  double long_fraction = 0.05;
  FlagSet flags;
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  flags.AddDouble("long_fraction", &long_fraction,
                  "fraction of 10 s transactions");
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Help(argv[0]);
    return 2;
  }

  workload::WorkloadSpec spec = workload::PaperMix(long_fraction);
  spec.runtime = SecondsToSimTime(runtime_s);

  std::printf("Searching for minimum log sizes (%.0f%% long transactions, "
              "%lld s)...\n",
              long_fraction * 100, static_cast<long long>(runtime_s));

  LogManagerOptions base;
  harness::MinSpaceResult fw =
      harness::MinFirewallSpace(MakeFirewallOptions(8, base), spec);
  std::printf("  firewall search done (%d simulations)\n", fw.simulations);

  LogManagerOptions el = base;
  el.recirculation = true;
  harness::MinSpaceResult el_min = harness::MinElSpace(el, spec, 4, 30);
  std::printf("  ephemeral search done (%d simulations)\n",
              el_min.simulations);

  auto row = [](const char* name, const char* fw_value,
                const char* el_value) {
    std::printf("  %-22s %18s %24s\n", name, fw_value, el_value);
  };
  std::printf("\n%-24s %18s %24s\n", "", "firewall (FW)", "ephemeral (EL)");
  std::printf("%s\n", std::string(70, '-').c_str());
  row("log space",
      StrFormat("%u blocks", fw.total_blocks).c_str(),
      StrFormat("%u blocks (%u+%u)", el_min.total_blocks,
                el_min.generation_blocks[0], el_min.generation_blocks[1])
          .c_str());
  row("log bandwidth",
      StrFormat("%.2f writes/s", fw.stats.log_writes_per_sec).c_str(),
      StrFormat("%.2f writes/s", el_min.stats.log_writes_per_sec).c_str());
  row("peak memory",
      HumanBytes(fw.stats.peak_memory_bytes).c_str(),
      HumanBytes(el_min.stats.peak_memory_bytes).c_str());
  row("commit latency (mean)",
      StrFormat("%.1f ms", fw.stats.commit_latency_mean_us / 1000.0).c_str(),
      StrFormat("%.1f ms", el_min.stats.commit_latency_mean_us / 1000.0)
          .c_str());
  row("transactions killed",
      StrFormat("%lld", (long long)fw.stats.total_killed).c_str(),
      StrFormat("%lld", (long long)el_min.stats.total_killed).c_str());

  double space_ratio =
      static_cast<double>(fw.total_blocks) / el_min.total_blocks;
  double bw_premium = 100.0 *
                      (el_min.stats.log_writes_per_sec -
                       fw.stats.log_writes_per_sec) /
                      fw.stats.log_writes_per_sec;
  std::printf("\nEL uses %.1fx less disk for the log, paying +%.0f%% log "
              "bandwidth and %.1fx memory.\n",
              space_ratio, bw_premium,
              el_min.stats.peak_memory_bytes / fw.stats.peak_memory_bytes);
  std::printf("(The paper reports 4.4x space and +12%% bandwidth at the 5%% "
              "mix over 500 s.)\n");
  return 0;
}
