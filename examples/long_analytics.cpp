// Wide-lifetime workload: OLTP traffic plus minute-scale analytics
// transactions — the situation that breaks firewall logging (§1: "if a
// transaction lives too long, the log may run out of disk space...
// System R's solution is to simply kill off excessively lengthy
// transactions").
//
// Demonstrates: with a fixed, modest log budget, FW kills the analytics
// transactions while EL (recirculation + lifetime hints) completes them.

#include <cstdio>
#include <iostream>

#include "core/fw_manager.h"
#include "db/database.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace elog;

namespace {

workload::WorkloadSpec AnalyticsMix(int64_t runtime_s) {
  workload::TransactionType oltp;
  oltp.name = "oltp-500ms";
  oltp.probability = 0.98;
  oltp.lifetime = 500 * kMillisecond;
  oltp.num_data_records = 3;
  oltp.data_record_bytes = 120;

  // 1/s x 60 s = 60 concurrent analytics transactions, ~916 live log
  // bytes each: ~28 blocks of genuinely-retained state.
  workload::TransactionType analytics;
  analytics.name = "analytics-60s";
  analytics.probability = 0.02;
  analytics.lifetime = SecondsToSimTime(60);
  analytics.num_data_records = 6;
  analytics.data_record_bytes = 150;

  workload::WorkloadSpec spec;
  spec.types = {oltp, analytics};
  spec.arrival_rate_tps = 50.0;
  spec.runtime = SecondsToSimTime(runtime_s);
  spec.num_objects = 10'000'000;
  return spec;
}

void Report(const char* name, const db::RunStats& stats,
            uint32_t total_blocks) {
  std::printf("  %-26s %4u blocks  %7.2f writes/s  killed %5lld / %lld  "
              "mem peak %s\n",
              name, total_blocks, stats.log_writes_per_sec,
              (long long)stats.total_killed, (long long)stats.total_started,
              HumanBytes(stats.peak_memory_bytes).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int64_t runtime_s = 180;
  int64_t budget_blocks = 60;
  FlagSet flags;
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  flags.AddInt64("budget", &budget_blocks,
                 "disk block budget for the whole log");
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Help(argv[0]);
    return 2;
  }

  workload::WorkloadSpec spec = AnalyticsMix(runtime_s);
  std::printf("Workload: 98%% oltp (0.5 s, 3x120 B) + 2%% analytics "
              "(60 s, 6x150 B) at 50 TPS for %llds\n",
              static_cast<long long>(runtime_s));
  std::printf("Log budget: %lld blocks (%s)\n\n",
              static_cast<long long>(budget_blocks),
              HumanBytes(budget_blocks * 2048.0).c_str());

  // Firewall: the whole budget as one queue.
  {
    db::DatabaseConfig config;
    config.workload = spec;
    config.log = MakeFirewallOptions(static_cast<uint32_t>(budget_blocks));
    db::Database database(config);
    db::RunStats stats = database.Run();
    Report("firewall", stats, config.log.total_blocks());
  }

  // EL, budget split two ways, recirculation on.
  {
    db::DatabaseConfig config;
    config.workload = spec;
    uint32_t gen1 = 2 * static_cast<uint32_t>(budget_blocks) / 3;
    config.log.generation_blocks = {
        static_cast<uint32_t>(budget_blocks) - gen1, gen1};
    config.log.recirculation = true;
    db::Database database(config);
    db::RunStats stats = database.Run();
    Report("ephemeral", stats, config.log.total_blocks());
  }

  // EL with §6 lifetime hints: analytics transactions write directly to
  // the last generation, skipping the forwarding churn.
  {
    db::DatabaseConfig config;
    config.workload = spec;
    uint32_t gen1 = 2 * static_cast<uint32_t>(budget_blocks) / 3;
    config.log.generation_blocks = {
        static_cast<uint32_t>(budget_blocks) - gen1, gen1};
    config.log.recirculation = true;
    config.log.lifetime_hints = true;
    config.log.hint_lifetime_threshold = SecondsToSimTime(10);
    config.log.hint_target_generation = 1;
    // Direct writes to the sleepy last generation need a linger so that
    // hinted COMMITs do not wait forever for a full buffer. 200 ms is
    // longer than generation 0's natural fill time, so OLTP commit
    // traffic is unaffected.
    config.log.group_commit_linger = 200 * kMillisecond;
    db::Database database(config);
    db::RunStats stats = database.Run();
    Report("ephemeral + hints", stats, config.log.total_blocks());
  }

  std::printf("\nFW sacrifices the long analytics transactions; EL retains "
              "them in the same footprint.\n");
  return 0;
}
