// Quickstart: build an ephemeral-logging database, run a small workload,
// and print what the log manager did.
//
// The public API in three steps:
//   1. describe the workload (transaction types + arrival rate),
//   2. configure the log manager (generation sizes, recirculation, k, ...),
//   3. construct db::Database and Run().

#include <cstdio>
#include <iostream>

#include "db/database.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  int64_t runtime_s = 60;
  int64_t gen0 = 18;
  int64_t gen1 = 12;
  double long_fraction = 0.05;
  bool recirculation = true;
  FlagSet flags;
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  flags.AddInt64("gen0", &gen0, "generation-0 size in 2 KB blocks");
  flags.AddInt64("gen1", &gen1, "generation-1 size in 2 KB blocks");
  flags.AddDouble("long_fraction", &long_fraction,
                  "fraction of 10 s transactions");
  flags.AddBool("recirculation", &recirculation,
                "recirculate in the last generation");
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Help(argv[0]);
    return 2;
  }

  // 1. The paper's standard workload: mostly 1 s transactions writing two
  //    100-byte updates, a tail of 10 s transactions writing four.
  db::DatabaseConfig config;
  config.workload = workload::PaperMix(long_fraction);
  config.workload.runtime = SecondsToSimTime(runtime_s);

  // 2. Ephemeral logging over two generations. Every other knob is the
  //    paper's default: 2000-byte blocks, k = 2 gap, 4 buffers per
  //    generation, 15 ms log writes, 10 flush drives at 25 ms.
  config.log.generation_blocks = {static_cast<uint32_t>(gen0),
                                  static_cast<uint32_t>(gen1)};
  config.log.recirculation = recirculation;

  // 3. Run.
  db::Database database(config);
  db::RunStats stats = database.Run();

  std::printf("Ephemeral logging, %lld s of arrivals at %.0f TPS\n",
              static_cast<long long>(runtime_s),
              config.workload.arrival_rate_tps);
  std::printf("  log space          : %u blocks (%s)\n",
              config.log.total_blocks(),
              HumanBytes(config.log.total_blocks() * 2048.0).c_str());
  std::printf("  transactions       : %lld started, %lld committed, "
              "%lld killed\n",
              (long long)stats.total_started, (long long)stats.total_committed,
              (long long)stats.total_killed);
  std::printf("  log bandwidth      : %.2f block writes/s",
              stats.log_writes_per_sec);
  for (size_t g = 0; g < stats.log_writes_per_sec_by_generation.size(); ++g) {
    std::printf("%s gen%zu %.2f", g == 0 ? "  (" : ",", g,
                stats.log_writes_per_sec_by_generation[g]);
  }
  std::printf(")\n");
  std::printf("  records            : %lld appended, %lld forwarded, "
              "%lld recirculated, %lld discarded as garbage\n",
              (long long)stats.records_appended,
              (long long)stats.records_forwarded,
              (long long)stats.records_recirculated,
              (long long)stats.records_discarded);
  std::printf("  flushing           : %lld updates flushed, backlog %zu, "
              "mean seek distance %.0f oids\n",
              (long long)stats.flushes_completed, stats.flush_backlog,
              stats.mean_flush_seek_distance);
  std::printf("  memory (modeled)   : peak %s, average %s\n",
              HumanBytes(stats.peak_memory_bytes).c_str(),
              HumanBytes(stats.avg_memory_bytes).c_str());
  std::printf("  commit latency     : mean %.1f ms, p99 %.1f ms "
              "(group commit)\n",
              stats.commit_latency_mean_us / 1000.0,
              stats.commit_latency_p99_us / 1000.0);

  database.manager().CheckInvariants();
  std::printf("internal invariants verified.\n");
  return 0;
}
