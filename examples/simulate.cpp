// simulate: general-purpose simulation driver.
//
// Exposes the full configuration surface — scheme, generation layout,
// policies, workload mix, arrival process, timings — as command-line
// flags, runs one simulation, and reports the run statistics plus the
// internal metrics registry. The Swiss-army knife for exploring the
// design space beyond the canned benches.
//
// Examples:
//   simulate --gens=18,12 --runtime=100
//   simulate --scheme=fw --gens=123 --long_fraction=0.2
//   simulate --gens=20,9 --flush_ms=45 --verbose
//   simulate --gens=18,16 --arrivals=poisson --tps=150 --seed=7

#include <cstdio>
#include <iostream>

#include "core/fw_manager.h"
#include "db/database.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  std::string scheme = "el";
  std::string gens = "18,12";
  std::string arrivals = "deterministic";
  int64_t runtime_s = 100;
  double tps = 100.0;
  double long_fraction = 0.05;
  int64_t seed = 42;
  bool recirculation = true;
  bool hints = false;
  bool flush_on_demand = false;
  int64_t flush_ms = 25;
  int64_t flush_drives = 10;
  int64_t linger_ms = 0;
  int64_t k_blocks = 2;
  bool verbose = false;

  FlagSet flags;
  flags.AddString("scheme", &scheme, "log manager: el | fw");
  flags.AddString("gens", &gens,
                  "comma-separated generation sizes in blocks (fw: one)");
  flags.AddString("arrivals", &arrivals, "deterministic | poisson");
  flags.AddInt64("runtime", &runtime_s, "simulated seconds of arrivals");
  flags.AddDouble("tps", &tps, "transactions per second");
  flags.AddDouble("long_fraction", &long_fraction,
                  "fraction of 10 s transactions in the paper mix");
  flags.AddInt64("seed", &seed, "workload RNG seed");
  flags.AddBool("recirculation", &recirculation,
                "recirculate in the last generation");
  flags.AddBool("hints", &hints,
                "route >=5 s transactions directly to the last generation");
  flags.AddBool("flush_on_demand", &flush_on_demand,
                "naive 2.1 policy: flush only when records reach a head");
  flags.AddInt64("flush_ms", &flush_ms, "flush transfer time per object");
  flags.AddInt64("flush_drives", &flush_drives, "number of flush drives");
  flags.AddInt64("linger_ms", &linger_ms,
                 "group-commit linger (0 = pure fill-triggered)");
  flags.AddInt64("k", &k_blocks, "minimum free-block gap");
  flags.AddBool("verbose", &verbose, "dump the full metrics registry");
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Help(argv[0]);
    return 2;
  }

  db::DatabaseConfig config;
  config.workload = workload::PaperMix(long_fraction);
  config.workload.runtime = SecondsToSimTime(runtime_s);
  config.workload.arrival_rate_tps = tps;
  config.workload.seed = static_cast<uint64_t>(seed);
  if (arrivals == "poisson") {
    config.workload.arrival_process = workload::ArrivalProcess::kPoisson;
  } else if (arrivals != "deterministic") {
    std::cerr << "unknown --arrivals: " << arrivals << "\n";
    return 2;
  }

  std::vector<uint32_t> generation_blocks;
  for (const std::string& part : StrSplit(gens, ',')) {
    int64_t value = std::atoll(part.c_str());
    if (value <= 0) {
      std::cerr << "bad --gens entry: " << part << "\n";
      return 2;
    }
    generation_blocks.push_back(static_cast<uint32_t>(value));
  }

  if (scheme == "fw") {
    if (generation_blocks.size() != 1) {
      std::cerr << "--scheme=fw takes a single generation size\n";
      return 2;
    }
    config.log = MakeFirewallOptions(generation_blocks[0]);
  } else if (scheme == "el") {
    config.log.generation_blocks = generation_blocks;
    config.log.recirculation = recirculation;
  } else {
    std::cerr << "unknown --scheme: " << scheme << "\n";
    return 2;
  }
  config.log.flush_transfer_time = MillisecondsToSimTime(flush_ms);
  config.log.num_flush_drives = static_cast<uint32_t>(flush_drives);
  config.log.group_commit_linger = MillisecondsToSimTime(linger_ms);
  config.log.min_free_blocks = static_cast<uint32_t>(k_blocks);
  if (flush_on_demand) {
    config.log.unflushed_policy = UnflushedPolicy::kFlushOnDemand;
  }
  if (hints) {
    config.log.lifetime_hints = true;
    config.log.hint_lifetime_threshold = SecondsToSimTime(5);
    config.log.hint_target_generation =
        static_cast<uint32_t>(generation_blocks.size()) - 1;
  }
  if (Status status = config.log.Validate(); !status.ok()) {
    std::cerr << "bad configuration: " << status.ToString() << "\n";
    return 2;
  }

  db::Database database(config);
  db::RunStats stats = database.Run();

  std::printf("%s log, %s blocks, %.0f TPS (%s), %llds window\n",
              scheme.c_str(), gens.c_str(), tps, arrivals.c_str(),
              static_cast<long long>(runtime_s));
  std::printf("  started=%lld committed=%lld killed=%lld aborted via "
              "kills only\n",
              (long long)stats.total_started,
              (long long)stats.total_committed, (long long)stats.total_killed);
  std::printf("  log writes/s=%.3f (", stats.log_writes_per_sec);
  for (size_t g = 0; g < stats.log_writes_per_sec_by_generation.size(); ++g) {
    std::printf("%sgen%zu=%.3f", g ? " " : "", g,
                stats.log_writes_per_sec_by_generation[g]);
  }
  std::printf(")\n");
  std::printf("  forwarded=%lld recirculated=%lld discarded=%lld "
              "urgent_flushes=%lld\n",
              (long long)stats.records_forwarded,
              (long long)stats.records_recirculated,
              (long long)stats.records_discarded,
              (long long)stats.urgent_flushes);
  std::printf("  flushes=%lld backlog=%zu seek_distance=%.0f\n",
              (long long)stats.flushes_completed, stats.flush_backlog,
              stats.mean_flush_seek_distance);
  std::printf("  memory peak=%s avg=%s; commit latency mean=%.1fms "
              "p99=%.1fms\n",
              HumanBytes(stats.peak_memory_bytes).c_str(),
              HumanBytes(stats.avg_memory_bytes).c_str(),
              stats.commit_latency_mean_us / 1000.0,
              stats.commit_latency_p99_us / 1000.0);
  if (stats.unsafe_commit_drops > 0) {
    std::printf("  WARNING: %lld unsafe commit drops (crash window)\n",
                (long long)stats.unsafe_commit_drops);
  }
  if (verbose) {
    std::printf("\n-- metrics registry --\n%s",
                database.metrics().ToString().c_str());
  }
  database.manager().CheckInvariants();
  return 0;
}
