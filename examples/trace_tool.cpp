// trace_tool: record a workload's transaction event stream to a CSV
// trace, or replay a trace against a chosen log manager.
//
// Recording freezes an exact request stream (arrival jitter, oid choices,
// type draws) so different log managers can be compared on *identical*
// inputs, and interesting schedules become reproducible regression
// inputs.
//
//   trace_tool --mode=record --out=paper5.trace --runtime=60
//   trace_tool --mode=replay --in=paper5.trace --scheme=fw --gens=140
//   trace_tool --mode=replay --in=paper5.trace --gens=18,12

#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/fw_manager.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "workload/trace.h"

using namespace elog;

namespace {

struct Rig {
  explicit Rig(const LogManagerOptions& options)
      : storage(options.generation_blocks),
        device(&sim, &storage, options.log_write_latency, &metrics),
        drives(&sim, options.num_flush_drives, options.num_objects,
               options.flush_transfer_time, &metrics),
        manager(&sim, options, &device, &drives, &metrics) {}

  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  disk::LogStorage storage;
  disk::LogDevice device;
  disk::DriveArray drives;
  EphemeralLogManager manager;
};

int Record(const std::string& out_path, int64_t runtime_s,
           double long_fraction, int64_t seed) {
  workload::WorkloadSpec spec = workload::PaperMix(long_fraction);
  spec.runtime = SecondsToSimTime(runtime_s);
  spec.seed = static_cast<uint64_t>(seed);

  LogManagerOptions options;
  options.generation_blocks = {18, 12};
  Rig rig(options);

  workload::Trace trace;
  workload::RecordingSink recorder(&rig.sim, &rig.manager, &trace);
  workload::WorkloadGenerator generator(&rig.sim, spec, &recorder, nullptr);
  generator.Start();
  rig.sim.RunUntil(spec.runtime);
  for (int i = 0; i < 2000 && generator.active() > 0; ++i) {
    rig.manager.ForceWriteOpenBuffers();
    rig.sim.RunUntil(rig.sim.Now() + 100 * kMillisecond);
  }
  rig.sim.Run();

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  trace.Write(out);
  std::printf("recorded %zu events (%lld transactions, %lld committed) "
              "to %s\n",
              trace.size(), (long long)generator.started(),
              (long long)generator.committed(), out_path.c_str());
  return 0;
}

int Replay(const std::string& in_path, const std::string& scheme,
           const std::string& gens) {
  std::ifstream in(in_path);
  if (!in) {
    std::cerr << "cannot open " << in_path << "\n";
    return 1;
  }
  Result<workload::Trace> trace = workload::Trace::Read(in);
  if (!trace.ok()) {
    std::cerr << trace.status().ToString() << "\n";
    return 1;
  }

  std::vector<uint32_t> generation_blocks;
  for (const std::string& part : StrSplit(gens, ',')) {
    generation_blocks.push_back(
        static_cast<uint32_t>(std::atoll(part.c_str())));
  }
  LogManagerOptions options;
  if (scheme == "fw") {
    options = MakeFirewallOptions(generation_blocks.at(0));
  } else {
    options.generation_blocks = generation_blocks;
  }
  if (Status status = options.Validate(); !status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  Rig rig(options);
  workload::TraceReplayer replayer(&rig.sim, *trace, &rig.manager);

  class Relay : public KillListener {
   public:
    explicit Relay(workload::TraceReplayer* r) : replayer(r) {}
    void OnTransactionKilled(TxId tid) override {
      ++kills;
      replayer->NotifyKilled(tid);
    }
    workload::TraceReplayer* replayer;
    int64_t kills = 0;
  } relay(&replayer);
  rig.manager.set_kill_listener(&relay);

  replayer.Start();
  rig.sim.Run();
  rig.manager.ForceWriteOpenBuffers();
  rig.sim.Run();
  rig.manager.CheckInvariants();

  double seconds = SimTimeToSeconds(rig.sim.Now());
  std::printf("replayed %zu events against %s %s:\n", trace->size(),
              scheme.c_str(), gens.c_str());
  std::printf("  begins=%lld updates=%lld commits=%lld kills=%lld "
              "skipped=%lld\n",
              (long long)replayer.begins(), (long long)replayer.updates(),
              (long long)replayer.commits_durable(), (long long)relay.kills,
              (long long)replayer.skipped_after_kill());
  std::printf("  log writes=%lld (%.2f/s over %.1fs)\n",
              (long long)rig.device.writes_completed(),
              rig.device.writes_completed() / seconds, seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "record";
  std::string in_path;
  std::string out_path = "workload.trace";
  std::string scheme = "el";
  std::string gens = "18,12";
  int64_t runtime_s = 60;
  double long_fraction = 0.05;
  int64_t seed = 42;
  FlagSet flags;
  flags.AddString("mode", &mode, "record | replay");
  flags.AddString("in", &in_path, "trace file to replay");
  flags.AddString("out", &out_path, "trace file to write");
  flags.AddString("scheme", &scheme, "replay target: el | fw");
  flags.AddString("gens", &gens, "replay generation sizes");
  flags.AddInt64("runtime", &runtime_s, "recorded seconds of arrivals");
  flags.AddDouble("long_fraction", &long_fraction,
                  "fraction of 10 s transactions when recording");
  flags.AddInt64("seed", &seed, "workload seed when recording");
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Help(argv[0]);
    return 2;
  }
  if (mode == "record") {
    return Record(out_path, runtime_s, long_fraction, seed);
  }
  if (mode == "replay") {
    if (in_path.empty()) {
      std::cerr << "--mode=replay requires --in\n";
      return 2;
    }
    return Replay(in_path, scheme, gens);
  }
  std::cerr << "unknown --mode: " << mode << "\n";
  return 2;
}
