// Crash and single-pass recovery walkthrough.
//
// Runs the paper workload, crashes the system mid-flight (optionally
// tearing the in-flight log write), then recovers from the durable log +
// stable database version and verifies the result against the state the
// system had acknowledged. Also illustrates §4's recovery argument: the
// whole EL log is a few dozen blocks, so one pass over it is trivial.

#include <cstdio>
#include <iostream>

#include "db/database.h"
#include "db/recovery.h"
#include "util/cli.h"
#include "util/string_util.h"

using namespace elog;

int main(int argc, char** argv) {
  int64_t crash_ms = 12'345;
  int64_t seed = 42;
  bool torn_write = true;
  FlagSet flags;
  flags.AddInt64("crash_ms", &crash_ms, "crash instant in simulated ms");
  flags.AddInt64("seed", &seed, "workload RNG seed");
  flags.AddBool("torn_write", &torn_write,
                "tear the in-flight log write at the crash");
  if (Status status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.Help(argv[0]);
    return 2;
  }

  db::DatabaseConfig config;
  config.workload = workload::PaperMix(0.05);
  config.workload.runtime = SecondsToSimTime(3600);  // crash interrupts
  config.workload.seed = static_cast<uint64_t>(seed);
  config.log.generation_blocks = {18, 12};
  config.log.recirculation = true;

  db::Database database(config);
  db::Database::CrashImage image = database.RunUntilCrash(
      MillisecondsToSimTime(crash_ms), torn_write);

  std::printf("Crashed at t=%.3f s: %lld transactions acknowledged, "
              "%zu objects in the stable version.\n",
              SimTimeToSeconds(image.crash_time),
              (long long)image.committed_tids.size(),
              image.stable.materialized_objects());

  db::RecoveryResult result =
      db::RecoveryManager::Recover(image.log, image.stable);

  std::printf("Single-pass recovery over %zu blocks:\n",
              result.scan.blocks_scanned);
  std::printf("  blocks: %zu written, %zu never written, %zu torn/corrupt\n",
              result.scan.blocks_scanned - result.scan.blocks_empty,
              result.scan.blocks_empty, result.scan.blocks_corrupt);
  std::printf("  records: %zu scanned, %zu committed updates applied, "
              "%zu uncommitted ignored\n",
              result.scan.records, result.records_applied,
              result.uncommitted_records_ignored);
  std::printf("  transactions with COMMIT in log: %zu\n",
              result.committed_in_log.size());

  // Verify: the recovered state must equal the acknowledged state.
  size_t mismatches = 0;
  for (const auto& [oid, expected] : image.expected_state) {
    auto it = result.state.find(oid);
    if (it == result.state.end() || it->second.lsn != expected.lsn ||
        it->second.value_digest != expected.value_digest) {
      ++mismatches;
    }
  }
  for (const auto& [oid, recovered] : result.state) {
    if (!image.expected_state.count(oid)) ++mismatches;
  }
  std::printf("verification: %zu objects expected, %zu recovered, "
              "%zu mismatches -> %s\n",
              image.expected_state.size(), result.state.size(), mismatches,
              mismatches == 0 ? "EXACT MATCH" : "FAILED");
  return mismatches == 0 ? 0 : 1;
}
