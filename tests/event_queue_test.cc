#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace elog {
namespace sim {
namespace {

TEST(EventQueueTest, EmptyQueue) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.Schedule(30, [&] { fired.push_back(3); });
  queue.Schedule(10, [&] { fired.push_back(1); });
  queue.Schedule(20, [&] { fired.push_back(2); });
  SimTime t;
  while (!queue.empty()) queue.PopNext(&t)();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ReportsFiringTime) {
  EventQueue queue;
  queue.Schedule(42, [] {});
  EXPECT_EQ(queue.PeekTime(), 42);
  SimTime t;
  queue.PopNext(&t);
  EXPECT_EQ(t, 42);
}

TEST(EventQueueTest, SimultaneousEventsFifo) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(5, [&fired, i] { fired.push_back(i); });
  }
  SimTime t;
  while (!queue.empty()) queue.PopNext(&t)();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  EventId id = queue.Schedule(10, [&] { fired = true; });
  queue.Schedule(20, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.PeekTime(), 20);
  SimTime t;
  queue.PopNext(&t)();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, DoubleCancelFails) {
  EventQueue queue;
  EventId id = queue.Schedule(10, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, CancelAfterFireFails) {
  EventQueue queue;
  EventId id = queue.Schedule(10, [] {});
  SimTime t;
  queue.PopNext(&t);
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, CancelInvalidIdFails) {
  EventQueue queue;
  EXPECT_FALSE(queue.Cancel(kInvalidEventId));
  EXPECT_FALSE(queue.Cancel(9999));
}

TEST(EventQueueTest, CancelAllLeavesEmpty) {
  EventQueue queue;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(queue.Schedule(i, [] {}));
  for (EventId id : ids) EXPECT_TRUE(queue.Cancel(id));
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, InterleavedScheduleAndPop) {
  EventQueue queue;
  std::vector<SimTime> fire_times;
  queue.Schedule(10, [] {});
  queue.Schedule(5, [] {});
  SimTime t;
  queue.PopNext(&t);
  fire_times.push_back(t);
  queue.Schedule(7, [] {});
  queue.Schedule(3, [] {});  // in the "past" — still pops first
  while (!queue.empty()) {
    queue.PopNext(&t);
    fire_times.push_back(t);
  }
  EXPECT_EQ(fire_times, (std::vector<SimTime>{5, 3, 7, 10}));
}

TEST(EventQueueTest, HeavyCancellationChurn) {
  // Lazy deletion must stay consistent through interleaved schedule /
  // cancel / pop cycles.
  EventQueue queue;
  Rng rng(77);
  std::vector<EventId> live;
  int scheduled = 0;
  int fired = 0;
  int cancelled = 0;
  SimTime now = 0;
  for (int round = 0; round < 2000; ++round) {
    uint64_t draw = rng.NextBounded(10);
    if (draw < 5 || live.empty()) {
      ++scheduled;
      live.push_back(
          queue.Schedule(now + 1 + static_cast<SimTime>(rng.NextBounded(50)),
                         [&fired] { ++fired; }));
    } else if (draw < 8) {
      size_t index = rng.NextBounded(live.size());
      // May fail if the event already fired during a pop — that is the
      // contract being exercised.
      if (queue.Cancel(live[index])) ++cancelled;
      live.erase(live.begin() + index);
    } else if (!queue.empty()) {
      SimTime t;
      queue.PopNext(&t)();
      ASSERT_GE(t, now);
      now = t;
    }
  }
  while (!queue.empty()) {
    SimTime t;
    queue.PopNext(&t)();
  }
  // Everything scheduled either fired or was cancelled, exactly once.
  EXPECT_EQ(fired + cancelled, scheduled);
  EXPECT_GT(fired, 0);
  EXPECT_GT(cancelled, 0);
}

// Regression guard for the slab/lazy-cancel design: a schedule/cancel
// churn of a million events must not let dead heap entries or retired
// slab slots accumulate beyond a small multiple of the live set.
TEST(EventQueueTest, MillionScheduleCancelChurnStaysBounded) {
  EventQueue queue;
  Rng rng(20260805);
  std::vector<EventId> live;
  constexpr int kOps = 1000000;
  size_t max_heap = 0;
  size_t max_slab = 0;
  size_t max_live = 0;
  for (int i = 0; i < kOps; ++i) {
    // Bias toward cancellation so the heap is dominated by churn, with a
    // drifting time horizon so pops interleave schedules.
    if (!live.empty() && rng.NextBounded(100) < 45) {
      size_t pick = rng.NextBounded(live.size());
      queue.Cancel(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    } else {
      live.push_back(queue.Schedule(
          static_cast<SimTime>(i + rng.NextBounded(1000)), [] {}));
    }
    if (queue.size() > 4096) {
      SimTime t;
      queue.PopNext(&t)();
      // The popped event is no longer cancellable; forget one id.
      // (Ids are opaque; dropping an arbitrary one keeps the invariant
      // "live holds ids of still-pending events" approximately true, and
      // Cancel on an already-popped id is a safe no-op by design.)
      if (!live.empty()) live.pop_back();
    }
    max_heap = std::max(max_heap, queue.heap_entries());
    max_slab = std::max(max_slab, queue.slab_slots());
    max_live = std::max(max_live, queue.size());
  }
  // Compaction keeps the heap within 2x the live events (+1 for the
  // transient pre-compaction entry); the slab never exceeds the peak
  // number of simultaneously live events (+1 for the schedule that
  // transiently tops the peak before the balancing pop below).
  EXPECT_LE(max_heap, 2 * max_live + 1);
  EXPECT_LE(max_slab, max_live + 1);
  while (!queue.empty()) {
    SimTime t;
    queue.PopNext(&t);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, LargeVolumeOrdered) {
  EventQueue queue;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    queue.Schedule(static_cast<SimTime>(rng.NextBounded(1000000)), [] {});
  }
  SimTime previous = -1;
  SimTime t;
  while (!queue.empty()) {
    queue.PopNext(&t);
    EXPECT_GE(t, previous);
    previous = t;
  }
}

}  // namespace
}  // namespace sim
}  // namespace elog
