#include "wal/block_pool.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "db/database.h"
#include "wal/block_format.h"
#include "wal/record.h"

namespace elog {
namespace wal {
namespace {

LogRecord MakeRecord(uint64_t i) {
  LogRecord r;
  r.type = RecordType::kData;
  r.tid = i;
  r.lsn = 100 + i;
  r.oid = 7 * i;
  r.logged_size = 100;
  r.value_digest = 0xabcdef00 + i;
  return r;
}

TEST(BlockImagePoolTest, AcquireReleaseRecycles) {
  BlockImagePool pool;
  BlockImage a = pool.Acquire();
  EXPECT_GE(a.capacity(), kBlockPhysicalBytes);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.reused(), 0u);

  a.assign(123, 0x55);
  pool.Release(std::move(a));
  EXPECT_EQ(pool.free_count(), 1u);

  BlockImage b = pool.Acquire();
  EXPECT_TRUE(b.empty()) << "recycled buffers must come back cleared";
  EXPECT_GE(b.capacity(), kBlockPhysicalBytes);
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.reused(), 1u);
}

TEST(BlockImagePoolTest, ReleaseOfMovedFromImageIsNoOp) {
  BlockImagePool pool;
  BlockImage a = pool.Acquire();
  BlockImage b = std::move(a);
  pool.Release(std::move(a));  // moved-from: capacity 0, dropped
  EXPECT_EQ(pool.free_count(), 0u);
  pool.Release(std::move(b));
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(BlockImagePoolTest, CopyOfMatchesSourceBytes) {
  BlockImagePool pool;
  std::vector<LogRecord> records = {MakeRecord(1), MakeRecord(2)};
  BlockImage original = EncodeBlock(0, 42, records);
  BlockImage copy = pool.CopyOf(original);
  EXPECT_EQ(copy, original);
  // The copy decodes like the original.
  Result<DecodedBlock> decoded = DecodeBlock(copy);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->write_seq, 42u);
  ASSERT_EQ(decoded->records.size(), 2u);
  EXPECT_EQ(decoded->records[1].oid, records[1].oid);
}

TEST(BlockImagePoolTest, PooledFinishProducesIdenticalBytes) {
  std::vector<LogRecord> records = {MakeRecord(1), MakeRecord(2),
                                    MakeRecord(3)};
  BlockBuilder plain(/*generation=*/1);
  BlockBuilder pooled(/*generation=*/1);
  for (const LogRecord& r : records) {
    ASSERT_TRUE(plain.Add(r));
    ASSERT_TRUE(pooled.Add(r));
  }
  BlockImagePool pool;
  BlockImage a = plain.Finish(/*write_seq=*/9);
  BlockImage b = pooled.Finish(/*write_seq=*/9, &pool);
  EXPECT_EQ(a, b);
  // Round-trip through the pool: the recycled buffer encodes the same
  // bytes again.
  pool.Release(std::move(b));
  for (const LogRecord& r : records) ASSERT_TRUE(pooled.Add(r));
  BlockImage c = pooled.Finish(/*write_seq=*/9, &pool);
  EXPECT_EQ(a, c);
  EXPECT_EQ(pool.reused(), 1u);
}

TEST(BlockImagePoolTest, FreeListIsCapped) {
  BlockImagePool pool;
  std::vector<BlockImage> images;
  for (int i = 0; i < 1100; ++i) images.push_back(pool.Acquire());
  for (BlockImage& image : images) pool.Release(std::move(image));
  EXPECT_EQ(pool.free_count(), 1024u);
}

// End-to-end: a simulated run with the Database's pool attached reuses
// buffers in steady state instead of allocating one per block hop.
TEST(BlockImagePoolTest, DatabaseRunReusesBuffers) {
  db::DatabaseConfig config;
  config.workload = workload::PaperMix(0.1);
  config.workload.runtime = SecondsToSimTime(25);
  db::Database database(config);
  database.Run();
  const BlockImagePool& pool = database.block_pool();
  EXPECT_GT(database.device().writes_completed(), 0);
  EXPECT_GT(pool.reused(), pool.allocated())
      << "steady-state block I/O should be dominated by recycled buffers";
}

}  // namespace
}  // namespace wal
}  // namespace elog
