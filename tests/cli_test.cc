#include "util/cli.h"

#include <gtest/gtest.h>

namespace elog {
namespace {

TEST(FlagSetTest, ParsesEqualsSyntax) {
  int64_t count = 1;
  double rate = 0.5;
  std::string name = "default";
  bool verbose = false;
  FlagSet flags;
  flags.AddInt64("count", &count, "");
  flags.AddDouble("rate", &rate, "");
  flags.AddString("name", &name, "");
  flags.AddBool("verbose", &verbose, "");
  const char* argv[] = {"prog", "--count=7", "--rate=2.25", "--name=el",
                        "--verbose=true"};
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_EQ(count, 7);
  EXPECT_EQ(rate, 2.25);
  EXPECT_EQ(name, "el");
  EXPECT_TRUE(verbose);
}

TEST(FlagSetTest, ParsesSpaceSyntax) {
  int64_t count = 0;
  FlagSet flags;
  flags.AddInt64("count", &count, "");
  const char* argv[] = {"prog", "--count", "42"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(count, 42);
}

TEST(FlagSetTest, BareBooleanIsTrue) {
  bool quick = false;
  FlagSet flags;
  flags.AddBool("quick", &quick, "");
  const char* argv[] = {"prog", "--quick"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(quick);
}

TEST(FlagSetTest, BooleanSpellings) {
  bool flag = false;
  FlagSet flags;
  flags.AddBool("f", &flag, "");
  for (const char* value : {"true", "1", "yes", "on"}) {
    std::string arg = std::string("--f=") + value;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_TRUE(flags.Parse(2, argv).ok());
    EXPECT_TRUE(flag) << value;
  }
  for (const char* value : {"false", "0", "no", "off"}) {
    std::string arg = std::string("--f=") + value;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_TRUE(flags.Parse(2, argv).ok());
    EXPECT_FALSE(flag) << value;
  }
}

TEST(FlagSetTest, NegativeNumbers) {
  int64_t n = 0;
  double d = 0;
  FlagSet flags;
  flags.AddInt64("n", &n, "");
  flags.AddDouble("d", &d, "");
  const char* argv[] = {"prog", "--n=-5", "--d=-1.5"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(n, -5);
  EXPECT_EQ(d, -1.5);
}

TEST(FlagSetTest, UnknownFlagErrors) {
  FlagSet flags;
  const char* argv[] = {"prog", "--mystery=1"};
  Status status = flags.Parse(2, argv);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("mystery"), std::string::npos);
}

TEST(FlagSetTest, MalformedIntegerErrors) {
  int64_t n = 0;
  FlagSet flags;
  flags.AddInt64("n", &n, "");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagSetTest, MalformedBoolErrors) {
  bool b = false;
  FlagSet flags;
  flags.AddBool("b", &b, "");
  const char* argv[] = {"prog", "--b=maybe"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagSetTest, MissingValueErrors) {
  int64_t n = 0;
  FlagSet flags;
  flags.AddInt64("n", &n, "");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagSetTest, PositionalArgumentsCollected) {
  int64_t n = 0;
  FlagSet flags;
  flags.AddInt64("n", &n, "");
  const char* argv[] = {"prog", "input.txt", "--n=1", "output.txt"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(FlagSetTest, HelpListsFlagsWithDefaults) {
  int64_t n = 99;
  FlagSet flags;
  flags.AddInt64("gens", &n, "number of generations");
  std::string help = flags.Help("prog");
  EXPECT_NE(help.find("gens"), std::string::npos);
  EXPECT_NE(help.find("number of generations"), std::string::npos);
  EXPECT_NE(help.find("99"), std::string::npos);
}

}  // namespace
}  // namespace elog
