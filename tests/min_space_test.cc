// Harness tests: the minimum-space search on shortened workloads.

#include "harness/min_space.h"

#include <gtest/gtest.h>

#include "core/fw_manager.h"
#include "harness/figures.h"

namespace elog {
namespace harness {
namespace {

workload::WorkloadSpec ShortMix(double fraction, int64_t seconds) {
  workload::WorkloadSpec spec = workload::PaperMix(fraction);
  spec.runtime = SecondsToSimTime(seconds);
  return spec;
}

TEST(MinSpaceTest, SurvivesIsMonotoneForFw) {
  workload::WorkloadSpec spec = ShortMix(0.05, 30);
  LogManagerOptions small = MakeFirewallOptions(60);
  LogManagerOptions large = MakeFirewallOptions(200);
  EXPECT_FALSE(Survives(small, spec));
  EXPECT_TRUE(Survives(large, spec));
}

TEST(MinSpaceTest, FirewallMinimumIsTightAndNearPaper) {
  workload::WorkloadSpec spec = ShortMix(0.05, 60);
  MinSpaceResult result = MinFirewallSpace(MakeFirewallOptions(8), spec);
  // The paper reports 123 blocks at 500 s; a 60 s window sees slightly
  // less traffic variance but the same O(lifetime x rate) bound.
  EXPECT_GE(result.total_blocks, 110u);
  EXPECT_LE(result.total_blocks, 130u);
  EXPECT_EQ(result.stats.kills, 0);
  // Tight: one block less must kill.
  LogManagerOptions smaller =
      MakeFirewallOptions(result.total_blocks - 1);
  EXPECT_FALSE(Survives(smaller, spec));
}

TEST(MinSpaceTest, ElBeatsFwOnSpace) {
  workload::WorkloadSpec spec = ShortMix(0.05, 60);
  MinSpaceResult fw = MinFirewallSpace(MakeFirewallOptions(8), spec);
  LogManagerOptions el;
  el.recirculation = false;
  MinSpaceResult el_min = MinElSpace(el, spec, 4, 30);
  EXPECT_LT(el_min.total_blocks, fw.total_blocks / 2)
      << "EL should need far less than half of FW's space at a 5% mix";
  EXPECT_EQ(el_min.generation_blocks.size(), 2u);
  // Bandwidth premium is bounded (paper: ~+11%).
  EXPECT_LT(el_min.stats.log_writes_per_sec,
            fw.stats.log_writes_per_sec * 1.35);
}

TEST(MinSpaceTest, RecirculationShrinksLastGeneration) {
  workload::WorkloadSpec spec = ShortMix(0.05, 60);
  LogManagerOptions base;
  base.generation_blocks = {18, 16};
  base.recirculation = true;
  MinSpaceResult result = MinLastGeneration(base, spec);
  EXPECT_EQ(result.generation_blocks[0], 18u);
  EXPECT_LT(result.generation_blocks[1], 16u);
  EXPECT_EQ(result.stats.kills, 0);
}

TEST(MinSpaceTest, Fig7BandwidthRisesAsSpaceShrinks) {
  workload::WorkloadSpec spec = ShortMix(0.05, 60);
  LogManagerOptions base;
  Fig7Result result = RunFig7(base, spec, 18, 14);
  ASSERT_GE(result.points.size(), 3u);
  // Monotone-ish: the smallest surviving configuration pays at least as
  // much bandwidth as the largest.
  const Fig7Point& first = result.points.front();
  Fig7Point last_surviving = first;
  for (const Fig7Point& point : result.points) {
    if (point.survives) last_surviving = point;
  }
  EXPECT_GE(last_surviving.bandwidth_total, first.bandwidth_total);
  EXPECT_GT(last_surviving.recirculated, first.recirculated);
}

}  // namespace
}  // namespace harness
}  // namespace elog
