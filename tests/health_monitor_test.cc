#include "health/drive_health.h"

#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/simulator.h"

namespace elog {
namespace health {
namespace {

constexpr SimTime kHealthy = 15 * kMillisecond;
constexpr SimTime kSlow = 150 * kMillisecond;

HealthOptions Enabled() {
  HealthOptions options;
  options.enabled = true;
  return options;
}

// Advances the virtual clock (no events pending, so RunUntil
// fast-forwards) and reports one service completion per drive.
void Step(sim::Simulator* sim, DriveHealthMonitor* monitor, SimTime at,
          int d0, SimTime t0, int d1, SimTime t1) {
  sim->RunUntil(at);
  monitor->RecordService(d0, t0);
  monitor->RecordService(d1, t1);
}

TEST(HealthOptionsTest, ValidatesKnobs) {
  EXPECT_TRUE(Enabled().Validate().ok());
  HealthOptions options = Enabled();
  options.ewma_alpha = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options = Enabled();
  options.ewma_alpha = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options = Enabled();
  options.suspect_ratio = 1.0;
  EXPECT_FALSE(options.Validate().ok());
  options = Enabled();
  options.suspect_window = -1;
  EXPECT_FALSE(options.Validate().ok());
  options = Enabled();
  options.hedge_deadline_ratio = 0.5;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(DriveHealthMonitorTest, HealthyFleetNeverFlags) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  DriveHealthMonitor monitor(&sim, Enabled(), &metrics);
  const int d0 = monitor.RegisterDrive("log", "log0");
  const int d1 = monitor.RegisterDrive("log", "log1");
  for (int i = 1; i <= 100; ++i) {
    Step(&sim, &monitor, i * kHealthy, d0, kHealthy, d1, kHealthy);
  }
  EXPECT_DOUBLE_EQ(monitor.score(d0), 1.0);
  EXPECT_DOUBLE_EQ(monitor.score(d1), 1.0);
  EXPECT_FALSE(monitor.suspect(d0));
  EXPECT_FALSE(monitor.suspect(d1));
  EXPECT_EQ(monitor.quarantines(), 0);
}

TEST(DriveHealthMonitorTest, SustainedOutlierIsQuarantined) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  DriveHealthMonitor monitor(&sim, Enabled(), &metrics, "h");
  const int d0 = monitor.RegisterDrive("log", "log0");
  const int d1 = monitor.RegisterDrive("log", "log1");
  // 900 ms of 10x-degraded mirror: past min_samples, the 200 ms suspect
  // window and the further 300 ms quarantine window.
  for (int i = 1; i <= 60; ++i) {
    Step(&sim, &monitor, i * kHealthy, d0, kHealthy, d1, kSlow);
  }
  EXPECT_FALSE(monitor.suspect(d0));
  EXPECT_FALSE(monitor.quarantined(d0));
  EXPECT_TRUE(monitor.quarantined(d1));
  EXPECT_GE(monitor.score(d1), 3.0);
  EXPECT_EQ(monitor.suspects_flagged(), 1);
  EXPECT_EQ(monitor.quarantines(), 1);
  // The fleet reference is the lower median: the degraded mirror can
  // never drag it up, so the healthy primary stays at score ~1.
  EXPECT_NEAR(monitor.score(d0), 1.0, 1e-9);
  // Typed gauges exist under the prefix.
  EXPECT_NE(metrics.FindGauge("h.log1.quarantined"), nullptr);
  EXPECT_NE(metrics.FindGauge("h.log1.suspect"), nullptr);
  EXPECT_NE(metrics.FindGauge("h.log0.score"), nullptr);
}

TEST(DriveHealthMonitorTest, BriefSpikeDoesNotFlag) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  DriveHealthMonitor monitor(&sim, Enabled(), &metrics);
  const int d0 = monitor.RegisterDrive("log", "log0");
  const int d1 = monitor.RegisterDrive("log", "log1");
  // Five slow services (75 ms, inside the 200 ms suspect window), then
  // healthy again: the over-threshold clock must reset.
  for (int i = 1; i <= 5; ++i) {
    Step(&sim, &monitor, i * kHealthy, d0, kHealthy, d1, kSlow);
  }
  for (int i = 6; i <= 100; ++i) {
    Step(&sim, &monitor, i * kHealthy, d0, kHealthy, d1, kHealthy);
  }
  EXPECT_FALSE(monitor.suspect(d1));
  EXPECT_FALSE(monitor.quarantined(d1));
  EXPECT_EQ(monitor.quarantines(), 0);
  EXPECT_LT(monitor.score(d1), 1.1);
}

TEST(DriveHealthMonitorTest, MinSamplesGateBeforeFlagging) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  HealthOptions options = Enabled();
  options.min_samples = 50;
  DriveHealthMonitor monitor(&sim, Enabled(), &metrics);
  DriveHealthMonitor gated(&sim, options, &metrics, "gated");
  const int d0 = gated.RegisterDrive("log", "log0");
  const int d1 = gated.RegisterDrive("log", "log1");
  for (int i = 1; i <= 40; ++i) {
    sim.RunUntil(i * kHealthy);
    gated.RecordService(d0, kHealthy);
    gated.RecordService(d1, kSlow);
  }
  // 40 samples of a blatant outlier, but under the 50-sample gate.
  EXPECT_FALSE(gated.suspect(d1));
  EXPECT_EQ(gated.quarantines(), 0);
}

TEST(DriveHealthMonitorTest, QuarantineDisabledStopsAtSuspect) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  HealthOptions options = Enabled();
  options.quarantine_enabled = false;
  DriveHealthMonitor monitor(&sim, options, &metrics);
  const int d0 = monitor.RegisterDrive("log", "log0");
  const int d1 = monitor.RegisterDrive("log", "log1");
  for (int i = 1; i <= 100; ++i) {
    Step(&sim, &monitor, i * kHealthy, d0, kHealthy, d1, kSlow);
  }
  EXPECT_TRUE(monitor.suspect(d1));
  EXPECT_FALSE(monitor.quarantined(d1));
  EXPECT_EQ(monitor.quarantines(), 0);
}

TEST(DriveHealthMonitorTest, QuarantineIsStickyUntilReplaced) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  DriveHealthMonitor monitor(&sim, Enabled(), &metrics);
  const int d0 = monitor.RegisterDrive("log", "log0");
  const int d1 = monitor.RegisterDrive("log", "log1");
  for (int i = 1; i <= 60; ++i) {
    Step(&sim, &monitor, i * kHealthy, d0, kHealthy, d1, kSlow);
  }
  ASSERT_TRUE(monitor.quarantined(d1));
  // An intermittently-fast gray drive must not flap back into service.
  for (int i = 61; i <= 120; ++i) {
    Step(&sim, &monitor, i * kHealthy, d0, kHealthy, d1, kHealthy);
  }
  EXPECT_TRUE(monitor.quarantined(d1));
  // Replacement (eject + resilver) is the only way back in.
  monitor.OnDriveReplaced(d1);
  EXPECT_FALSE(monitor.quarantined(d1));
  EXPECT_FALSE(monitor.suspect(d1));
  EXPECT_DOUBLE_EQ(monitor.score(d1), 1.0);
  for (int i = 121; i <= 180; ++i) {
    Step(&sim, &monitor, i * kHealthy, d0, kHealthy, d1, kHealthy);
  }
  EXPECT_FALSE(monitor.suspect(d1));
  EXPECT_EQ(monitor.quarantines(), 1);
}

TEST(DriveHealthMonitorTest, ForceQuarantineBypassesWindows) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  DriveHealthMonitor monitor(&sim, Enabled(), &metrics);
  monitor.RegisterDrive("flush", "fd0");
  const int d1 = monitor.RegisterDrive("flush", "fd1");
  EXPECT_FALSE(monitor.quarantined(d1));
  monitor.ForceQuarantine(d1);
  EXPECT_TRUE(monitor.suspect(d1));
  EXPECT_TRUE(monitor.quarantined(d1));
  EXPECT_EQ(monitor.quarantines(), 1);
}

TEST(DriveHealthMonitorTest, LoneDriveScoresAgainstItself) {
  // A single-drive group has no fleet to compare against: its reference
  // is its own EWMA, so it can never become an outlier.
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  DriveHealthMonitor monitor(&sim, Enabled(), &metrics);
  const int d0 = monitor.RegisterDrive("log", "log0");
  for (int i = 1; i <= 100; ++i) {
    sim.RunUntil(i * kSlow);
    monitor.RecordService(d0, kSlow);
  }
  EXPECT_DOUBLE_EQ(monitor.score(d0), 1.0);
  EXPECT_FALSE(monitor.suspect(d0));
}

TEST(DriveHealthMonitorTest, GroupsAreIndependent) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  DriveHealthMonitor monitor(&sim, Enabled(), &metrics);
  const int log0 = monitor.RegisterDrive("log", "log0");
  const int log1 = monitor.RegisterDrive("log", "log1");
  const int fd0 = monitor.RegisterDrive("flush", "fd0");
  const int fd1 = monitor.RegisterDrive("flush", "fd1");
  // Both flush drives are "slow" relative to the log drives — but their
  // group is uniform, so neither is an outlier within it.
  for (int i = 1; i <= 100; ++i) {
    sim.RunUntil(i * kHealthy);
    monitor.RecordService(log0, kHealthy);
    monitor.RecordService(log1, kHealthy);
    monitor.RecordService(fd0, kSlow);
    monitor.RecordService(fd1, kSlow);
  }
  EXPECT_DOUBLE_EQ(monitor.score(fd0), 1.0);
  EXPECT_DOUBLE_EQ(monitor.score(fd1), 1.0);
  EXPECT_EQ(monitor.quarantines(), 0);
}

TEST(DriveHealthMonitorTest, HedgeDeadlineDerivesFromFleetOrPin) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  DriveHealthMonitor monitor(&sim, Enabled(), &metrics);
  const int d0 = monitor.RegisterDrive("log", "log0");
  const int d1 = monitor.RegisterDrive("log", "log1");
  // No data yet: falls back to the caller's floor.
  EXPECT_EQ(monitor.HedgeDeadlineFor(d0, kHealthy), kHealthy);
  for (int i = 1; i <= 20; ++i) {
    Step(&sim, &monitor, i * kHealthy, d0, kHealthy, d1, kHealthy);
  }
  // Derived: hedge_deadline_ratio (2.0) x the 15 ms fleet reference.
  EXPECT_EQ(monitor.HedgeDeadlineFor(d0, kHealthy), 2 * kHealthy);
  // Never below the floor.
  EXPECT_EQ(monitor.HedgeDeadlineFor(d0, 50 * kMillisecond),
            50 * kMillisecond);

  HealthOptions pinned = Enabled();
  pinned.hedge.deadline = 20 * kMillisecond;
  DriveHealthMonitor fixed(&sim, pinned, &metrics, "fixed");
  const int f0 = fixed.RegisterDrive("log", "log0");
  EXPECT_EQ(fixed.HedgeDeadlineFor(f0, kHealthy), 20 * kMillisecond);
}

}  // namespace
}  // namespace health
}  // namespace elog
