// Sharded-manager wiring and equivalence tests.
//
// Part 1: a MakeLogManager/Database matrix over manager kind × duplex ×
// shard count asserts every combination is *fully* wired — coordinator,
// router, per-shard stacks, per-shard duplex devices — and still runs a
// shortened paper workload to completion with transaction conservation.
//
// Part 2: the pass-through guarantee. A ShardedLogManager over a single
// shard must forward every call verbatim, so the log it produces is
// byte-identical to the same manager driven directly. This is what makes
// `--shards 1` replays trustworthy: the sharding layer provably adds
// nothing to the write stream.

#include "shard/sharded_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/manager_factory.h"
#include "db/database.h"
#include "disk/drive_array.h"
#include "disk/log_device.h"
#include "disk/log_storage.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "util/random.h"
#include "workload/generator.h"
#include "workload/shard_router.h"
#include "workload/spec.h"

namespace elog {
namespace {

struct WiringCase {
  const char* name;
  ManagerKind kind;
  bool duplex;
  uint32_t shards;
};

class ShardWiringTest : public ::testing::TestWithParam<WiringCase> {};

std::string WiringCaseName(const ::testing::TestParamInfo<WiringCase>& info) {
  return info.param.name;
}

TEST_P(ShardWiringTest, FullyWiredAndRunsCleanly) {
  const WiringCase& c = GetParam();
  db::DatabaseConfig config;
  config.workload = workload::PaperMix(0.05);
  config.workload.runtime = SecondsToSimTime(25);
  config.workload.cross_shard_fraction = 0.25;  // ignored unless sharded
  config.manager = c.kind;
  config.duplex_log = c.duplex;
  config.log.generation_blocks = {18, 16};
  config.log.shards = c.shards;

  db::Database database(config);

  if (c.shards > 1) {
    // Sharded mode: coordinator + router + one full stack per shard; the
    // legacy single-stack accessors must stay empty.
    ASSERT_NE(database.sharded_manager(), nullptr);
    EXPECT_EQ(database.sharded_manager()->num_shards(), c.shards);
    ASSERT_NE(database.shard_router(), nullptr);
    EXPECT_EQ(database.shard_router()->num_shards(), c.shards);
    ASSERT_EQ(database.shard_stacks().size(), c.shards);
    EXPECT_EQ(database.el_manager(), nullptr);
    EXPECT_EQ(database.hybrid_manager(), nullptr);
    EXPECT_EQ(database.duplex_device(), nullptr);
    for (uint32_t k = 0; k < c.shards; ++k) {
      shard::ShardStack* stack = database.shard_stack(k);
      ASSERT_NE(stack, nullptr) << "shard " << k;
      ASSERT_NE(stack->manager(), nullptr) << "shard " << k;
      EXPECT_EQ(database.sharded_manager()->shard(k), stack->manager());
      if (c.kind == ManagerKind::kEphemeral) {
        EXPECT_NE(stack->el(), nullptr) << "shard " << k;
        EXPECT_EQ(stack->hybrid(), nullptr) << "shard " << k;
      } else {
        EXPECT_EQ(stack->el(), nullptr) << "shard " << k;
        EXPECT_NE(stack->hybrid(), nullptr) << "shard " << k;
      }
      ASSERT_NE(stack->device(), nullptr) << "shard " << k;
      ASSERT_NE(stack->drives(), nullptr) << "shard " << k;
      if (c.duplex) {
        EXPECT_NE(stack->duplex(), nullptr) << "shard " << k;
        EXPECT_NE(stack->device_mirror(), nullptr) << "shard " << k;
        EXPECT_NE(stack->mirror_storage(), nullptr) << "shard " << k;
      } else {
        EXPECT_EQ(stack->duplex(), nullptr) << "shard " << k;
        EXPECT_EQ(stack->device_mirror(), nullptr) << "shard " << k;
        EXPECT_EQ(stack->mirror_storage(), nullptr) << "shard " << k;
      }
    }
  } else {
    // shards == 1 takes the legacy single-stack path: no coordinator at
    // all, so the knob is free when unused.
    EXPECT_EQ(database.sharded_manager(), nullptr);
    EXPECT_TRUE(database.shard_stacks().empty());
    EXPECT_EQ(database.shard_router(), nullptr);
    if (c.kind == ManagerKind::kEphemeral) {
      EXPECT_NE(database.el_manager(), nullptr);
      EXPECT_EQ(database.hybrid_manager(), nullptr);
    } else {
      EXPECT_EQ(database.el_manager(), nullptr);
      EXPECT_NE(database.hybrid_manager(), nullptr);
    }
    EXPECT_EQ(database.duplex_device() != nullptr, c.duplex);
  }

  db::RunStats stats = database.Run();

  // Conservation: every started transaction resolves exactly once.
  EXPECT_EQ(stats.total_started, stats.total_committed + stats.total_killed);
  EXPECT_EQ(database.generator().active(), 0u);
  EXPECT_EQ(stats.total_started, 2500);
  EXPECT_GE(stats.records_appended, stats.total_started * 2);

  if (c.shards > 1) {
    // The cross-shard protocol actually engaged: both commit paths fired
    // and every cross-shard commit prepared at least one branch.
    shard::ShardedLogManager* sharded = database.sharded_manager();
    EXPECT_GT(sharded->single_shard_commits(), 0);
    EXPECT_GT(sharded->cross_shard_commits(), 0);
    EXPECT_GE(sharded->branch_prepares(), sharded->cross_shard_commits());
    EXPECT_EQ(stats.total_committed, sharded->single_shard_commits() +
                                         sharded->cross_shard_commits());
  }
}

std::vector<WiringCase> MakeWiringCases() {
  return {
      {"el_simplex_s1", ManagerKind::kEphemeral, false, 1},
      {"el_simplex_s4", ManagerKind::kEphemeral, false, 4},
      {"el_duplex_s1", ManagerKind::kEphemeral, true, 1},
      {"el_duplex_s4", ManagerKind::kEphemeral, true, 4},
      {"hybrid_simplex_s1", ManagerKind::kHybrid, false, 1},
      {"hybrid_simplex_s4", ManagerKind::kHybrid, false, 4},
      {"hybrid_duplex_s1", ManagerKind::kHybrid, true, 1},
      {"hybrid_duplex_s4", ManagerKind::kHybrid, true, 4},
  };
}

INSTANTIATE_TEST_SUITE_P(Matrix, ShardWiringTest,
                         ::testing::ValuesIn(MakeWiringCases()),
                         WiringCaseName);

// One manually-built manager stack, optionally wrapped in a single-shard
// ShardedLogManager. Both variants are driven by the same scripted
// transaction trace; with `wrap` the script reaches the inner manager
// only through the coordinator.
struct Stack {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  std::unique_ptr<disk::LogStorage> storage;
  std::unique_ptr<disk::LogDevice> device;
  std::unique_ptr<disk::DriveArray> drives;
  LogManagerSet set;
  std::unique_ptr<workload::HashShardRouter> router;
  std::unique_ptr<shard::ShardedLogManager> sharded;
  LogManager* api = nullptr;
  std::vector<TxId> committed;

  void Build(ManagerKind kind, bool wrap) {
    LogManagerOptions options;
    options.generation_blocks = {12, 12};
    options.num_objects = 1000;
    options.num_flush_drives = 10;
    storage = std::make_unique<disk::LogStorage>(options.generation_blocks);
    device = std::make_unique<disk::LogDevice>(
        &sim, storage.get(), options.log_write_latency, &metrics);
    drives = std::make_unique<disk::DriveArray>(
        &sim, options.num_flush_drives, options.num_objects,
        options.flush_transfer_time, &metrics);
    set = MakeLogManager(kind, options, &sim, device.get(), drives.get(),
                         &metrics);
    if (wrap) {
      router = std::make_unique<workload::HashShardRouter>(1);
      sharded = std::make_unique<shard::ShardedLogManager>(
          &sim, std::vector<LogManager*>{set.manager.get()}, router.get(),
          &metrics);
      api = sharded.get();
    } else {
      api = set.manager.get();
    }
  }

  /// Deterministic golden trace: fixed-seed oids and update counts,
  /// fixed virtual-time spacing. Two stacks running this produce the
  /// same event sequence at the same instants.
  void DriveScript() {
    Rng rng(0x5eed);
    workload::TransactionType type;  // defaults: 1 s lifetime
    for (int t = 0; t < 120; ++t) {
      TxId tid = api->BeginTransaction(type);
      const int updates = 1 + static_cast<int>(rng.NextBounded(3));
      for (int u = 0; u < updates; ++u) {
        api->WriteUpdate(tid, static_cast<Oid>(rng.NextBounded(1000)), 100);
        sim.RunUntil(sim.Now() + 5 * kMillisecond);
      }
      api->Commit(tid, [this](TxId id) { committed.push_back(id); });
      sim.RunUntil(sim.Now() + 20 * kMillisecond);
    }
    api->ForceWriteOpenBuffers();
    sim.Run();
  }
};

class PassthroughTest : public ::testing::TestWithParam<ManagerKind> {};

TEST_P(PassthroughTest, SingleShardLogIsByteIdentical) {
  Stack direct;
  direct.Build(GetParam(), /*wrap=*/false);
  direct.DriveScript();

  Stack wrapped;
  wrapped.Build(GetParam(), /*wrap=*/true);
  wrapped.DriveScript();

  // Same commits, in the same order, acknowledged at the same state.
  EXPECT_EQ(direct.committed, wrapped.committed);
  EXPECT_FALSE(direct.committed.empty());
  EXPECT_EQ(direct.sim.Now(), wrapped.sim.Now());

  // Every durable block image matches byte for byte.
  ASSERT_EQ(direct.storage->num_generations(),
            wrapped.storage->num_generations());
  for (uint32_t g = 0; g < direct.storage->num_generations(); ++g) {
    std::vector<const wal::BlockImage*> a = direct.storage->GenerationBlocks(g);
    std::vector<const wal::BlockImage*> b =
        wrapped.storage->GenerationBlocks(g);
    ASSERT_EQ(a.size(), b.size()) << "generation " << g;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i] == nullptr, b[i] == nullptr)
          << "generation " << g << " block " << i;
      if (a[i] == nullptr) continue;
      EXPECT_EQ(*a[i], *b[i]) << "generation " << g << " block " << i;
    }
  }
}

// The scripted trace above exercises the call surface; this variant is
// the acceptance wording itself — the paper's canonical Figure 5
// workload (PaperMix arrivals through the real WorkloadGenerator,
// kills relayed back) through a single-shard coordinator must leave the
// log byte-identical to the unsharded manager. KillListener is the one
// hook DriveScript never hits, so it is wired and compared here.
struct CanonicalDriver : KillListener {
  Stack stack;
  std::unique_ptr<workload::WorkloadGenerator> generator;

  void OnTransactionKilled(TxId tid) override { generator->NotifyKilled(tid); }

  void Run(ManagerKind kind, bool wrap) {
    stack.Build(kind, wrap);
    workload::WorkloadSpec spec = workload::PaperMix(0.05);
    spec.runtime = SecondsToSimTime(20);
    spec.seed = 0x5eed;
    spec.num_objects = 1000;  // the Stack's store is sized for 1000 oids
    generator = std::make_unique<workload::WorkloadGenerator>(
        &stack.sim, spec, stack.api, &stack.metrics);
    stack.api->set_kill_listener(this);
    generator->Start();
    stack.sim.Run();
    stack.api->ForceWriteOpenBuffers();
    stack.sim.Run();
  }
};

TEST_P(PassthroughTest, CanonicalTraceIsByteIdentical) {
  CanonicalDriver direct;
  direct.Run(GetParam(), /*wrap=*/false);

  CanonicalDriver wrapped;
  wrapped.Run(GetParam(), /*wrap=*/true);

  EXPECT_GT(direct.generator->started(), 0);
  EXPECT_GT(direct.generator->committed(), 0);
  EXPECT_EQ(direct.generator->started(), wrapped.generator->started());
  EXPECT_EQ(direct.generator->committed(), wrapped.generator->committed());
  EXPECT_EQ(direct.generator->killed(), wrapped.generator->killed());
  EXPECT_EQ(direct.generator->updates_written(),
            wrapped.generator->updates_written());
  EXPECT_EQ(direct.stack.sim.Now(), wrapped.stack.sim.Now());

  ASSERT_EQ(direct.stack.storage->num_generations(),
            wrapped.stack.storage->num_generations());
  for (uint32_t g = 0; g < direct.stack.storage->num_generations(); ++g) {
    std::vector<const wal::BlockImage*> a =
        direct.stack.storage->GenerationBlocks(g);
    std::vector<const wal::BlockImage*> b =
        wrapped.stack.storage->GenerationBlocks(g);
    ASSERT_EQ(a.size(), b.size()) << "generation " << g;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i] == nullptr, b[i] == nullptr)
          << "generation " << g << " block " << i;
      if (a[i] == nullptr) continue;
      EXPECT_EQ(*a[i], *b[i]) << "generation " << g << " block " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, PassthroughTest,
                         ::testing::Values(ManagerKind::kEphemeral,
                                           ManagerKind::kHybrid),
                         [](const ::testing::TestParamInfo<ManagerKind>& i) {
                           return i.param == ManagerKind::kEphemeral
                                      ? std::string("el")
                                      : std::string("hybrid");
                         });

}  // namespace
}  // namespace elog
