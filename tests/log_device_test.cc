#include "disk/log_device.h"

#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

namespace elog {
namespace disk {
namespace {

constexpr SimTime kLatency = 15 * kMillisecond;

wal::BlockImage MakeImage(uint64_t seq) {
  return wal::EncodeBlock(0, seq, {});
}

class LogDeviceTest : public ::testing::Test {
 protected:
  LogDeviceTest() : storage_({4, 4}), device_(&sim_, &storage_, kLatency, &metrics_) {}

  sim::Simulator sim_;
  sim::MetricsRegistry metrics_;
  LogStorage storage_;
  LogDevice device_;
};

TEST_F(LogDeviceTest, WriteTakesFixedLatency) {
  SimTime durable_at = -1;
  device_.Submit({{0, 1}, MakeImage(1), [&](const Status&) { durable_at = sim_.Now(); }});
  EXPECT_FALSE(storage_.IsWritten({0, 1}));  // not durable yet
  sim_.Run();
  EXPECT_EQ(durable_at, kLatency);
  EXPECT_TRUE(storage_.IsWritten({0, 1}));
  EXPECT_EQ(device_.writes_completed(), 1);
}

TEST_F(LogDeviceTest, WritesAreSerialized) {
  std::vector<SimTime> completions;
  for (uint32_t slot = 0; slot < 3; ++slot) {
    device_.Submit({{0, slot}, MakeImage(slot),
                    [&](const Status&) { completions.push_back(sim_.Now()); }});
  }
  sim_.Run();
  // One at a time: 15, 30, 45 ms.
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], kLatency);
  EXPECT_EQ(completions[1], 2 * kLatency);
  EXPECT_EQ(completions[2], 3 * kLatency);
}

TEST_F(LogDeviceTest, FifoOrderAcrossGenerations) {
  std::vector<uint32_t> order;
  device_.Submit({{1, 0}, MakeImage(1), [&](const Status&) { order.push_back(1); }});
  device_.Submit({{0, 0}, MakeImage(2), [&](const Status&) { order.push_back(0); }});
  sim_.Run();
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 0}));
}

TEST_F(LogDeviceTest, PerGenerationCounters) {
  device_.Submit({{0, 0}, MakeImage(1), nullptr});
  device_.Submit({{0, 1}, MakeImage(2), nullptr});
  device_.Submit({{1, 0}, MakeImage(3), nullptr});
  sim_.Run();
  EXPECT_EQ(device_.writes_completed(), 3);
  EXPECT_EQ(device_.writes_completed(0), 2);
  EXPECT_EQ(device_.writes_completed(1), 1);
  EXPECT_EQ(metrics_.GetCounter("log_device.writes")->value(), 3);
  EXPECT_EQ(metrics_.GetCounter("log_device.writes.gen0")->value(), 2);
}

TEST_F(LogDeviceTest, InServiceReportsAddress) {
  BlockAddress address;
  EXPECT_FALSE(device_.InService(&address));
  device_.Submit({{1, 2}, MakeImage(1), nullptr});
  ASSERT_TRUE(device_.InService(&address));
  EXPECT_EQ(address.generation, 1u);
  EXPECT_EQ(address.slot, 2u);
  sim_.Run();
  EXPECT_FALSE(device_.InService(&address));
}

TEST_F(LogDeviceTest, BusyReflectsQueue) {
  EXPECT_FALSE(device_.busy());
  device_.Submit({{0, 0}, MakeImage(1), nullptr});
  device_.Submit({{0, 1}, MakeImage(2), nullptr});
  EXPECT_TRUE(device_.busy());
  sim_.Run();
  EXPECT_FALSE(device_.busy());
}

TEST_F(LogDeviceTest, CompletionMaySubmitMoreWrites) {
  std::vector<SimTime> completions;
  device_.Submit({{0, 0}, MakeImage(1), [&](const Status&) {
    completions.push_back(sim_.Now());
    device_.Submit({{0, 1}, MakeImage(2),
                    [&](const Status&) { completions.push_back(sim_.Now()); }});
  }});
  sim_.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[1], 2 * kLatency);
}

TEST_F(LogDeviceTest, SameSlotLastWriteWins) {
  device_.Submit({{0, 0}, MakeImage(1), nullptr});
  device_.Submit({{0, 0}, MakeImage(2), nullptr});
  sim_.Run();
  auto decoded = wal::DecodeBlock(*storage_.Get({0, 0}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->write_seq, 2u);
}

TEST_F(LogDeviceTest, SubmitOutOfRangeChecks) {
  EXPECT_DEATH(device_.Submit({{2, 0}, MakeImage(1), nullptr}), "");
  EXPECT_DEATH(device_.Submit({{0, 9}, MakeImage(1), nullptr}), "");
}

TEST_F(LogDeviceTest, ExtraLatencyDelaysCompletion) {
  SimTime durable_at = -1;
  device_.Submit({{0, 0}, MakeImage(1),
                  [&](const Status&) { durable_at = sim_.Now(); },
                  10 * kMillisecond});
  sim_.Run();
  EXPECT_EQ(durable_at, kLatency + 10 * kMillisecond);
}

TEST_F(LogDeviceTest, SubmitFrontJumpsQueue) {
  std::vector<int> order;
  device_.Submit({{0, 0}, MakeImage(1), [&](const Status&) { order.push_back(0); }});
  device_.Submit({{0, 1}, MakeImage(2), [&](const Status&) { order.push_back(1); }});
  // Front-submitted after the first write entered service: runs before
  // slot 1 but after slot 0.
  device_.SubmitFront(
      {{0, 2}, MakeImage(3), [&](const Status&) { order.push_back(2); }});
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST_F(LogDeviceTest, TransientErrorLeavesBlockUnwritten) {
  fault::FaultConfig fault_config;
  fault_config.seed = 7;
  fault_config.log_transient_error_rate = 1.0;
  fault::FaultInjector injector(fault_config);
  LogDevice device(&sim_, &storage_, kLatency, &metrics_, &injector);
  Status seen = Status::OK();
  device.Submit({{0, 0}, MakeImage(1), [&](const Status& s) { seen = s; }});
  sim_.Run();
  EXPECT_FALSE(seen.ok());
  EXPECT_FALSE(storage_.IsWritten({0, 0}));
  EXPECT_EQ(device.write_errors(), 1);
  EXPECT_EQ(device.writes_completed(), 0);
}

TEST_F(LogDeviceTest, BitRotLandsCorruptButReportsOk) {
  fault::FaultConfig fault_config;
  fault_config.seed = 7;
  fault_config.log_bit_rot_rate = 1.0;
  fault::FaultInjector injector(fault_config);
  LogDevice device(&sim_, &storage_, kLatency, &metrics_, &injector);
  Status seen = Status::Aborted("never completed");
  device.Submit({{0, 0}, MakeImage(1), [&](const Status& s) { seen = s; }});
  sim_.Run();
  EXPECT_TRUE(seen.ok());  // silent corruption: the device reports success
  ASSERT_TRUE(storage_.IsWritten({0, 0}));
  EXPECT_FALSE(wal::DecodeBlock(*storage_.Get({0, 0})).ok());
  EXPECT_EQ(device.bit_rot_writes(), 1);
}

TEST_F(LogDeviceTest, RetryViaSubmitFrontPreservesFifoDurability) {
  // The log-manager retry pattern: on failure, resubmit at the head with
  // backoff. A younger queued block must not become durable first.
  fault::FaultConfig fault_config;
  fault_config.seed = 7;
  fault_config.log_transient_error_rate = 1.0;
  fault::FaultInjector injector(fault_config);
  LogDevice device(&sim_, &storage_, kLatency, &metrics_, &injector);
  std::vector<std::pair<int, bool>> completions;  // (id, ok)
  int attempts = 0;
  std::function<void(const Status&)> retry = [&](const Status& s) {
    completions.push_back({0, s.ok()});
    if (!s.ok() && ++attempts < 3) {
      device.SubmitFront({{0, 0}, MakeImage(1), retry, 5 * kMillisecond});
    }
  };
  device.Submit({{0, 0}, MakeImage(1), retry});
  device.Submit({{0, 1}, MakeImage(2),
                 [&](const Status& s) { completions.push_back({1, s.ok()}); }});
  sim_.Run();
  // All three attempts of block 0 complete (and fail) before block 1 is
  // serviced.
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_EQ(completions[0].first, 0);
  EXPECT_EQ(completions[1].first, 0);
  EXPECT_EQ(completions[2].first, 0);
  EXPECT_EQ(completions[3].first, 1);
}

}  // namespace
}  // namespace disk
}  // namespace elog
