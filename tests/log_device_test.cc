#include "disk/log_device.h"

#include <gtest/gtest.h>

#include <vector>

namespace elog {
namespace disk {
namespace {

constexpr SimTime kLatency = 15 * kMillisecond;

wal::BlockImage MakeImage(uint64_t seq) {
  return wal::EncodeBlock(0, seq, {});
}

class LogDeviceTest : public ::testing::Test {
 protected:
  LogDeviceTest() : storage_({4, 4}), device_(&sim_, &storage_, kLatency, &metrics_) {}

  sim::Simulator sim_;
  sim::MetricsRegistry metrics_;
  LogStorage storage_;
  LogDevice device_;
};

TEST_F(LogDeviceTest, WriteTakesFixedLatency) {
  SimTime durable_at = -1;
  device_.Submit({{0, 1}, MakeImage(1), [&] { durable_at = sim_.Now(); }});
  EXPECT_FALSE(storage_.IsWritten({0, 1}));  // not durable yet
  sim_.Run();
  EXPECT_EQ(durable_at, kLatency);
  EXPECT_TRUE(storage_.IsWritten({0, 1}));
  EXPECT_EQ(device_.writes_completed(), 1);
}

TEST_F(LogDeviceTest, WritesAreSerialized) {
  std::vector<SimTime> completions;
  for (uint32_t slot = 0; slot < 3; ++slot) {
    device_.Submit({{0, slot}, MakeImage(slot),
                    [&] { completions.push_back(sim_.Now()); }});
  }
  sim_.Run();
  // One at a time: 15, 30, 45 ms.
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], kLatency);
  EXPECT_EQ(completions[1], 2 * kLatency);
  EXPECT_EQ(completions[2], 3 * kLatency);
}

TEST_F(LogDeviceTest, FifoOrderAcrossGenerations) {
  std::vector<uint32_t> order;
  device_.Submit({{1, 0}, MakeImage(1), [&] { order.push_back(1); }});
  device_.Submit({{0, 0}, MakeImage(2), [&] { order.push_back(0); }});
  sim_.Run();
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 0}));
}

TEST_F(LogDeviceTest, PerGenerationCounters) {
  device_.Submit({{0, 0}, MakeImage(1), nullptr});
  device_.Submit({{0, 1}, MakeImage(2), nullptr});
  device_.Submit({{1, 0}, MakeImage(3), nullptr});
  sim_.Run();
  EXPECT_EQ(device_.writes_completed(), 3);
  EXPECT_EQ(device_.writes_completed(0), 2);
  EXPECT_EQ(device_.writes_completed(1), 1);
  EXPECT_EQ(metrics_.Counter("log_device.writes"), 3);
  EXPECT_EQ(metrics_.Counter("log_device.writes.gen0"), 2);
}

TEST_F(LogDeviceTest, InServiceReportsAddress) {
  BlockAddress address;
  EXPECT_FALSE(device_.InService(&address));
  device_.Submit({{1, 2}, MakeImage(1), nullptr});
  ASSERT_TRUE(device_.InService(&address));
  EXPECT_EQ(address.generation, 1u);
  EXPECT_EQ(address.slot, 2u);
  sim_.Run();
  EXPECT_FALSE(device_.InService(&address));
}

TEST_F(LogDeviceTest, BusyReflectsQueue) {
  EXPECT_FALSE(device_.busy());
  device_.Submit({{0, 0}, MakeImage(1), nullptr});
  device_.Submit({{0, 1}, MakeImage(2), nullptr});
  EXPECT_TRUE(device_.busy());
  sim_.Run();
  EXPECT_FALSE(device_.busy());
}

TEST_F(LogDeviceTest, CompletionMaySubmitMoreWrites) {
  std::vector<SimTime> completions;
  device_.Submit({{0, 0}, MakeImage(1), [&] {
    completions.push_back(sim_.Now());
    device_.Submit({{0, 1}, MakeImage(2),
                    [&] { completions.push_back(sim_.Now()); }});
  }});
  sim_.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[1], 2 * kLatency);
}

TEST_F(LogDeviceTest, SameSlotLastWriteWins) {
  device_.Submit({{0, 0}, MakeImage(1), nullptr});
  device_.Submit({{0, 0}, MakeImage(2), nullptr});
  sim_.Run();
  auto decoded = wal::DecodeBlock(*storage_.Get({0, 0}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->write_seq, 2u);
}

TEST_F(LogDeviceTest, SubmitOutOfRangeChecks) {
  EXPECT_DEATH(device_.Submit({{2, 0}, MakeImage(1), nullptr}), "");
  EXPECT_DEATH(device_.Submit({{0, 9}, MakeImage(1), nullptr}), "");
}

}  // namespace
}  // namespace disk
}  // namespace elog
