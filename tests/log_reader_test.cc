#include "wal/log_reader.h"

#include <gtest/gtest.h>

namespace elog {
namespace wal {
namespace {

BlockImage MakeBlock(uint32_t generation, uint64_t seq,
                     std::vector<Lsn> lsns) {
  std::vector<LogRecord> records;
  for (Lsn lsn : lsns) {
    records.push_back(LogRecord::MakeData(1, lsn, lsn * 10, 100, lsn));
  }
  return EncodeBlock(generation, seq, records);
}

TEST(LogScannerTest, EmptyScan) {
  LogScanner scanner;
  scanner.AddGeneration({});
  EXPECT_TRUE(scanner.records().empty());
  EXPECT_EQ(scanner.stats().blocks_scanned, 0u);
}

TEST(LogScannerTest, SkipsUnwrittenSlots) {
  LogScanner scanner;
  BlockImage block = MakeBlock(0, 1, {5});
  scanner.AddGeneration({nullptr, &block, nullptr});
  EXPECT_EQ(scanner.stats().blocks_scanned, 3u);
  EXPECT_EQ(scanner.stats().blocks_empty, 2u);
  EXPECT_EQ(scanner.stats().records, 1u);
}

TEST(LogScannerTest, CollectsAcrossGenerations) {
  LogScanner scanner;
  BlockImage gen0 = MakeBlock(0, 1, {1, 2});
  BlockImage gen1 = MakeBlock(1, 2, {3});
  scanner.AddGeneration({&gen0});
  scanner.AddGeneration({&gen1});
  EXPECT_EQ(scanner.records().size(), 3u);
  EXPECT_EQ(scanner.records()[2].generation, 1u);
  EXPECT_EQ(scanner.records()[2].write_seq, 2u);
}

TEST(LogScannerTest, CorruptBlockSkippedNotFatal) {
  LogScanner scanner;
  BlockImage good = MakeBlock(0, 1, {1});
  BlockImage bad = MakeBlock(0, 2, {2});
  bad[bad.size() - 1] ^= 0xff;  // torn tail write
  scanner.AddGeneration({&good, &bad});
  EXPECT_EQ(scanner.stats().blocks_corrupt, 1u);
  EXPECT_EQ(scanner.records().size(), 1u);
  EXPECT_EQ(scanner.records()[0].record.lsn, 1u);
}

TEST(LogScannerTest, SortedByLsnRestoresTemporalOrder) {
  // Recirculation scrambles physical order; LSN sorting recovers it.
  LogScanner scanner;
  BlockImage scrambled = MakeBlock(1, 9, {42, 7, 19});
  BlockImage older = MakeBlock(0, 3, {3, 25});
  scanner.AddGeneration({&older});
  scanner.AddGeneration({&scrambled});
  std::vector<ScannedRecord> sorted = scanner.SortedByLsn();
  ASSERT_EQ(sorted.size(), 5u);
  Lsn previous = 0;
  for (const ScannedRecord& scanned : sorted) {
    EXPECT_GT(scanned.record.lsn, previous);
    previous = scanned.record.lsn;
  }
  EXPECT_EQ(sorted.front().record.lsn, 3u);
  EXPECT_EQ(sorted.back().record.lsn, 42u);
}

TEST(LogScannerTest, DuplicatesRetained) {
  // A forwarded record's stale copy survives in its old block; both
  // copies are reported, and consumers dedupe by LSN.
  LogScanner scanner;
  BlockImage original = MakeBlock(0, 1, {11});
  BlockImage forwarded = MakeBlock(1, 2, {11});
  scanner.AddGeneration({&original});
  scanner.AddGeneration({&forwarded});
  EXPECT_EQ(scanner.records().size(), 2u);
  EXPECT_EQ(scanner.records()[0].record.lsn,
            scanner.records()[1].record.lsn);
}

}  // namespace
}  // namespace wal
}  // namespace elog
