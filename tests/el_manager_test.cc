// Direct-API tests of the ephemeral logging manager: the LOT/LTT
// lifecycle rules of §2.3, forwarding/recirculation of §2.1–2.2, group
// commit, flushing, and the kill policies.

#include "core/el_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace elog {
namespace {

class RecordingKillListener : public KillListener {
 public:
  void OnTransactionKilled(TxId tid) override { killed.push_back(tid); }
  std::vector<TxId> killed;
};

struct FlushEvent {
  Oid oid;
  Lsn lsn;
  uint64_t digest;
  SimTime when;
};

class ElManagerTest : public ::testing::Test {
 protected:
  static constexpr Oid kObjects = 1000;

  void Build(LogManagerOptions options) {
    options.num_objects = kObjects;
    options.num_flush_drives = 10;
    storage_ = std::make_unique<disk::LogStorage>(options.generation_blocks);
    device_ = std::make_unique<disk::LogDevice>(
        &sim_, storage_.get(), options.log_write_latency, &metrics_);
    drives_ = std::make_unique<disk::DriveArray>(
        &sim_, options.num_flush_drives, options.num_objects,
        options.flush_transfer_time, &metrics_);
    manager_ = std::make_unique<EphemeralLogManager>(
        &sim_, options, device_.get(), drives_.get(), &metrics_);
    manager_->set_kill_listener(&kills_);
    manager_->set_flush_apply_hook([this](Oid oid, Lsn lsn, uint64_t digest) {
      flushes_.push_back({oid, lsn, digest, sim_.Now()});
    });
  }

  static LogManagerOptions TwoGenOptions(uint32_t gen0 = 6,
                                         uint32_t gen1 = 6) {
    LogManagerOptions options;
    options.generation_blocks = {gen0, gen1};
    return options;
  }

  workload::TransactionType Type(SimTime lifetime = SecondsToSimTime(1)) {
    workload::TransactionType type;
    type.lifetime = lifetime;
    return type;
  }

  TxId Begin(SimTime lifetime = SecondsToSimTime(1)) {
    return manager_->BeginTransaction(Type(lifetime));
  }

  /// Requests commit, recording the acknowledgement time.
  void Commit(TxId tid) {
    manager_->Commit(tid, [this](TxId committed) {
      committed_.push_back({committed, sim_.Now()});
    });
  }

  bool IsCommitted(TxId tid) const {
    for (const auto& [id, when] : committed_) {
      if (id == tid) return true;
    }
    return false;
  }

  SimTime CommitTime(TxId tid) const {
    for (const auto& [id, when] : committed_) {
      if (id == tid) return when;
    }
    return -1;
  }

  sim::Simulator sim_;
  sim::MetricsRegistry metrics_;
  std::unique_ptr<disk::LogStorage> storage_;
  std::unique_ptr<disk::LogDevice> device_;
  std::unique_ptr<disk::DriveArray> drives_;
  std::unique_ptr<EphemeralLogManager> manager_;
  RecordingKillListener kills_;
  std::vector<FlushEvent> flushes_;
  std::vector<std::pair<TxId, SimTime>> committed_;
};

TEST_F(ElManagerTest, BeginCreatesLttEntry) {
  Build(TwoGenOptions());
  TxId tid = Begin();
  EXPECT_NE(tid, kInvalidTxId);
  EXPECT_EQ(manager_->ltt_size(), 1u);
  EXPECT_EQ(manager_->lot_size(), 0u);
  EXPECT_EQ(manager_->active_transactions(), 1u);
  EXPECT_EQ(manager_->records_appended(), 1);
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, DistinctTidsAssigned) {
  Build(TwoGenOptions());
  TxId a = Begin();
  TxId b = Begin();
  EXPECT_NE(a, b);
  EXPECT_EQ(manager_->ltt_size(), 2u);
}

TEST_F(ElManagerTest, UpdateCreatesLotEntry) {
  Build(TwoGenOptions());
  TxId tid = Begin();
  manager_->WriteUpdate(tid, 42, 100);
  EXPECT_EQ(manager_->lot_size(), 1u);
  EXPECT_EQ(manager_->records_appended(), 2);
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, MemoryModelCountsTablesAt40Bytes) {
  Build(TwoGenOptions());
  TxId tid = Begin();
  EXPECT_DOUBLE_EQ(manager_->modeled_memory_bytes(), 40.0);
  manager_->WriteUpdate(tid, 1, 100);
  manager_->WriteUpdate(tid, 2, 100);
  EXPECT_DOUBLE_EQ(manager_->modeled_memory_bytes(), 40.0 + 2 * 40.0);
  EXPECT_EQ(manager_->memory_usage().peak(), 120.0);
}

TEST_F(ElManagerTest, CommitAcknowledgedWhenBlockDurable) {
  Build(TwoGenOptions());
  TxId tid = Begin();
  manager_->WriteUpdate(tid, 7, 100);
  Commit(tid);
  // Group commit: the buffer is not full, so nothing is durable yet.
  sim_.RunUntil(100 * kMillisecond);
  EXPECT_FALSE(IsCommitted(tid));
  // Drain forces the buffer out; ack arrives one disk write later.
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  ASSERT_TRUE(IsCommitted(tid));
  EXPECT_EQ(CommitTime(tid), 100 * kMillisecond + 15 * kMillisecond);
}

TEST_F(ElManagerTest, FullBufferTriggersGroupCommitWithoutDrain) {
  Build(TwoGenOptions());
  // 2000-byte payload: BEGIN (8) + 19 x 100-byte updates leaves 92 bytes;
  // the 20th update (100 B) does not fit and rotates the buffer, which
  // carries the COMMIT of nobody — so instead fill exactly and commit.
  TxId tid = Begin();
  for (int i = 0; i < 25; ++i) manager_->WriteUpdate(tid, i, 100);
  sim_.Run();
  // At least one block write happened with no explicit drain.
  EXPECT_GE(device_->writes_completed(), 1);
}

TEST_F(ElManagerTest, GroupCommitLingerFlushesIdleBuffer) {
  LogManagerOptions options = TwoGenOptions();
  options.group_commit_linger = 30 * kMillisecond;
  Build(options);
  TxId tid = Begin();
  Commit(tid);
  sim_.Run();
  ASSERT_TRUE(IsCommitted(tid));
  // Linger fires 30 ms after the first record entered the buffer; the
  // disk write adds 15 ms.
  EXPECT_EQ(CommitTime(tid), 45 * kMillisecond);
}

TEST_F(ElManagerTest, CommittedUpdateFlushedThenTablesEmpty) {
  Build(TwoGenOptions());
  TxId tid = Begin();
  manager_->WriteUpdate(tid, 123, 100);
  Commit(tid);
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  ASSERT_TRUE(IsCommitted(tid));
  // The flush completed (15 ms write + 25 ms flush) and applied the
  // record's digest; all table entries are gone.
  ASSERT_EQ(flushes_.size(), 1u);
  EXPECT_EQ(flushes_[0].oid, 123u);
  EXPECT_EQ(manager_->lot_size(), 0u);
  EXPECT_EQ(manager_->ltt_size(), 0u);
  EXPECT_EQ(manager_->updates_flushed(), 1);
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, CommitWithNoUpdatesCleansImmediately) {
  Build(TwoGenOptions());
  TxId tid = Begin();
  Commit(tid);
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  EXPECT_TRUE(IsCommitted(tid));
  EXPECT_EQ(manager_->ltt_size(), 0u);
  EXPECT_EQ(flushes_.size(), 0u);
}

TEST_F(ElManagerTest, AbortMakesEverythingGarbage) {
  Build(TwoGenOptions());
  TxId tid = Begin();
  manager_->WriteUpdate(tid, 5, 100);
  manager_->WriteUpdate(tid, 6, 100);
  manager_->Abort(tid);
  EXPECT_EQ(manager_->lot_size(), 0u);
  EXPECT_EQ(manager_->ltt_size(), 0u);
  // BEGIN + 2 data + ABORT were appended.
  EXPECT_EQ(manager_->records_appended(), 4);
  sim_.Run();
  EXPECT_TRUE(flushes_.empty());  // aborted updates never flush
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, SameTxnReupdateSupersedesOwnRecord) {
  Build(TwoGenOptions());
  TxId tid = Begin();
  manager_->WriteUpdate(tid, 9, 100);
  manager_->WriteUpdate(tid, 9, 100);  // same object again
  EXPECT_EQ(manager_->lot_size(), 1u);
  Commit(tid);
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  // Only the second (newer) update flushes.
  ASSERT_EQ(flushes_.size(), 1u);
  EXPECT_EQ(flushes_[0].oid, 9u);
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, NewerCommitSupersedesOlderCommittedUpdate) {
  LogManagerOptions options = TwoGenOptions();
  options.flush_transfer_time = SecondsToSimTime(30);  // flushes stall
  Build(options);
  TxId tx1 = Begin();
  manager_->WriteUpdate(tx1, 50, 100);
  Commit(tx1);
  manager_->ForceWriteOpenBuffers();
  sim_.RunUntil(20 * kMillisecond);  // tx1 durable; flush still pending
  ASSERT_TRUE(IsCommitted(tx1));
  EXPECT_EQ(manager_->ltt_size(), 1u);  // tx1 lingers: unflushed update

  TxId tx2 = Begin();
  manager_->WriteUpdate(tx2, 50, 100);
  Commit(tx2);
  manager_->ForceWriteOpenBuffers();
  sim_.RunUntil(50 * kMillisecond);
  ASSERT_TRUE(IsCommitted(tx2));
  // tx1's update is superseded: its record became garbage and its LTT
  // entry disappeared even though its flush never completed.
  EXPECT_EQ(manager_->lot_size(), 1u);
  manager_->CheckInvariants();
  sim_.Run();
  // Both flush requests eventually complete; the stable version must end
  // at tx2's LSN (ApplyFlush keeps the max), and tables empty out.
  EXPECT_EQ(manager_->lot_size(), 0u);
  EXPECT_EQ(manager_->ltt_size(), 0u);
}

TEST_F(ElManagerTest, ForwardingMovesLongLivedRecordsToNextGeneration) {
  Build(TwoGenOptions(4, 8));
  TxId tid = Begin(SecondsToSimTime(100));  // long-lived
  // 4-block generation 0 (3 usable): ~60 x 100 B records overflow it and
  // force head advances that must forward this transaction's records.
  for (int i = 0; i < 80; ++i) manager_->WriteUpdate(tid, i, 100);
  EXPECT_GT(manager_->records_forwarded(), 0);
  EXPECT_EQ(kills_.killed.size(), 0u);
  sim_.Run();
  EXPECT_GT(device_->writes_completed(1), 0);  // generation 1 was written
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, RecirculationKeepsActiveTransactionAlive) {
  // Single-generation EL with recirculation: the paper's last-generation
  // behaviour in isolation. A long-lived transaction's few records keep
  // recirculating while short committed traffic around them becomes
  // garbage — and the long transaction survives.
  LogManagerOptions options;
  options.generation_blocks = {6};
  options.recirculation = true;
  Build(options);
  TxId keeper = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(keeper, 900, 100);
  manager_->WriteUpdate(keeper, 901, 100);
  for (int round = 0; round < 40; ++round) {
    TxId tid = Begin();
    manager_->WriteUpdate(tid, round, 100);
    manager_->WriteUpdate(tid, 100 + round, 100);
    Commit(tid);
    manager_->ForceWriteOpenBuffers();
    sim_.Run();  // commit, flush, garbage-collect
  }
  EXPECT_GT(manager_->records_recirculated(), 0);
  EXPECT_TRUE(kills_.killed.empty());
  EXPECT_GE(manager_->ltt_size(), 1u);  // the keeper survives
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, NoRecirculationKillsActiveTransactionAtHead) {
  LogManagerOptions options;
  options.generation_blocks = {6};
  options.recirculation = false;
  Build(options);
  TxId victim = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(victim, 999, 100);
  // A second transaction floods the log; the victim's record reaches the
  // head while the victim is still active.
  TxId flooder = Begin(SecondsToSimTime(100));
  for (int i = 0; i < 200 && kills_.killed.empty(); ++i) {
    manager_->WriteUpdate(flooder, i, 100);
  }
  ASSERT_FALSE(kills_.killed.empty());
  // The victim's record at the head dies first (the flooder may follow
  // once it saturates the log by itself).
  EXPECT_EQ(kills_.killed[0], victim);
  EXPECT_GE(manager_->transactions_killed(), 1);
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, SaturatedRecirculationKillsOldest) {
  // Recirculation on, but the whole generation is non-garbage: the
  // oldest transaction must be sacrificed.
  LogManagerOptions options;
  options.generation_blocks = {5};
  options.recirculation = true;
  Build(options);
  TxId oldest = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(oldest, 900, 100);
  TxId filler = Begin(SecondsToSimTime(100));
  for (int i = 0; i < 300 && kills_.killed.empty(); ++i) {
    manager_->WriteUpdate(filler, i, 100);
  }
  ASSERT_FALSE(kills_.killed.empty());
  EXPECT_EQ(kills_.killed[0], oldest);
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, FlushOnDemandPolicySchedulesUrgentFlushes) {
  // Naive §2.1 policy: no flush at commit; the committed record is
  // flushed (urgently) when it reaches a generation head.
  LogManagerOptions options;
  options.generation_blocks = {4, 4};
  options.unflushed_policy = UnflushedPolicy::kFlushOnDemand;
  Build(options);
  TxId tid = Begin();
  manager_->WriteUpdate(tid, 77, 100);
  Commit(tid);
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  ASSERT_TRUE(IsCommitted(tid));
  EXPECT_TRUE(flushes_.empty());  // nothing flushed at commit
  // Flood generation 0 and 1 so the committed record reaches a head.
  // The flooder itself may die of saturation; stop issuing then.
  TxId flooder = Begin(SecondsToSimTime(100));
  for (int i = 0; i < 200 && kills_.killed.empty(); ++i) {
    manager_->WriteUpdate(flooder, i, 100);
  }
  sim_.Run();
  EXPECT_GT(manager_->urgent_flushes(), 0);
  EXPECT_FALSE(flushes_.empty());
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, LifetimeHintsRouteLongTransactionsDirectly) {
  LogManagerOptions options = TwoGenOptions(6, 8);
  options.lifetime_hints = true;
  options.hint_lifetime_threshold = SecondsToSimTime(5);
  options.hint_target_generation = 1;
  Build(options);
  TxId long_tid = Begin(SecondsToSimTime(10));
  manager_->WriteUpdate(long_tid, 1, 100);
  TxId short_tid = Begin(SecondsToSimTime(1));
  manager_->WriteUpdate(short_tid, 2, 100);
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  // Both generations received direct writes.
  EXPECT_GE(device_->writes_completed(0), 1);
  EXPECT_GE(device_->writes_completed(1), 1);
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, CommittingTransactionSurvivesSpacePressure) {
  // A transaction inside its commit window (COMMIT queued but not yet
  // durable) must never be chosen as a space victim: its COMMIT could
  // reach disk anyway and resurrect as a phantom commit at recovery.
  // Space pressure sacrifices the active flooder instead.
  LogManagerOptions options;
  options.generation_blocks = {6};
  options.recirculation = true;
  Build(options);
  TxId tid = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(tid, 1, 100);
  Commit(tid);  // COMMIT sits in the open buffer, not yet durable
  TxId flooder = Begin(SecondsToSimTime(100));
  for (int i = 0; i < 300 && kills_.killed.empty(); ++i) {
    manager_->WriteUpdate(flooder, i, 100);
  }
  ASSERT_FALSE(kills_.killed.empty());
  EXPECT_EQ(kills_.killed[0], flooder);
  sim_.Run();
  EXPECT_TRUE(IsCommitted(tid));  // the committing transaction lands
  EXPECT_EQ(manager_->unsafe_committing_kills(), 0);
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, DiscardAccountingCountsGarbageOnly) {
  Build(TwoGenOptions(4, 6));
  // Short transactions whose records become garbage before head advance.
  for (int round = 0; round < 30; ++round) {
    TxId tid = Begin();
    manager_->WriteUpdate(tid, round, 100);
    Commit(tid);
    manager_->ForceWriteOpenBuffers();
    sim_.Run();
  }
  EXPECT_EQ(manager_->ltt_size(), 0u);
  // Head advances discarded the garbage copies.
  EXPECT_GT(manager_->records_discarded(), 0);
  manager_->CheckInvariants();
}

TEST_F(ElManagerTest, InvariantsHoldThroughMixedWorkload) {
  Build(TwoGenOptions(5, 5));
  Rng rng(17);
  std::vector<TxId> open;
  for (int step = 0; step < 2000; ++step) {
    double draw = rng.NextDouble();
    if (open.empty() || draw < 0.3) {
      open.push_back(Begin(SecondsToSimTime(1 + rng.NextBounded(20))));
    } else if (draw < 0.8) {
      TxId tid = open[rng.NextBounded(open.size())];
      manager_->WriteUpdate(tid, rng.NextBounded(kObjects), 100);
    } else {
      size_t index = rng.NextBounded(open.size());
      TxId tid = open[index];
      open.erase(open.begin() + index);
      if (draw < 0.9) {
        Commit(tid);
      } else {
        manager_->Abort(tid);
      }
    }
    // Kills may remove transactions behind our back; drop them.
    for (TxId killed : kills_.killed) {
      for (auto it = open.begin(); it != open.end(); ++it) {
        if (*it == killed) {
          open.erase(it);
          break;
        }
      }
    }
    kills_.killed.clear();
    if (step % 50 == 0) {
      sim_.RunUntil(sim_.Now() + 10 * kMillisecond);
      manager_->CheckInvariants();
    }
  }
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  manager_->CheckInvariants();
}

}  // namespace
}  // namespace elog
