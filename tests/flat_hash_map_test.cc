// FlatHashMap against its behavioral oracle (ChainedHashMap): a
// randomized differential fuzz over mixed Find/Insert/Erase/ForEach
// traffic, plus directed tests for the open-addressing edge cases the
// fuzz is unlikely to hit head-on — growth boundaries, erase inside a
// probe chain, tombstone reversion, pointer stability across Erase, and
// degenerate keys (0, UINT64_MAX, all-colliding).

#include "util/flat_hash_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "util/chained_hash_map.h"
#include "util/random.h"

namespace elog {
namespace {

TEST(FlatHashMapTest, InsertFindEraseBasics) {
  FlatHashMap<uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);

  auto [v, inserted] = map.Insert(7, 70);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 70);
  EXPECT_EQ(map.size(), 1u);

  auto [v2, inserted2] = map.Insert(7, 71);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 70);  // existing value untouched
  EXPECT_EQ(map.size(), 1u);

  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 70);
  EXPECT_TRUE(map.Contains(7));

  EXPECT_TRUE(map.Erase(7));
  EXPECT_FALSE(map.Erase(7));
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(FlatHashMapTest, DegenerateKeys) {
  FlatHashMap<uint64_t, uint64_t> map;
  const uint64_t keys[] = {0, 1, UINT64_MAX, UINT64_MAX - 1,
                           uint64_t{1} << 63};
  for (uint64_t k : keys) EXPECT_TRUE(map.Insert(k, ~k).second);
  for (uint64_t k : keys) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), ~k);
  }
  for (uint64_t k : keys) EXPECT_TRUE(map.Erase(k));
  EXPECT_TRUE(map.empty());
}

TEST(FlatHashMapTest, GrowthAcrossBoundaries) {
  // Walk the size straight through several doublings; every key inserted
  // so far must stay findable with its value after each rehash.
  FlatHashMap<uint64_t, uint64_t> map;
  constexpr uint64_t kN = 10'000;
  for (uint64_t i = 0; i < kN; ++i) {
    map.Insert(i * 0x9E3779B97F4A7C15ull, i);
    if ((i & (i - 1)) == 0) {  // powers of two: cheap full re-check
      for (uint64_t j = 0; j <= i; ++j) {
        auto* v = map.Find(j * 0x9E3779B97F4A7C15ull);
        ASSERT_NE(v, nullptr) << "lost key " << j << " at size " << i;
        ASSERT_EQ(*v, j);
      }
    }
  }
  EXPECT_EQ(map.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_NE(map.Find(i * 0x9E3779B97F4A7C15ull), nullptr);
  }
}

/// Hash functor that sends every key to one group, forcing maximal probe
/// chains (the worst case for deletion correctness).
struct CollidingHash {
  size_t operator()(uint64_t) const { return 12345; }
};

TEST(FlatHashMapTest, EraseInsideProbeChainAllColliding) {
  // With every key colliding, entries string out across consecutive
  // groups. Erasing from the middle must not cut off lookups of keys
  // probed past the erased slot (the tombstone rule).
  FlatHashMap<uint64_t, uint64_t, CollidingHash> map;
  constexpr uint64_t kN = 200;
  for (uint64_t i = 0; i < kN; ++i) map.Insert(i, i);
  // Erase every third key, then verify the survivors.
  for (uint64_t i = 0; i < kN; i += 3) EXPECT_TRUE(map.Erase(i));
  for (uint64_t i = 0; i < kN; ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(map.Find(i), nullptr) << i;
    } else {
      ASSERT_NE(map.Find(i), nullptr) << i;
      EXPECT_EQ(*map.Find(i), i);
    }
  }
  // Refill the holes: reuses tombstoned slots rather than growing.
  const size_t capacity_before = map.bucket_count();
  for (uint64_t i = 0; i < kN; i += 3) map.Insert(i, i + 1000);
  EXPECT_EQ(map.bucket_count(), capacity_before);
  for (uint64_t i = 0; i < kN; i += 3) EXPECT_EQ(*map.Find(i), i + 1000);
}

TEST(FlatHashMapTest, EraseRevertsToEmptyWhenGroupHasEmpties) {
  // A lone key in an otherwise empty map: its group still holds empty
  // tags, so Erase must revert the slot to empty, not leave a tombstone.
  FlatHashMap<uint64_t, int> map;
  map.Insert(42, 1);
  EXPECT_TRUE(map.Erase(42));
  EXPECT_EQ(map.tombstones(), 0u);
}

TEST(FlatHashMapTest, PointerStabilityAcrossErase) {
  // The manager contract: pointers returned by Find/Insert stay valid
  // across Erase of *other* keys (only a rehashing Insert invalidates).
  FlatHashMap<uint64_t, uint64_t> map;
  constexpr uint64_t kN = 1000;
  map.Reserve(kN);
  std::vector<uint64_t*> ptrs;
  for (uint64_t i = 0; i < kN; ++i) {
    ptrs.push_back(map.Insert(i, i * 7).first);
  }
  const size_t capacity = map.bucket_count();
  for (uint64_t i = 0; i < kN; i += 2) map.Erase(i);
  EXPECT_EQ(map.bucket_count(), capacity);  // Erase never rehashes
  for (uint64_t i = 1; i < kN; i += 2) {
    EXPECT_EQ(*ptrs[i], i * 7) << "pointer invalidated by Erase";
    EXPECT_EQ(map.Find(i), ptrs[i]);
  }
}

TEST(FlatHashMapTest, ReserveAvoidsRehash) {
  FlatHashMap<uint64_t, uint64_t> map;
  map.Reserve(5000);
  const size_t capacity = map.bucket_count();
  std::vector<uint64_t*> ptrs;
  for (uint64_t i = 0; i < 5000; ++i) {
    ptrs.push_back(map.Insert(i, i).first);
  }
  EXPECT_EQ(map.bucket_count(), capacity);
  for (uint64_t i = 0; i < 5000; ++i) EXPECT_EQ(*ptrs[i], i);
}

TEST(FlatHashMapTest, ForEachVisitsEveryEntryOnce) {
  FlatHashMap<uint64_t, uint64_t> map;
  for (uint64_t i = 0; i < 500; ++i) map.Insert(i, i + 1);
  for (uint64_t i = 0; i < 500; i += 5) map.Erase(i);
  std::map<uint64_t, uint64_t> seen;
  map.ForEach([&](uint64_t k, uint64_t& v) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate visit of " << k;
  });
  EXPECT_EQ(seen.size(), map.size());
  for (const auto& [k, v] : seen) {
    EXPECT_NE(k % 5, 0u);
    EXPECT_EQ(v, k + 1);
  }
}

TEST(FlatHashMapTest, MoveOnlyValues) {
  struct MoveOnly {
    explicit MoveOnly(int x) : value(x) {}
    MoveOnly(MoveOnly&&) noexcept = default;
    MoveOnly& operator=(MoveOnly&&) noexcept = default;
    MoveOnly(const MoveOnly&) = delete;
    int value;
  };
  FlatHashMap<uint64_t, MoveOnly> map;
  for (uint64_t i = 0; i < 100; ++i) map.Insert(i, MoveOnly(int(i)));
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_NE(map.Find(i), nullptr);
    EXPECT_EQ(map.Find(i)->value, int(i));
  }
  for (uint64_t i = 0; i < 100; i += 2) EXPECT_TRUE(map.Erase(i));
  EXPECT_EQ(map.size(), 50u);
}

/// The tentpole's correctness argument: a long random schedule of mixed
/// operations applied in lockstep to FlatHashMap and the chained oracle,
/// with identical results demanded at every step. Keys are drawn from a
/// small universe so inserts collide with erased keys constantly,
/// exercising tombstone reuse; a second pass uses a colliding hash.
template <typename FlatHashT, typename ChainedHashT>
void RunDifferentialFuzz(uint64_t seed, uint64_t universe, int ops) {
  FlatHashMap<uint64_t, uint64_t, FlatHashT> flat;
  ChainedHashMap<uint64_t, uint64_t, ChainedHashT> oracle;
  Rng rng(seed);
  for (int op = 0; op < ops; ++op) {
    const uint64_t key = rng.NextBounded(universe);
    switch (rng.NextBounded(4)) {
      case 0:    // Insert
      case 1: {  // (twice as likely, so the tables stay populated)
        const uint64_t value = rng.NextUint64();
        auto [fv, fnew] = flat.Insert(key, value);
        auto [ov, onew] = oracle.Insert(key, value);
        ASSERT_EQ(fnew, onew) << "op " << op << " key " << key;
        ASSERT_EQ(*fv, *ov);
        break;
      }
      case 2: {  // Erase
        ASSERT_EQ(flat.Erase(key), oracle.Erase(key))
            << "op " << op << " key " << key;
        break;
      }
      case 3: {  // Find
        uint64_t* fv = flat.Find(key);
        uint64_t* ov = oracle.Find(key);
        ASSERT_EQ(fv == nullptr, ov == nullptr)
            << "op " << op << " key " << key;
        if (fv != nullptr) ASSERT_EQ(*fv, *ov);
        break;
      }
    }
    ASSERT_EQ(flat.size(), oracle.size()) << "op " << op;
  }
  // Final sweep: identical contents, both directions.
  size_t visited = 0;
  flat.ForEach([&](uint64_t k, uint64_t& v) {
    ++visited;
    uint64_t* ov = oracle.Find(k);
    ASSERT_NE(ov, nullptr) << k;
    ASSERT_EQ(v, *ov);
  });
  ASSERT_EQ(visited, oracle.size());
}

TEST(FlatHashMapDifferentialTest, MixedOpsSmallUniverse) {
  RunDifferentialFuzz<std::hash<uint64_t>, std::hash<uint64_t>>(
      /*seed=*/1, /*universe=*/512, /*ops=*/200'000);
}

TEST(FlatHashMapDifferentialTest, MixedOpsLargeUniverse) {
  RunDifferentialFuzz<std::hash<uint64_t>, std::hash<uint64_t>>(
      /*seed=*/2, /*universe=*/1'000'000, /*ops=*/1'000'000);
}

TEST(FlatHashMapDifferentialTest, MixedOpsAllColliding) {
  RunDifferentialFuzz<CollidingHash, CollidingHash>(
      /*seed=*/3, /*universe=*/64, /*ops=*/50'000);
}

TEST(FlatHashMapDifferentialTest, MixedOpsSeveralSeeds) {
  for (uint64_t seed = 10; seed < 16; ++seed) {
    RunDifferentialFuzz<std::hash<uint64_t>, std::hash<uint64_t>>(
        seed, /*universe=*/4096, /*ops=*/50'000);
  }
}

TEST(FlatHashMapTest, MemoryBytesTracksCapacity) {
  FlatHashMap<uint64_t, uint64_t> map;
  const size_t initial = map.MemoryBytes();
  EXPECT_GT(initial, 0u);
  map.Reserve(100'000);
  EXPECT_GT(map.MemoryBytes(), initial);
  // Bytes/slot is the slot itself plus one tag byte.
  EXPECT_EQ(map.MemoryBytes(),
            map.bucket_count() * (sizeof(uint64_t) * 2 + 1));
}

}  // namespace
}  // namespace elog
