// Additional hybrid-manager edge cases: residence-following appends,
// marker integrity across migrations, commit-window protection, and
// memory-gauge behavior.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/hybrid_manager.h"

namespace elog {
namespace {

class RecordingKillListener : public KillListener {
 public:
  void OnTransactionKilled(TxId tid) override { killed.push_back(tid); }
  std::vector<TxId> killed;
};

class HybridEdgeTest : public ::testing::Test {
 protected:
  void Build(LogManagerOptions options) {
    options.num_objects = 1000;
    storage_ = std::make_unique<disk::LogStorage>(options.generation_blocks);
    device_ = std::make_unique<disk::LogDevice>(
        &sim_, storage_.get(), options.log_write_latency, nullptr);
    drives_ = std::make_unique<disk::DriveArray>(
        &sim_, options.num_flush_drives, options.num_objects,
        options.flush_transfer_time, nullptr);
    manager_ = std::make_unique<HybridLogManager>(
        &sim_, options, device_.get(), drives_.get(), nullptr);
    manager_->set_kill_listener(&kills_);
  }

  TxId Begin(SimTime lifetime = SecondsToSimTime(1)) {
    workload::TransactionType type;
    type.lifetime = lifetime;
    return manager_->BeginTransaction(type);
  }

  void Churn(int rounds) {
    for (int round = 0; round < rounds; ++round) {
      TxId tid = Begin();
      manager_->WriteUpdate(tid, round % 900, 100);
      manager_->Commit(tid, [](TxId) {});
      manager_->ForceWriteOpenBuffers();
      sim_.Run();
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<disk::LogStorage> storage_;
  std::unique_ptr<disk::LogDevice> device_;
  std::unique_ptr<disk::DriveArray> drives_;
  std::unique_ptr<HybridLogManager> manager_;
  RecordingKillListener kills_;
};

TEST_F(HybridEdgeTest, PostMigrationWritesFollowResidence) {
  LogManagerOptions options;
  options.generation_blocks = {4, 16};
  Build(options);
  TxId keeper = Begin(SecondsToSimTime(1000));
  manager_->WriteUpdate(keeper, 990, 100);
  // Churn until the keeper migrates to generation 1.
  int64_t before = manager_->migrations();
  Churn(30);
  ASSERT_GT(manager_->migrations(), before);
  // New records of the keeper must land in generation 1 directly.
  int64_t gen1_writes_before = device_->writes_completed(1);
  for (int i = 0; i < 30; ++i) manager_->WriteUpdate(keeper, 900 + i, 100);
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  EXPECT_GT(device_->writes_completed(1), gen1_writes_before);
  EXPECT_TRUE(kills_.killed.empty());
  manager_->CheckInvariants();
}

TEST_F(HybridEdgeTest, CommittingTransactionNotAVictim) {
  LogManagerOptions options;
  options.generation_blocks = {6};
  options.recirculation = true;
  Build(options);
  TxId tid = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(tid, 1, 100);
  bool acked = false;
  manager_->Commit(tid, [&](TxId) { acked = true; });
  TxId flooder = Begin(SecondsToSimTime(100));
  for (int i = 0; i < 300 && kills_.killed.empty(); ++i) {
    manager_->WriteUpdate(flooder, i % 900, 100);
  }
  ASSERT_FALSE(kills_.killed.empty());
  EXPECT_EQ(kills_.killed[0], flooder);
  sim_.Run();
  EXPECT_TRUE(acked);
  EXPECT_EQ(manager_->unsafe_committing_kills(), 0);
  manager_->CheckInvariants();
}

TEST_F(HybridEdgeTest, MemoryGaugeFollowsTableSize) {
  LogManagerOptions options;
  options.generation_blocks = {18, 18};
  Build(options);
  EXPECT_DOUBLE_EQ(manager_->modeled_memory_bytes(), 0.0);
  TxId a = Begin();
  TxId b = Begin();
  EXPECT_DOUBLE_EQ(manager_->modeled_memory_bytes(), 80.0);
  manager_->Abort(a);
  EXPECT_DOUBLE_EQ(manager_->modeled_memory_bytes(), 40.0);
  manager_->Commit(b, [](TxId) {});
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  EXPECT_DOUBLE_EQ(manager_->modeled_memory_bytes(), 0.0);
  EXPECT_EQ(manager_->memory_usage().peak(), 80.0);
}

TEST_F(HybridEdgeTest, ZeroUpdateCommitReleasesImmediately) {
  LogManagerOptions options;
  options.generation_blocks = {6, 6};
  Build(options);
  TxId tid = Begin();
  bool acked = false;
  manager_->Commit(tid, [&](TxId) { acked = true; });
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  EXPECT_TRUE(acked);
  EXPECT_EQ(manager_->table_size(), 0u);
  manager_->CheckInvariants();
}

TEST_F(HybridEdgeTest, UnknownTidChecks) {
  LogManagerOptions options;
  options.generation_blocks = {6, 6};
  Build(options);
  EXPECT_DEATH(manager_->WriteUpdate(77, 1, 100), "unknown tid");
  EXPECT_DEATH(manager_->Commit(77, [](TxId) {}), "unknown tid");
  EXPECT_DEATH(manager_->Abort(77), "unknown tid");
}

TEST_F(HybridEdgeTest, DiscardedGarbageAccounted) {
  LogManagerOptions options;
  options.generation_blocks = {5, 6};
  Build(options);
  Churn(40);
  // Committed-and-flushed records became garbage and were discarded as
  // heads advanced through the tiny generation 0.
  EXPECT_GT(manager_->records_appended(), 100);
  EXPECT_TRUE(kills_.killed.empty());
  manager_->CheckInvariants();
}

TEST_F(HybridEdgeTest, WholeTransactionBandwidthScalesWithRecordCount) {
  // Regeneration cost is proportional to the transaction's record count:
  // a 12-update transaction's migration rewrites >= 13 records.
  LogManagerOptions options;
  options.generation_blocks = {4, 20};
  Build(options);
  TxId wide = Begin(SecondsToSimTime(1000));
  for (int i = 0; i < 12; ++i) manager_->WriteUpdate(wide, 900 + i, 100);
  int64_t regenerated_before = manager_->records_regenerated();
  int64_t migrations_before = manager_->migrations();
  Churn(30);
  ASSERT_GT(manager_->migrations(), migrations_before);
  EXPECT_GE(manager_->records_regenerated() - regenerated_before, 13);
  manager_->CheckInvariants();
}

}  // namespace
}  // namespace elog
