// Database facade edge cases: crash capture semantics, drain behavior,
// single-use contract, torn-write capture.

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/recovery.h"

namespace elog {
namespace db {
namespace {

DatabaseConfig BaseConfig(SimTime runtime) {
  DatabaseConfig config;
  config.workload = workload::PaperMix(0.05);
  config.workload.runtime = runtime;
  config.log.generation_blocks = {18, 12};
  return config;
}

TEST(DatabaseEdgeTest, RunIsSingleUse) {
  Database database(BaseConfig(SecondsToSimTime(1)));
  database.Run();
  EXPECT_DEATH(database.Run(), "once");
}

TEST(DatabaseEdgeTest, CrashAtTimeZeroIsEmpty) {
  Database database(BaseConfig(SecondsToSimTime(60)));
  Database::CrashImage image = database.RunUntilCrash(0, true);
  EXPECT_TRUE(image.expected_state.empty());
  EXPECT_TRUE(image.committed_tids.empty());
  RecoveryResult result = RecoveryManager::Recover(image.log, image.stable);
  EXPECT_TRUE(result.state.empty());
  EXPECT_EQ(result.scan.blocks_empty, result.scan.blocks_scanned);
}

TEST(DatabaseEdgeTest, CrashBeforeFirstCommitRecoversNothing) {
  Database database(BaseConfig(SecondsToSimTime(60)));
  // First commits become durable around 1.06 s; crash before that but
  // after the first blocks have been written (~0.6 s — the startup ramp
  // is slower than steady state because data records only begin at
  // t0 + (T−ε)/N).
  Database::CrashImage image =
      database.RunUntilCrash(900 * kMillisecond, false);
  EXPECT_TRUE(image.committed_tids.empty());
  RecoveryResult result = RecoveryManager::Recover(image.log, image.stable);
  EXPECT_TRUE(result.state.empty());
  // But the log does contain (uncommitted) records already.
  EXPECT_GT(result.uncommitted_records_ignored, 0u);
}

TEST(DatabaseEdgeTest, TornWriteCapturedWhenInFlight) {
  // At a crash instant chosen mid-write (writes start on ~88 ms grid and
  // take 15 ms), the torn image must contain at least one corrupt block.
  // Probe offsets across a full ~88 ms block-fill period; log writes
  // take 15 ms, so several probes must land inside a write window.
  bool observed_torn = false;
  for (SimTime offset = 0; offset < 90 && !observed_torn; offset += 5) {
    Database probe(BaseConfig(SecondsToSimTime(3600)));
    Database::CrashImage image = probe.RunUntilCrash(
        SecondsToSimTime(10) + offset * kMillisecond, true);
    RecoveryResult result =
        RecoveryManager::Recover(image.log, image.stable);
    if (result.scan.blocks_corrupt > 0) observed_torn = true;
  }
  EXPECT_TRUE(observed_torn);
}

TEST(DatabaseEdgeTest, DrainCompletesAllTransactions) {
  // Even with arrivals ending mid-flight, the drain acknowledges every
  // in-flight commit; nothing remains active.
  DatabaseConfig config = BaseConfig(SecondsToSimTime(12));
  Database database(config);
  RunStats stats = database.Run();
  EXPECT_EQ(database.generator().active(), 0u);
  EXPECT_EQ(stats.total_started, stats.total_committed + stats.total_killed);
  // The manager's tables also empty out once flushing finishes.
  EXPECT_EQ(database.manager().ltt_size(), 0u);
  EXPECT_EQ(database.manager().lot_size(), 0u);
}

TEST(DatabaseEdgeTest, WindowMetricsExcludeDrain) {
  // Bandwidth is measured over [0, runtime]; the drain's forced writes
  // must not inflate it.
  DatabaseConfig config = BaseConfig(SecondsToSimTime(30));
  Database database(config);
  RunStats stats = database.Run();
  // ~12.9 writes/s at this mix; a drain-polluted number would exceed 14.
  EXPECT_LT(stats.log_writes_per_sec, 14.0);
  EXPECT_GT(stats.log_writes_per_sec, 11.0);
}

TEST(DatabaseEdgeTest, MetricsRegistryPopulated) {
  DatabaseConfig config = BaseConfig(SecondsToSimTime(5));
  Database database(config);
  database.Run();
  EXPECT_GT(database.metrics().GetCounter("workload.started")->value(), 0);
  EXPECT_GT(database.metrics().GetCounter("log_device.writes")->value(), 0);
  EXPECT_GT(database.metrics().GetCounter("flush_drive.flushes")->value(), 0);
}

TEST(DatabaseEdgeTest, CommittedTidsMatchGeneratorCount) {
  DatabaseConfig config = BaseConfig(SecondsToSimTime(20));
  Database database(config);
  Database::CrashImage image =
      database.RunUntilCrash(SecondsToSimTime(15), false);
  EXPECT_EQ(static_cast<int64_t>(image.committed_tids.size()),
            database.generator().committed());
}

}  // namespace
}  // namespace db
}  // namespace elog
