#include "disk/drive_array.h"

#include <gtest/gtest.h>

#include <vector>

#include "health/drive_health.h"

namespace elog {
namespace disk {
namespace {

constexpr SimTime kTransfer = 25 * kMillisecond;

class DriveArrayTest : public ::testing::Test {
 protected:
  DriveArrayTest() : drives_(&sim_, 10, 10000, kTransfer, &metrics_) {}

  FlushRequest Request(Oid oid) {
    FlushRequest request;
    request.oid = oid;
    request.lsn = 1;
    request.on_durable = [this](const FlushRequest& r) {
      serviced_.push_back(r.oid);
    };
    return request;
  }

  sim::Simulator sim_;
  sim::MetricsRegistry metrics_;
  DriveArray drives_;
  std::vector<Oid> serviced_;
};

TEST_F(DriveArrayTest, RangePartitioning) {
  // 10 drives over 10000 objects: drive i owns [1000i, 1000(i+1)).
  EXPECT_EQ(drives_.num_drives(), 10u);
  EXPECT_EQ(drives_.drive(0).range_begin(), 0u);
  EXPECT_EQ(drives_.drive(0).range_end(), 1000u);
  EXPECT_EQ(drives_.drive(9).range_begin(), 9000u);
  EXPECT_EQ(drives_.drive(9).range_end(), 10000u);
}

TEST_F(DriveArrayTest, RoutesToOwningDrive) {
  drives_.Enqueue(Request(0));
  drives_.Enqueue(Request(999));
  drives_.Enqueue(Request(1000));
  drives_.Enqueue(Request(9999));
  sim_.Run();
  EXPECT_EQ(drives_.drive(0).flushes_completed(), 2);
  EXPECT_EQ(drives_.drive(1).flushes_completed(), 1);
  EXPECT_EQ(drives_.drive(9).flushes_completed(), 1);
  EXPECT_EQ(drives_.total_flushes_completed(), 4);
}

TEST_F(DriveArrayTest, DrivesWorkInParallel) {
  // One request per drive: all complete after a single transfer time.
  for (uint32_t i = 0; i < 10; ++i) {
    drives_.Enqueue(Request(i * 1000 + 5));
  }
  sim_.Run();
  EXPECT_EQ(serviced_.size(), 10u);
  EXPECT_EQ(sim_.Now(), kTransfer);
}

TEST_F(DriveArrayTest, MaxFlushRate) {
  // 10 drives at 25 ms -> 400 flushes/s (the paper's provisioning).
  EXPECT_DOUBLE_EQ(drives_.MaxFlushRate(), 400.0);
}

TEST_F(DriveArrayTest, TotalPendingAggregates) {
  for (int i = 0; i < 5; ++i) drives_.Enqueue(Request(1));  // same drive
  // One is in service; four pending.
  EXPECT_EQ(drives_.total_pending(), 4u);
  sim_.Run();
  EXPECT_EQ(drives_.total_pending(), 0u);
}

TEST_F(DriveArrayTest, MeanSeekDistanceAggregates) {
  drives_.Enqueue(Request(100));  // drive 0: 0 -> 100
  drives_.Enqueue(Request(1300));  // drive 1: 1000 -> 1300
  sim_.Run();
  EXPECT_DOUBLE_EQ(drives_.MeanSeekDistance(), 200.0);
}

TEST_F(DriveArrayTest, UrgentRouting) {
  drives_.EnqueueUrgent(Request(4321));
  sim_.Run();
  EXPECT_EQ(drives_.drive(4).flushes_completed(), 1);
}

TEST(DriveArrayValidationTest, NonDivisibleObjectsRejected) {
  sim::Simulator sim;
  EXPECT_DEATH(DriveArray(&sim, 3, 10, kTransfer, nullptr), "multiple");
}

TEST(DriveArrayValidationTest, OidBeyondRangeChecks) {
  sim::Simulator sim;
  DriveArray drives(&sim, 2, 100, kTransfer, nullptr);
  FlushRequest request;
  request.oid = 100;
  EXPECT_DEATH(drives.Enqueue(std::move(request)), "");
}

TEST_F(DriveArrayTest, QuarantinedDriveRedirectsPlacement) {
  health::HealthOptions options;
  options.enabled = true;
  health::DriveHealthMonitor monitor(&sim_, options, &metrics_);
  drives_.AttachHealth(&monitor);
  // Healthy fleet: placement is the plain range partition, no redirects.
  drives_.Enqueue(Request(5));
  sim_.Run();
  EXPECT_EQ(drives_.redirects(), 0);
  EXPECT_EQ(drives_.drive(0).flushes_completed(), 1);
  // Quarantine drive 0 (monitor handle 0: AttachHealth registers drives
  // in stripe order): its oids land on the next healthy drive.
  monitor.ForceQuarantine(0);
  drives_.Enqueue(Request(5));
  drives_.Enqueue(Request(999));
  drives_.Enqueue(Request(1000));  // drive 1's own oid: not a redirect
  sim_.Run();
  EXPECT_EQ(drives_.redirects(), 2);
  EXPECT_EQ(drives_.drive(0).flushes_completed(), 1);  // unchanged
  EXPECT_EQ(drives_.drive(1).flushes_completed(), 3);
  EXPECT_EQ(metrics_.GetCounter("flush_drive.redirects")->value(), 2);
}

TEST_F(DriveArrayTest, FullyQuarantinedFleetFallsBackToHomeDrive) {
  health::HealthOptions options;
  options.enabled = true;
  health::DriveHealthMonitor monitor(&sim_, options, &metrics_);
  drives_.AttachHealth(&monitor);
  for (int i = 0; i < 10; ++i) monitor.ForceQuarantine(i);
  // A slow write still beats no write: the home drive takes it.
  drives_.Enqueue(Request(5));
  sim_.Run();
  EXPECT_EQ(drives_.drive(0).flushes_completed(), 1);
  EXPECT_EQ(drives_.redirects(), 0);
}

}  // namespace
}  // namespace disk
}  // namespace elog
