#include "util/string_util.h"

#include <gtest/gtest.h>

namespace elog {
namespace {

TEST(StrFormatTest, BasicFormatting) {
  EXPECT_EQ(StrFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_str(500, 'x');
  EXPECT_EQ(StrFormat("%s!", long_str.c_str()), long_str + "!");
}

TEST(StrSplitTest, BasicSplit) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrSplitTest, KeepsEmptyFields) {
  auto parts = StrSplit(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(StrSplitTest, NoDelimiter) {
  auto parts = StrSplit("solo", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "solo");
}

TEST(StrSplitTest, EmptyInput) {
  auto parts = StrSplit("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StrJoinTest, RoundTripWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, ","), "x,y,z");
  EXPECT_EQ(StrSplit(StrJoin(parts, ","), ','), parts);
}

TEST(StrJoinTest, EmptyAndSingle) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"one"}, ","), "one");
}

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(1536), "1.5 KB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.5 MB");
  EXPECT_EQ(HumanBytes(2.0 * 1024 * 1024 * 1024), "2.0 GB");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
  EXPECT_TRUE(StartsWith("exact", "exact"));
}

}  // namespace
}  // namespace elog
