// Log-device stress: bursts far beyond the steady-state load, slot reuse
// under queueing, and FIFO durability ordering at scale.

#include <gtest/gtest.h>

#include <vector>

#include "disk/log_device.h"
#include "util/random.h"

namespace elog {
namespace disk {
namespace {

constexpr SimTime kLatency = 15 * kMillisecond;

TEST(LogDeviceStressTest, BurstOfHundredsSerializesFifo) {
  sim::Simulator sim;
  LogStorage storage({64});
  LogDevice device(&sim, &storage, kLatency, nullptr);
  std::vector<int> completions;
  Rng rng(3);
  constexpr int kWrites = 500;
  for (int i = 0; i < kWrites; ++i) {
    uint32_t slot = static_cast<uint32_t>(rng.NextBounded(64));
    device.Submit({{0, slot},
                   wal::EncodeBlock(0, static_cast<uint64_t>(i), {}),
                   [&completions, i](const Status&) { completions.push_back(i); }});
  }
  sim.Run();
  ASSERT_EQ(completions.size(), static_cast<size_t>(kWrites));
  for (int i = 0; i < kWrites; ++i) EXPECT_EQ(completions[i], i);
  // Total service time: strictly serialized.
  EXPECT_EQ(sim.Now(), kWrites * kLatency);
  EXPECT_EQ(device.writes_completed(), kWrites);
}

TEST(LogDeviceStressTest, SlotReuseKeepsLastWriteVisible) {
  sim::Simulator sim;
  LogStorage storage({4});
  LogDevice device(&sim, &storage, kLatency, nullptr);
  // Write every slot many times; the final content of each slot must be
  // the last submitted sequence number for it.
  std::vector<uint64_t> last_seq(4, 0);
  Rng rng(11);
  for (uint64_t seq = 1; seq <= 200; ++seq) {
    uint32_t slot = static_cast<uint32_t>(rng.NextBounded(4));
    last_seq[slot] = seq;
    device.Submit({{0, slot}, wal::EncodeBlock(0, seq, {}), nullptr});
  }
  sim.Run();
  for (uint32_t slot = 0; slot < 4; ++slot) {
    if (last_seq[slot] == 0) continue;
    auto decoded = wal::DecodeBlock(*storage.Get({0, slot}));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->write_seq, last_seq[slot]) << "slot " << slot;
  }
}

TEST(LogDeviceStressTest, InterleavedSubmissionFromCompletions) {
  // Completions that submit further writes (the log manager's pattern)
  // must preserve global FIFO order and never starve.
  sim::Simulator sim;
  LogStorage storage({8});
  LogDevice device(&sim, &storage, kLatency, nullptr);
  int chain = 0;
  std::function<void(const Status&)> next = [&](const Status&) {
    if (++chain >= 50) return;
    device.Submit({{0, static_cast<uint32_t>(chain % 8)},
                   wal::EncodeBlock(0, static_cast<uint64_t>(chain), {}),
                   next});
  };
  device.Submit({{0, 0}, wal::EncodeBlock(0, 0, {}), next});
  sim.Run();
  EXPECT_EQ(chain, 50);
  EXPECT_EQ(device.writes_completed(), 50);
  EXPECT_EQ(sim.Now(), 50 * kLatency);
}

}  // namespace
}  // namespace disk
}  // namespace elog
