// Parameterized workload-statistics properties: measured update rates and
// concurrency match the analytic expectations (ExpectedUpdateRate,
// Little's law) across mixes, rates, and arrival processes.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/simulator.h"
#include "workload/generator.h"

namespace elog {
namespace workload {
namespace {

struct WorkloadCase {
  double long_fraction;
  double tps;
  ArrivalProcess process;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<WorkloadCase>& info) {
  return std::string(info.param.process == ArrivalProcess::kPoisson
                         ? "poisson"
                         : "det") +
         "_mix" + std::to_string(static_cast<int>(
                      info.param.long_fraction * 100)) +
         "_tps" + std::to_string(static_cast<int>(info.param.tps)) + "_s" +
         std::to_string(info.param.seed);
}

/// Sink that acknowledges commits after a fixed 10 ms and counts traffic.
class CountingSink : public TransactionSink {
 public:
  explicit CountingSink(sim::Simulator* simulator) : simulator_(simulator) {}

  TxId BeginTransaction(const TransactionType&) override {
    return next_tid_++;
  }
  void WriteUpdate(TxId, Oid, uint32_t logged_size) override {
    ++updates_;
    bytes_ += logged_size;
  }
  void Commit(TxId tid, CommitCallback on_durable) override {
    // Boxed: a CommitCallback is larger than an event's inline slot.
    simulator_->ScheduleAfter(
        10 * kMillisecond,
        [tid, cb = std::make_unique<CommitCallback>(std::move(on_durable))] {
          (*cb)(tid);
        });
  }
  void Abort(TxId) override {}

  sim::Simulator* simulator_;
  TxId next_tid_ = 1;
  int64_t updates_ = 0;
  int64_t bytes_ = 0;
};

class WorkloadPropertyTest : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadPropertyTest, RatesMatchAnalyticExpectations) {
  const WorkloadCase& c = GetParam();
  WorkloadSpec spec = PaperMix(c.long_fraction);
  spec.arrival_rate_tps = c.tps;
  spec.arrival_process = c.process;
  spec.runtime = SecondsToSimTime(120);
  spec.seed = c.seed;

  sim::Simulator sim;
  CountingSink sink(&sim);
  WorkloadGenerator generator(&sim, spec, &sink, nullptr);
  generator.Start();

  // Mid-run concurrency: Little's law, sampled after warmup.
  sim.RunUntil(SecondsToSimTime(60));
  double expected_active = spec.ExpectedActiveTransactions();
  EXPECT_NEAR(generator.active(), expected_active, expected_active * 0.25)
      << "concurrency far from Little's law";

  sim.Run();
  // Started count: rate x runtime (Poisson within a few sigma).
  double expected_started = c.tps * 120;
  double tolerance = c.process == ArrivalProcess::kPoisson
                         ? 5 * std::sqrt(expected_started)
                         : 1.0;
  EXPECT_NEAR(generator.started(), expected_started, tolerance);

  // Update volume: rate x mean-updates-per-txn, minus the edge deficit
  // from transactions started near the end (bounded by one lifetime of
  // arrivals).
  double expected_updates = spec.ExpectedUpdateRate() * 120;
  EXPECT_LT(generator.updates_written(), expected_updates * 1.02);
  EXPECT_GT(generator.updates_written(), expected_updates * 0.85);

  // Everything begun eventually commits (no kills in a pure-sink world).
  EXPECT_EQ(generator.committed(), generator.started());
  EXPECT_EQ(generator.active(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadPropertyTest,
    ::testing::Values(
        WorkloadCase{0.05, 100, ArrivalProcess::kDeterministic, 1},
        WorkloadCase{0.40, 100, ArrivalProcess::kDeterministic, 1},
        WorkloadCase{0.20, 50, ArrivalProcess::kDeterministic, 9},
        WorkloadCase{0.05, 100, ArrivalProcess::kPoisson, 1},
        WorkloadCase{0.40, 200, ArrivalProcess::kPoisson, 5}),
    CaseName);

}  // namespace
}  // namespace workload
}  // namespace elog
