// Property test: random workload -> crash at a random point -> recover ->
// check against the shadow oracle, for every manager configuration (EL
// REDO, EL UNDO/REDO, FW, hybrid), with and without fault injection.
//
// Fast variant of the bench/torture sweep that runs under ctest; the
// heavyweight randomized sweep lives in bench/torture.cc.

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/recovery.h"
#include "db/recovery_check.h"
#include "runner/torture.h"
#include "workload/spec.h"

namespace elog {
namespace {

db::DatabaseConfig BaseConfig(uint64_t seed) {
  db::DatabaseConfig config;
  config.workload = workload::PaperMix(0.05);
  config.workload.runtime = SecondsToSimTime(3600);
  config.workload.seed = seed;
  config.log.generation_blocks = {18, 12};
  config.track_commit_history = true;
  return config;
}

// Faultless crash at a drawn time: the exact-durability oracle must hold.
void CheckFaultlessCrash(db::DatabaseConfig config, bool undo_redo,
                         bool expect_exact, SimTime crash_time) {
  fault::CrashSchedule schedule;
  schedule.time = crash_time;
  schedule.torn_write = true;
  db::Database database(config);
  db::Database::CrashImage image = database.RunUntilCrash(schedule);
  db::RecoveryResult result =
      db::RecoveryManager::Recover(image.log, image.stable);
  db::InvariantPolicy policy;
  policy.undo_redo = undo_redo;
  policy.expect_exact = expect_exact;
  policy.expect_no_phantoms = true;
  db::InvariantReport report =
      db::CheckRecoveryInvariants(image, result, policy);
  EXPECT_TRUE(report.ok()) << report.First();
}

TEST(RecoveryInvariantsTest, ElFaultlessCrashes) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    CheckFaultlessCrash(BaseConfig(seed), /*undo_redo=*/false,
                        /*expect_exact=*/true,
                        SimTime(500 + seed * 700) * kMillisecond);
  }
}

TEST(RecoveryInvariantsTest, ElUndoRedoFaultlessCrashes) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    db::DatabaseConfig config = BaseConfig(seed);
    config.log.generation_blocks = {18, 14};
    config.log.undo_redo = true;
    config.log.steal_interval = 20 * kMillisecond;
    CheckFaultlessCrash(config, /*undo_redo=*/true, /*expect_exact=*/true,
                        SimTime(500 + seed * 700) * kMillisecond);
  }
}

TEST(RecoveryInvariantsTest, FirewallFaultlessCrashes) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    db::DatabaseConfig config = BaseConfig(seed);
    config.log = MakeFirewallOptions(40, config.log);
    // FW releases data records at commit: recovery cannot rebuild the
    // state (the paper pairs FW with data elsewhere), but phantoms and
    // scan accounting must still hold.
    CheckFaultlessCrash(config, /*undo_redo=*/false, /*expect_exact=*/false,
                        SimTime(500 + seed * 700) * kMillisecond);
  }
}

TEST(RecoveryInvariantsTest, HybridFaultlessCrashes) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    db::DatabaseConfig config = BaseConfig(seed);
    config.manager = db::ManagerKind::kHybrid;
    fault::CrashSchedule schedule;
    schedule.time = SimTime(500 + seed * 700) * kMillisecond;
    schedule.torn_write = true;
    db::Database database(config);
    db::Database::CrashImage image = database.RunUntilCrash(schedule);
    db::RecoveryResult result =
        db::RecoveryManager::Recover(image.log, image.stable);
    db::InvariantPolicy policy;
    // A forced release opens the same bounded crash window as EL's
    // no-recirculation mode: exact durability is only promised without it.
    policy.expect_exact = database.hybrid_manager()->forced_releases() == 0;
    db::InvariantReport report =
        db::CheckRecoveryInvariants(image, result, policy);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.First();
  }
}

TEST(RecoveryInvariantsTest, EventCountCrashesHold) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    db::DatabaseConfig config = BaseConfig(100 + seed);
    fault::CrashSchedule schedule;
    schedule.time = 60 * kSecond;  // backstop
    schedule.event_count = 2000 * seed;
    schedule.torn_write = (seed % 2) == 0;
    db::Database database(config);
    db::Database::CrashImage image = database.RunUntilCrash(schedule);
    db::RecoveryResult result =
        db::RecoveryManager::Recover(image.log, image.stable);
    db::InvariantPolicy policy;
    db::InvariantReport report =
        db::CheckRecoveryInvariants(image, result, policy);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.First();
  }
}

// The full randomized trial (faults + random crash + derived policy) for
// each manager kind, via the torture harness itself.
TEST(RecoveryInvariantsTest, TortureTrialsAllManagers) {
  runner::TortureSpec spec;
  spec.trials = 4;
  spec.base_seed = 20260805;
  for (runner::TortureManager manager : runner::AllTortureManagers()) {
    for (int trial = 0; trial < spec.trials; ++trial) {
      runner::TortureTrial result =
          runner::RunTortureTrial(spec, manager, trial);
      EXPECT_TRUE(result.ok)
          << runner::TortureManagerName(manager) << " trial " << trial
          << " (seed " << result.seed << "): " << result.first_violation;
    }
  }
}

// Determinism: the same (spec, manager, index) triple replays to an
// identical trial record — the property the replay workflow relies on.
TEST(RecoveryInvariantsTest, TrialsReplayBitIdentically) {
  runner::TortureSpec spec;
  spec.trials = 1;
  spec.base_seed = 777;
  for (runner::TortureManager manager :
       {runner::TortureManager::kEphemeral, runner::TortureManager::kHybrid}) {
    runner::TortureTrial a = runner::RunTortureTrial(spec, manager, 0);
    runner::TortureTrial b = runner::RunTortureTrial(spec, manager, 0);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.crash_time, b.crash_time);
    EXPECT_EQ(a.crash_events, b.crash_events);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.killed, b.killed);
    EXPECT_EQ(a.log_write_retries, b.log_write_retries);
    EXPECT_EQ(a.bit_rot_writes, b.bit_rot_writes);
    EXPECT_EQ(a.records_recovered, b.records_recovered);
    EXPECT_EQ(a.first_violation, b.first_violation);
  }
}

}  // namespace
}  // namespace elog
