// Histogram quantiles against an exact sorted-sample oracle.
//
// util::Histogram buckets exponentially at 4 buckets per octave, so an
// interpolated Percentile() can be off from the exact order statistic by
// at most one bucket's width: a factor of 2^(1/4) ≈ 1.19. The tests
// here bound the approximation at 20% relative error across shapes that
// exercise different bucket populations (uniform, exponential tail,
// heavy point masses), plus the exact edge cases the bench relies on
// (empty, single value, p=0/100 clamping to min/max).

#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace elog {
namespace {

/// Nearest-rank quantile, matching Histogram::Percentile's "cumulative
/// count >= count * p / 100" rule on the exact sample.
double ExactPercentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  if (samples.empty()) return 0.0;
  if (p <= 0.0) return samples.front();
  if (p >= 100.0) return samples.back();
  const double target = static_cast<double>(samples.size()) * p / 100.0;
  size_t rank = static_cast<size_t>(std::ceil(target));
  if (rank == 0) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

void ExpectClose(const Histogram& hist, const std::vector<double>& samples,
                 double p) {
  const double exact = ExactPercentile(samples, p);
  const double approx = hist.Percentile(p);
  // One exponential bucket of slack plus an epsilon for tiny values.
  EXPECT_NEAR(approx, exact, 0.20 * std::abs(exact) + 1e-9)
      << "p=" << p << " exact=" << exact << " approx=" << approx;
}

TEST(HistogramQuantileTest, EmptyHistogramReturnsZero) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(99.9), 0.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(100.0), 0.0);
}

TEST(HistogramQuantileTest, SingleValueIsEveryQuantile) {
  Histogram hist;
  hist.Add(1234.5);
  for (double p : {0.0, 1.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(hist.Percentile(p), 1234.5) << "p=" << p;
  }
}

TEST(HistogramQuantileTest, ExtremesClampToMinAndMax) {
  Histogram hist;
  std::vector<double> samples = {3.0, 17.0, 170.0, 9000.0};
  for (double v : samples) hist.Add(v);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(100.0), 9000.0);
  // Interior quantiles never escape [min, max] either.
  for (double p = 1.0; p < 100.0; p += 7.0) {
    EXPECT_GE(hist.Percentile(p), 3.0);
    EXPECT_LE(hist.Percentile(p), 9000.0);
  }
}

TEST(HistogramQuantileTest, UniformSamplesMatchOracle) {
  Histogram hist;
  std::vector<double> samples;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = 1.0 + rng.NextDouble() * 100000.0;
    samples.push_back(v);
    hist.Add(v);
  }
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    ExpectClose(hist, samples, p);
  }
}

TEST(HistogramQuantileTest, ExponentialTailMatchesOracle) {
  // Latency-shaped data: exponential with mean 50 ms (in µs), the tail
  // spanning several octaves — the case the bucket layout is built for.
  Histogram hist;
  std::vector<double> samples;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.NextDouble();
    const double v = -50000.0 * std::log(1.0 - u);
    samples.push_back(v);
    hist.Add(v);
  }
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    ExpectClose(hist, samples, p);
  }
}

TEST(HistogramQuantileTest, PointMassesMatchOracle) {
  // Bimodal: 90% fast mode at 100 µs, 10% stall mode at 1 s. The p50
  // must sit in the fast mode's bucket and the p99 in the stall mode's.
  Histogram hist;
  std::vector<double> samples;
  for (int i = 0; i < 900; ++i) {
    samples.push_back(100.0);
    hist.Add(100.0);
  }
  for (int i = 0; i < 100; ++i) {
    samples.push_back(1e6);
    hist.Add(1e6);
  }
  ExpectClose(hist, samples, 50.0);
  ExpectClose(hist, samples, 99.0);
  ExpectClose(hist, samples, 99.9);
}

TEST(HistogramQuantileTest, SubUnitValuesShareTheFirstBucket) {
  // Everything <= 1.0 lands in bucket 0; quantiles there interpolate
  // within [0, 1] and clamp to the observed extremes.
  Histogram hist;
  for (double v : {0.1, 0.2, 0.3, 0.4}) hist.Add(v);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 0.1);
  EXPECT_DOUBLE_EQ(hist.Percentile(100.0), 0.4);
  EXPECT_GE(hist.Percentile(50.0), 0.1);
  EXPECT_LE(hist.Percentile(50.0), 0.4);
}

}  // namespace
}  // namespace elog
