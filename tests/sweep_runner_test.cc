#include "runner/sweep_runner.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/random.h"

namespace elog {
namespace runner {
namespace {

std::vector<db::DatabaseConfig> ShortSweep(int64_t runtime_s) {
  // A small mix sweep: same EL layout under increasing long-transaction
  // fractions. Short runtimes keep each simulation in the tens of
  // milliseconds.
  std::vector<db::DatabaseConfig> configs;
  for (double mix : {0.0, 0.05, 0.10, 0.20, 0.30, 0.40}) {
    db::DatabaseConfig config;
    config.workload = workload::PaperMix(mix);
    config.workload.runtime = SecondsToSimTime(runtime_s);
    config.log.generation_blocks = {18, 12};
    config.log.recirculation = true;
    configs.push_back(config);
  }
  return configs;
}

void ExpectStatsIdentical(const db::RunStats& a, const db::RunStats& b,
                          size_t index) {
  // Bit-identical, not approximately equal: the probe schedule and the
  // per-job seeds are pure functions of the submission index, so every
  // field — including the derived doubles — must match exactly.
  EXPECT_EQ(a.log_writes_per_sec, b.log_writes_per_sec) << "job " << index;
  EXPECT_EQ(a.log_writes_per_sec_by_generation,
            b.log_writes_per_sec_by_generation)
      << "job " << index;
  EXPECT_EQ(a.kills, b.kills) << "job " << index;
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes) << "job " << index;
  EXPECT_EQ(a.avg_memory_bytes, b.avg_memory_bytes) << "job " << index;
  EXPECT_EQ(a.mean_flush_seek_distance, b.mean_flush_seek_distance)
      << "job " << index;
  EXPECT_EQ(a.updates_written, b.updates_written) << "job " << index;
  EXPECT_EQ(a.flushes_completed, b.flushes_completed) << "job " << index;
  EXPECT_EQ(a.flush_backlog, b.flush_backlog) << "job " << index;
  EXPECT_EQ(a.commit_latency_mean_us, b.commit_latency_mean_us)
      << "job " << index;
  EXPECT_EQ(a.commit_latency_p99_us, b.commit_latency_p99_us)
      << "job " << index;
  EXPECT_EQ(a.total_started, b.total_started) << "job " << index;
  EXPECT_EQ(a.total_committed, b.total_committed) << "job " << index;
  EXPECT_EQ(a.total_killed, b.total_killed) << "job " << index;
  EXPECT_EQ(a.records_appended, b.records_appended) << "job " << index;
  EXPECT_EQ(a.records_forwarded, b.records_forwarded) << "job " << index;
  EXPECT_EQ(a.records_recirculated, b.records_recirculated)
      << "job " << index;
  EXPECT_EQ(a.records_discarded, b.records_discarded) << "job " << index;
  EXPECT_EQ(a.urgent_flushes, b.urgent_flushes) << "job " << index;
  EXPECT_EQ(a.unsafe_commit_drops, b.unsafe_commit_drops) << "job " << index;
}

std::vector<db::RunStats> RunWithJobs(int jobs, uint64_t base_seed) {
  SweepOptions options;
  options.jobs = jobs;
  options.base_seed = base_seed;
  SweepRunner runner(options);
  return runner.Run(ShortSweep(/*runtime_s=*/5));
}

TEST(SweepRunnerTest, ResultsBitIdenticalAcrossJobCounts) {
  std::vector<db::RunStats> serial = RunWithJobs(1, 42);
  for (int jobs : {4, 8}) {
    std::vector<db::RunStats> parallel = RunWithJobs(jobs, 42);
    ASSERT_EQ(parallel.size(), serial.size()) << "--jobs " << jobs;
    for (size_t i = 0; i < serial.size(); ++i) {
      ExpectStatsIdentical(serial[i], parallel[i], i);
    }
  }
}

TEST(SweepRunnerTest, RepeatedRunsWithSameBaseSeedAreBitIdentical) {
  std::vector<db::RunStats> first = RunWithJobs(4, 7);
  std::vector<db::RunStats> second = RunWithJobs(4, 7);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectStatsIdentical(first[i], second[i], i);
  }
}

TEST(SweepRunnerTest, BaseSeedChangesTheRuns) {
  std::vector<db::RunStats> a = RunWithJobs(2, 1);
  std::vector<db::RunStats> b = RunWithJobs(2, 2);
  ASSERT_EQ(a.size(), b.size());
  // Poisson-free deterministic arrivals still shuffle per-transaction
  // type draws; at least one job must diverge somewhere.
  bool any_difference = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].records_appended != b[i].records_appended ||
        a[i].log_writes_per_sec != b[i].log_writes_per_sec) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SweepRunnerTest, DeriveSeedsOffKeepsConfigSeeds) {
  std::vector<db::DatabaseConfig> configs(2);
  for (auto& config : configs) {
    config.workload = workload::PaperMix(0.05);
    config.workload.runtime = SecondsToSimTime(5);
    config.workload.seed = 99;
    config.log.generation_blocks = {18, 12};
    config.log.recirculation = true;
  }
  SweepOptions options;
  options.jobs = 2;
  options.derive_seeds = false;
  SweepRunner runner(options);
  std::vector<db::RunStats> stats = runner.Run(configs);
  ASSERT_EQ(stats.size(), 2u);
  // Identical configs + identical seeds = identical runs.
  ExpectStatsIdentical(stats[0], stats[1], 0);
}

TEST(SweepRunnerTest, SurvivalProbeSeparatesTightFromRoomy) {
  db::DatabaseConfig tight;
  tight.workload = workload::PaperMix(0.05);
  tight.workload.runtime = SecondsToSimTime(20);
  tight.log.generation_blocks = {4};  // far below the paper minimum
  db::DatabaseConfig roomy = tight;
  roomy.log.generation_blocks = {64};

  SweepOptions options;
  options.jobs = 2;
  SweepRunner runner(options);
  std::vector<char> survived = runner.RunSurvival({tight, roomy});
  ASSERT_EQ(survived.size(), 2u);
  EXPECT_FALSE(survived[0]);
  EXPECT_TRUE(survived[1]);
}

TEST(SweepRunnerTest, ProgressReporterTicksOncePerJob) {
  ProgressReporter progress("test", 0, /*out=*/nullptr);
  SweepOptions options;
  options.jobs = 2;
  options.progress = &progress;
  SweepRunner runner(options);
  runner.Run(ShortSweep(/*runtime_s=*/2));
  EXPECT_EQ(progress.done(), 6u);
}

TEST(DeriveSeedTest, PureFunctionOfBaseAndIndex) {
  EXPECT_EQ(DeriveSeed(42, 0), DeriveSeed(42, 0));
  EXPECT_EQ(DeriveSeed(42, 17), DeriveSeed(42, 17));
}

TEST(DeriveSeedTest, DistinctAcrossIndicesAndBases) {
  std::set<uint64_t> seeds;
  for (uint64_t base : {1ull, 42ull, 0xdeadbeefull}) {
    for (uint64_t index = 0; index < 1000; ++index) {
      seeds.insert(DeriveSeed(base, index));
    }
  }
  EXPECT_EQ(seeds.size(), 3u * 1000u);
}

TEST(DeriveSeedTest, NeverZero) {
  // A zero seed would collapse some PRNG initializations; SplitMix64's
  // output for our derivation never lands on it across a wide scan.
  for (uint64_t index = 0; index < 10000; ++index) {
    EXPECT_NE(DeriveSeed(0, index), 0u) << "index " << index;
  }
}

}  // namespace
}  // namespace runner
}  // namespace elog
