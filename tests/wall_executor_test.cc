// WallClockExecutor: the real-time CompletionExecutor. These tests keep
// delays tiny and assert ordering/counting rather than wall latencies,
// so they stay robust on loaded CI machines.

#include "core/wall_executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace elog {
namespace core {
namespace {

TEST(WallClockExecutorTest, NowStartsAtZeroAndAdvances) {
  WallClockExecutor executor;
  const SimTime t0 = executor.Now();
  EXPECT_GE(t0, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(executor.Now(), t0);
}

TEST(WallClockExecutorTest, TimersFireInDeadlineOrder) {
  WallClockExecutor executor;
  std::vector<int> order;
  executor.ScheduleAfter(3 * kMillisecond, [&] { order.push_back(3); });
  executor.ScheduleAfter(1 * kMillisecond, [&] { order.push_back(1); });
  executor.ScheduleAfter(2 * kMillisecond, [&] { order.push_back(2); });
  executor.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(executor.events_processed(), 3);
}

TEST(WallClockExecutorTest, SameDeadlineFiresInScheduleOrder) {
  WallClockExecutor executor;
  std::vector<int> order;
  // Both in the past by the time the loop runs: the EventId tie-break
  // must preserve FIFO, matching the simulator's contract.
  executor.ScheduleAt(0, [&] { order.push_back(1); });
  executor.ScheduleAt(0, [&] { order.push_back(2); });
  executor.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(WallClockExecutorTest, PastDeadlinesStillFire) {
  WallClockExecutor executor;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  bool fired = false;
  executor.ScheduleAt(0, [&] { fired = true; });  // long past
  executor.Run();
  EXPECT_TRUE(fired);
}

TEST(WallClockExecutorTest, CancelPreventsTheCallback) {
  WallClockExecutor executor;
  bool fired = false;
  sim::EventId id =
      executor.ScheduleAfter(1 * kMillisecond, [&] { fired = true; });
  EXPECT_TRUE(executor.Cancel(id));
  EXPECT_FALSE(executor.Cancel(id));  // already gone
  executor.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(executor.events_processed(), 0);
}

TEST(WallClockExecutorTest, RunReturnsWhenIdle) {
  WallClockExecutor executor;
  executor.Run();  // nothing scheduled: must not hang
  EXPECT_EQ(executor.events_processed(), 0);
}

TEST(WallClockExecutorTest, StopEndsTheLoopEarly) {
  WallClockExecutor executor;
  bool late_fired = false;
  executor.ScheduleAfter(1 * kMillisecond, [&] { executor.Stop(); });
  executor.ScheduleAfter(10 * kSecond, [&] { late_fired = true; });
  executor.Run();
  EXPECT_FALSE(late_fired);
}

TEST(WallClockExecutorTest, SupportsCrossThreadPost) {
  WallClockExecutor executor;
  EXPECT_TRUE(executor.SupportsCrossThreadPost());
}

TEST(WallClockExecutorTest, PostedWorkRunsOnTheLoopThread) {
  WallClockExecutor executor;
  std::atomic<bool> posted{false};
  std::thread::id loop_thread;
  // External work keeps Run() alive until the poster thread delivers.
  executor.RetainExternalWork();
  std::thread poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    executor.PostFromAnyThread([&] {
      loop_thread = std::this_thread::get_id();
      posted = true;
      executor.ReleaseExternalWork();
    });
  });
  executor.Run();
  poster.join();
  EXPECT_TRUE(posted.load());
  EXPECT_EQ(loop_thread, std::this_thread::get_id());
}

TEST(WallClockExecutorTest, RunUntilStopsAtTheDeadline) {
  WallClockExecutor executor;
  bool late_fired = false;
  executor.ScheduleAfter(10 * kSecond, [&] { late_fired = true; });
  executor.RunUntil(executor.Now() + 2 * kMillisecond);
  EXPECT_FALSE(late_fired);
  // The timer is still pending; cancel so no state leaks.
  EXPECT_EQ(executor.events_processed(), 0);
}

}  // namespace
}  // namespace core
}  // namespace elog
