#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "wal/block_format.h"

namespace elog {
namespace fault {
namespace {

constexpr SimTime kBase = 15 * kMillisecond;

FaultConfig MixedConfig(uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.log_transient_error_rate = 0.2;
  config.log_bit_rot_rate = 0.15;
  config.log_latency_spike_rate = 0.1;
  config.flush_transient_error_rate = 0.25;
  return config;
}

TEST(FaultConfigTest, DefaultConfigIsDisabledAndValid) {
  FaultConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_TRUE(config.Validate().ok());
}

TEST(FaultConfigTest, AnyNonzeroRateEnables) {
  FaultConfig config;
  config.log_bit_rot_rate = 0.01;
  EXPECT_TRUE(config.enabled());
}

TEST(FaultConfigTest, RejectsOutOfRangeRates) {
  FaultConfig config;
  config.log_transient_error_rate = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.flush_transient_error_rate = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.log_latency_spike_multiplier = 0.5;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.max_flush_attempts = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FaultInjectorTest, SameSeedReplaysIdenticalDecisions) {
  FaultInjector a(MixedConfig(1234));
  FaultInjector b(MixedConfig(1234));
  for (int i = 0; i < 2000; ++i) {
    FaultInjector::WriteDecision da = a.NextLogWrite(kBase);
    FaultInjector::WriteDecision db = b.NextLogWrite(kBase);
    EXPECT_EQ(da.fault, db.fault) << "decision " << i;
    EXPECT_EQ(da.extra_latency, db.extra_latency) << "decision " << i;
    EXPECT_EQ(a.NextFlushFails(), b.NextFlushFails()) << "decision " << i;
  }
  EXPECT_EQ(a.log_transient_errors(), b.log_transient_errors());
  EXPECT_EQ(a.log_bit_rots(), b.log_bit_rots());
  EXPECT_EQ(a.log_latency_spikes(), b.log_latency_spikes());
  EXPECT_EQ(a.flush_transient_errors(), b.flush_transient_errors());
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(MixedConfig(1));
  FaultInjector b(MixedConfig(2));
  bool diverged = false;
  for (int i = 0; i < 500 && !diverged; ++i) {
    diverged = a.NextLogWrite(kBase).fault != b.NextLogWrite(kBase).fault;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, RatesApproximatelyHonored) {
  FaultInjector injector(MixedConfig(99));
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) injector.NextLogWrite(kBase);
  // Transient errors take precedence, so their count is a clean binomial;
  // bit-rot only applies to the remaining (1 - 0.2) of draws.
  EXPECT_NEAR(static_cast<double>(injector.log_transient_errors()) / kDraws,
              0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(injector.log_bit_rots()) / kDraws,
              0.15 * (1.0 - 0.2), 0.02);
  EXPECT_NEAR(static_cast<double>(injector.log_latency_spikes()) / kDraws,
              0.1, 0.02);
}

TEST(FaultInjectorTest, ZeroRatesNeverInject) {
  FaultConfig config;
  config.seed = 7;
  FaultInjector injector(config);
  for (int i = 0; i < 1000; ++i) {
    FaultInjector::WriteDecision d = injector.NextLogWrite(kBase);
    EXPECT_EQ(d.fault, FaultInjector::WriteFault::kNone);
    EXPECT_EQ(d.extra_latency, 0);
    EXPECT_FALSE(injector.NextFlushFails());
  }
}

TEST(FaultInjectorTest, SpikeScalesBaseLatency) {
  FaultConfig config;
  config.seed = 5;
  config.log_latency_spike_rate = 1.0;
  config.log_latency_spike_multiplier = 10.0;
  FaultInjector injector(config);
  FaultInjector::WriteDecision d = injector.NextLogWrite(kBase);
  EXPECT_EQ(d.extra_latency, 9 * kBase);  // total = 10x base
}

TEST(FaultInjectorTest, StreamPositionIndependentOfRates) {
  // The fixed three-draws-per-decision contract: zeroing one rate must not
  // shift any other decision in the stream.
  FaultConfig full = MixedConfig(321);
  FaultConfig no_spikes = full;
  no_spikes.log_latency_spike_rate = 0.0;
  FaultInjector a(full);
  FaultInjector b(no_spikes);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.NextLogWrite(kBase).fault, b.NextLogWrite(kBase).fault)
        << "decision " << i;
  }
}

TEST(FaultInjectorTest, DeathPlanDoesNotShiftWriteStream) {
  // Stream stability, direction 1: arming (or re-zeroing) the drive-death
  // rate must not move a single transient/bit-rot/spike/flush decision —
  // the death plan draws from its own derived stream.
  FaultConfig without_death = MixedConfig(777);
  FaultConfig with_death = without_death;
  with_death.drive_death_rate = 1.0;
  FaultInjector a(without_death);
  FaultInjector b(with_death);
  EXPECT_FALSE(a.death_plan().dies);
  EXPECT_TRUE(b.death_plan().dies);
  for (int i = 0; i < 2000; ++i) {
    FaultInjector::WriteDecision da = a.NextLogWrite(kBase);
    FaultInjector::WriteDecision db = b.NextLogWrite(kBase);
    EXPECT_EQ(da.fault, db.fault) << "decision " << i;
    EXPECT_EQ(da.extra_latency, db.extra_latency) << "decision " << i;
    EXPECT_EQ(a.NextFlushFails(), b.NextFlushFails()) << "decision " << i;
  }
}

TEST(FaultInjectorTest, WriteRatesDoNotShiftDeathPlan) {
  // Stream stability, direction 2: zeroing every transient rate must not
  // change the drawn death plan.
  FaultConfig full = MixedConfig(778);
  full.drive_death_rate = 0.7;
  FaultConfig death_only;
  death_only.seed = full.seed;
  death_only.drive_death_rate = 0.7;
  FaultInjector a(full);
  FaultInjector b(death_only);
  EXPECT_EQ(a.death_plan().dies, b.death_plan().dies);
  EXPECT_EQ(a.death_plan().time, b.death_plan().time);
  EXPECT_EQ(a.death_plan().op_count, b.death_plan().op_count);
}

TEST(FaultInjectorTest, DeathPlanReplaysFromSeedAndRespectsWindow) {
  FaultConfig config;
  config.seed = 4242;
  config.drive_death_rate = 1.0;
  for (uint32_t replica = 0; replica < 2; ++replica) {
    FaultInjector a(config, replica);
    FaultInjector b(config, replica);
    ASSERT_TRUE(a.death_plan().dies);
    EXPECT_EQ(a.death_plan().time, b.death_plan().time);
    EXPECT_EQ(a.death_plan().op_count, b.death_plan().op_count);
    EXPECT_GE(a.death_plan().time, config.min_drive_death_time);
    EXPECT_LT(a.death_plan().time, config.max_drive_death_time);
    if (a.death_plan().op_count != 0) {
      EXPECT_GE(a.death_plan().op_count, config.min_drive_death_ops);
      EXPECT_LT(a.death_plan().op_count, config.max_drive_death_ops);
    }
  }
}

TEST(FaultInjectorTest, ReplicaZeroKeepsHistoricalStream) {
  // A duplex run's primary replays the exact per-write stream a
  // single-log run drew from the same seed.
  FaultInjector single(MixedConfig(900));
  FaultInjector primary(MixedConfig(900), /*replica=*/0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(single.NextLogWrite(kBase).fault,
              primary.NextLogWrite(kBase).fault)
        << "decision " << i;
  }
}

TEST(FaultInjectorTest, ReplicaStreamsAreIndependent) {
  FaultInjector primary(MixedConfig(901), /*replica=*/0);
  FaultInjector mirror(MixedConfig(901), /*replica=*/1);
  EXPECT_EQ(primary.replica(), 0u);
  EXPECT_EQ(mirror.replica(), 1u);
  bool diverged = false;
  for (int i = 0; i < 500 && !diverged; ++i) {
    diverged = primary.NextLogWrite(kBase).fault !=
               mirror.NextLogWrite(kBase).fault;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, FailSlowPlanDoesNotShiftOtherStreams) {
  // Stream stability, direction 1: arming the fail-slow rate must not
  // move a single per-write decision, flush decision, or death plan —
  // the fail-slow plan draws from its own appended salted stream.
  FaultConfig without = MixedConfig(2024);
  without.drive_death_rate = 0.6;
  FaultConfig with = without;
  with.fail_slow_rate = 1.0;
  FaultInjector a(without);
  FaultInjector b(with);
  EXPECT_FALSE(a.fail_slow_plan().slow);
  EXPECT_TRUE(b.fail_slow_plan().slow);
  EXPECT_EQ(a.death_plan().dies, b.death_plan().dies);
  EXPECT_EQ(a.death_plan().time, b.death_plan().time);
  EXPECT_EQ(a.death_plan().op_count, b.death_plan().op_count);
  for (int i = 0; i < 2000; ++i) {
    FaultInjector::WriteDecision da = a.NextLogWrite(kBase);
    FaultInjector::WriteDecision db = b.NextLogWrite(kBase);
    EXPECT_EQ(da.fault, db.fault) << "decision " << i;
    EXPECT_EQ(da.extra_latency, db.extra_latency) << "decision " << i;
    EXPECT_EQ(a.NextFlushFails(), b.NextFlushFails()) << "decision " << i;
  }
}

TEST(FaultInjectorTest, OtherRatesDoNotShiftFailSlowPlan) {
  // Stream stability, direction 2: zeroing every other fault class must
  // not change the drawn fail-slow plan.
  FaultConfig full = MixedConfig(2025);
  full.drive_death_rate = 0.6;
  full.fail_slow_rate = 0.7;
  FaultConfig slow_only;
  slow_only.seed = full.seed;
  slow_only.fail_slow_rate = 0.7;
  FaultInjector a(full);
  FaultInjector b(slow_only);
  EXPECT_EQ(a.fail_slow_plan().slow, b.fail_slow_plan().slow);
  EXPECT_EQ(a.fail_slow_plan().onset, b.fail_slow_plan().onset);
  EXPECT_EQ(a.fail_slow_plan().multiplier, b.fail_slow_plan().multiplier);
  EXPECT_EQ(a.fail_slow_plan().ramp, b.fail_slow_plan().ramp);
}

TEST(FaultInjectorTest, FailSlowPlanReplaysFromSeedAndRespectsWindow) {
  FaultConfig config;
  config.seed = 5252;
  config.fail_slow_rate = 1.0;
  config.fail_slow_multiplier = 6.0;
  for (uint32_t replica = 0; replica < 2; ++replica) {
    FaultInjector a(config, replica);
    FaultInjector b(config, replica);
    ASSERT_TRUE(a.fail_slow_plan().slow);
    EXPECT_EQ(a.fail_slow_plan().onset, b.fail_slow_plan().onset);
    EXPECT_EQ(a.fail_slow_plan().ramp, b.fail_slow_plan().ramp);
    EXPECT_GE(a.fail_slow_plan().onset, config.min_fail_slow_onset);
    EXPECT_LT(a.fail_slow_plan().onset, config.max_fail_slow_onset);
    EXPECT_EQ(a.fail_slow_plan().multiplier, 6.0);
    EXPECT_TRUE(a.fail_slow_plan().ramp == 0 ||
                a.fail_slow_plan().ramp == config.fail_slow_ramp);
  }
}

TEST(FaultInjectorTest, ForcedFailSlowConsumesNoDrawsAndPinsOneReplica) {
  FaultConfig forced = MixedConfig(2026);
  forced.force_fail_slow_replica = 1;
  forced.force_fail_slow_onset = 2 * kSecond;
  forced.fail_slow_multiplier = 4.0;
  FaultInjector primary(forced, /*replica=*/0);
  FaultInjector mirror(forced, /*replica=*/1);
  EXPECT_FALSE(primary.fail_slow_plan().slow);
  ASSERT_TRUE(mirror.fail_slow_plan().slow);
  EXPECT_EQ(mirror.fail_slow_plan().onset, 2 * kSecond);
  EXPECT_EQ(mirror.fail_slow_plan().multiplier, 4.0);
  EXPECT_EQ(mirror.fail_slow_plan().ramp, 0);
  // Pure configuration, zero draws: the per-write stream is untouched.
  FaultInjector plain(MixedConfig(2026), /*replica=*/1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(plain.NextLogWrite(kBase).fault,
              mirror.NextLogWrite(kBase).fault)
        << "decision " << i;
  }
}

TEST(FaultConfigTest, ForShardClearsForcedFailSlowOnOtherShards) {
  FaultConfig config = MixedConfig(2027);
  config.force_fail_slow_replica = 1;
  config.force_fail_slow_shard = 0;
  EXPECT_EQ(config.ForShard(0).force_fail_slow_replica, 1);
  EXPECT_EQ(config.ForShard(1).force_fail_slow_replica, -1);
  EXPECT_EQ(config.ForShard(3).force_fail_slow_replica, -1);
}

TEST(FaultConfigTest, FailSlowEnablesInjector) {
  FaultConfig config;
  EXPECT_FALSE(config.enabled());
  config.fail_slow_rate = 0.1;
  EXPECT_TRUE(config.enabled());
  config = FaultConfig();
  config.force_fail_slow_replica = 0;
  EXPECT_TRUE(config.enabled());
}

TEST(FaultConfigTest, RejectsBadFailSlowKnobs) {
  FaultConfig config;
  config.fail_slow_rate = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.fail_slow_multiplier = 0.5;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.min_fail_slow_onset = 2 * kSecond;
  config.max_fail_slow_onset = 1 * kSecond;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.fail_slow_ramp = -1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FaultConfigTest, RejectsBadDeathKnobs) {
  FaultConfig config;
  config.drive_death_rate = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.drive_death_by_ops_prob = -0.5;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.min_drive_death_time = 2 * kSecond;
  config.max_drive_death_time = 1 * kSecond;
  EXPECT_FALSE(config.Validate().ok());
  config = FaultConfig();
  config.min_drive_death_ops = 100;
  config.max_drive_death_ops = 50;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FaultInjectorTest, ScrambleBreaksDecode) {
  FaultInjector injector(MixedConfig(42));
  for (int i = 0; i < 200; ++i) {
    wal::BlockImage image = wal::EncodeBlock(
        0, static_cast<uint64_t>(i + 1),
        {wal::LogRecord::MakeBegin(1, 1),
         wal::LogRecord::MakeData(1, 2, 17, 100,
                                  wal::ComputeValueDigest(1, 17, 2)),
         wal::LogRecord::MakeCommit(1, 3)});
    ASSERT_TRUE(wal::DecodeBlock(image).ok());
    injector.Scramble(&image);
    EXPECT_FALSE(wal::DecodeBlock(image).ok()) << "iteration " << i;
  }
}

TEST(FaultInjectorTest, ScrambleHandlesDegenerateImages) {
  FaultInjector injector(MixedConfig(8));
  wal::BlockImage empty;
  injector.Scramble(&empty);  // must not crash
  EXPECT_TRUE(empty.empty());
  wal::BlockImage tiny{1, 2, 3};
  injector.Scramble(&tiny);
  EXPECT_EQ(tiny.size(), 3u);
}

}  // namespace
}  // namespace fault
}  // namespace elog
