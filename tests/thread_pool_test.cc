#include "runner/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace elog {
namespace runner {
namespace {

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < kTasks; ++i) {
    group.Spawn([&done] { done.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, CompletionOrderIsNotSubmissionOrder) {
  // Results keyed by submission index are complete and exact even though
  // tasks finish out of order: early tasks sleep, late ones don't.
  ThreadPool pool(4);
  constexpr size_t kTasks = 16;
  std::vector<int> by_index(kTasks, -1);
  std::vector<size_t> completion;
  std::mutex mu;
  TaskGroup group(&pool);
  for (size_t i = 0; i < kTasks; ++i) {
    group.Spawn([&, i] {
      if (i < 4) {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
      }
      by_index[i] = static_cast<int>(i * i);
      std::lock_guard<std::mutex> lock(mu);
      completion.push_back(i);
    });
  }
  group.Wait();
  ASSERT_EQ(completion.size(), kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(by_index[i], static_cast<int>(i * i)) << "index " << i;
  }
  // Every index completed exactly once.
  std::set<size_t> unique(completion.begin(), completion.end());
  EXPECT_EQ(unique.size(), kTasks);
}

TEST(ThreadPoolTest, TaskGroupPropagatesException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  group.Spawn([&ran] { ran.fetch_add(1); });
  group.Spawn([] { throw std::runtime_error("probe diverged"); });
  group.Spawn([&ran] { ran.fetch_add(1); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // Remaining tasks still ran to completion.
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, NullPoolTaskGroupRunsInline) {
  TaskGroup group(nullptr);
  int value = 0;
  group.Spawn([&value] { value = 7; });
  // Inline mode executes at Spawn time; Wait is still required and safe.
  EXPECT_EQ(value, 7);
  group.Wait();
}

TEST(ThreadPoolTest, NestedTaskGroupsDoNotDeadlock) {
  // More nested groups than workers: waiters must help drain the pool.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.Spawn([&pool, &leaves] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 4; ++j) {
        inner.Spawn([&leaves] { leaves.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(leaves.load(), 8 * 4);
}

TEST(ThreadPoolTest, ParallelForCoversRangeOnceEach) {
  ThreadPool pool(3);
  constexpr size_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSerialWhenPoolIsNull) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 5, [&order](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelFor(&pool, 10,
                           [](size_t i) {
                             if (i == 3) throw std::out_of_range("i==3");
                           }),
               std::out_of_range);
}

TEST(ThreadPoolTest, TryRunOneTaskReturnsFalseWhenIdle) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.TryRunOneTask());
}

}  // namespace
}  // namespace runner
}  // namespace elog
