// Additional EL manager edge cases: multi-generation cascades, lifetime
// hints with commit registration, drain idempotence, flush/supersede
// races, and bookkeeping across long mixed runs.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/el_manager.h"

namespace elog {
namespace {

class ElManagerEdgeTest : public ::testing::Test {
 protected:
  void Build(LogManagerOptions options) {
    options.num_objects = 1000;
    storage_ = std::make_unique<disk::LogStorage>(options.generation_blocks);
    device_ = std::make_unique<disk::LogDevice>(
        &sim_, storage_.get(), options.log_write_latency, nullptr);
    drives_ = std::make_unique<disk::DriveArray>(
        &sim_, options.num_flush_drives, options.num_objects,
        options.flush_transfer_time, nullptr);
    manager_ = std::make_unique<EphemeralLogManager>(
        &sim_, options, device_.get(), drives_.get(), nullptr);
  }

  TxId Begin(SimTime lifetime = SecondsToSimTime(1)) {
    workload::TransactionType type;
    type.lifetime = lifetime;
    return manager_->BeginTransaction(type);
  }

  sim::Simulator sim_;
  std::unique_ptr<disk::LogStorage> storage_;
  std::unique_ptr<disk::LogDevice> device_;
  std::unique_ptr<disk::DriveArray> drives_;
  std::unique_ptr<EphemeralLogManager> manager_;
};

TEST_F(ElManagerEdgeTest, ThreeGenerationCascade) {
  // Tiny early generations force records of a long transaction through
  // the whole chain.
  LogManagerOptions options;
  options.generation_blocks = {4, 4, 10};
  options.recirculation = true;
  Build(options);
  TxId keeper = Begin(SecondsToSimTime(1000));
  for (int i = 0; i < 120; ++i) manager_->WriteUpdate(keeper, i % 500, 100);
  sim_.Run();
  // Records were forwarded at least twice (gen0->1 and gen1->2).
  EXPECT_GT(manager_->records_forwarded(), 60);
  EXPECT_GT(device_->writes_completed(2), 0);
  EXPECT_EQ(manager_->transactions_killed(), 0);
  manager_->CheckInvariants();
}

TEST_F(ElManagerEdgeTest, ForceWriteIsIdempotentOnEmptyBuffers) {
  LogManagerOptions options;
  options.generation_blocks = {6, 6};
  Build(options);
  manager_->ForceWriteOpenBuffers();  // nothing open: no-op
  EXPECT_EQ(device_->writes_completed(), 0);
  TxId tid = Begin();
  manager_->ForceWriteOpenBuffers();
  manager_->ForceWriteOpenBuffers();  // second call: buffer now empty
  sim_.Run();
  EXPECT_EQ(device_->writes_completed(), 1);
  (void)tid;
  manager_->CheckInvariants();
}

TEST_F(ElManagerEdgeTest, HintedCommitAcknowledged) {
  LogManagerOptions options;
  options.generation_blocks = {6, 8};
  options.lifetime_hints = true;
  options.hint_lifetime_threshold = SecondsToSimTime(5);
  options.hint_target_generation = 1;
  Build(options);
  TxId tid = Begin(SecondsToSimTime(10));  // hinted to generation 1
  manager_->WriteUpdate(tid, 42, 100);
  bool acked = false;
  manager_->Commit(tid, [&](TxId) { acked = true; });
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  EXPECT_TRUE(acked);
  EXPECT_EQ(manager_->ltt_size(), 0u);  // flushed and cleaned
  // All traffic went to generation 1.
  EXPECT_EQ(device_->writes_completed(0), 0);
  EXPECT_GT(device_->writes_completed(1), 0);
  manager_->CheckInvariants();
}

TEST_F(ElManagerEdgeTest, InterleavedCommitsOnSameObjectChainFlushes) {
  LogManagerOptions options;
  options.generation_blocks = {8, 8};
  options.flush_transfer_time = 40 * kMillisecond;
  Build(options);
  // Five transactions update the same object back to back; each commit
  // supersedes the previous committed version.
  for (int round = 0; round < 5; ++round) {
    TxId tid = Begin();
    manager_->WriteUpdate(tid, 7, 100);
    manager_->Commit(tid, [](TxId) {});
    manager_->ForceWriteOpenBuffers();
    sim_.RunUntil(sim_.Now() + 20 * kMillisecond);
  }
  sim_.Run();
  // Everything settles: one surviving version, tables empty.
  EXPECT_EQ(manager_->lot_size(), 0u);
  EXPECT_EQ(manager_->ltt_size(), 0u);
  manager_->CheckInvariants();
}

TEST_F(ElManagerEdgeTest, AbortAfterPartialWorkLeavesNoResidue) {
  LogManagerOptions options;
  options.generation_blocks = {6, 6};
  Build(options);
  for (int round = 0; round < 50; ++round) {
    TxId tid = Begin(SecondsToSimTime(100));
    for (int i = 0; i < 5; ++i) {
      manager_->WriteUpdate(tid, round * 10 + i, 100);
    }
    manager_->Abort(tid);
  }
  sim_.Run();
  EXPECT_EQ(manager_->lot_size(), 0u);
  EXPECT_EQ(manager_->ltt_size(), 0u);
  EXPECT_EQ(manager_->transactions_killed(), 0);
  manager_->CheckInvariants();
}

TEST_F(ElManagerEdgeTest, MemoryGaugeAverageBoundedByPeak) {
  LogManagerOptions options;
  options.generation_blocks = {18, 12};
  Build(options);
  for (int round = 0; round < 20; ++round) {
    TxId tid = Begin();
    manager_->WriteUpdate(tid, round, 100);
    manager_->Commit(tid, [](TxId) {});
    manager_->ForceWriteOpenBuffers();
    sim_.Run();
  }
  const TimeWeightedValue& memory = manager_->memory_usage();
  EXPECT_GT(memory.peak(), 0.0);
  EXPECT_LE(memory.Average(sim_.Now()), memory.peak());
  EXPECT_GE(memory.Average(sim_.Now()), 0.0);
}

TEST_F(ElManagerEdgeTest, DistinctObjectsDistinctLotEntries) {
  LogManagerOptions options;
  options.generation_blocks = {18, 12};
  Build(options);
  TxId a = Begin(SecondsToSimTime(100));
  TxId b = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(a, 1, 100);
  manager_->WriteUpdate(b, 2, 100);
  manager_->WriteUpdate(a, 3, 100);
  EXPECT_EQ(manager_->lot_size(), 3u);
  EXPECT_EQ(manager_->ltt_size(), 2u);
  manager_->Abort(a);
  EXPECT_EQ(manager_->lot_size(), 1u);
  EXPECT_EQ(manager_->ltt_size(), 1u);
  manager_->CheckInvariants();
}

TEST_F(ElManagerEdgeTest, GenerationAccountingExposed) {
  LogManagerOptions options;
  options.generation_blocks = {6, 8};
  Build(options);
  EXPECT_EQ(manager_->num_generations(), 2u);
  EXPECT_EQ(manager_->generation(0).num_blocks(), 6u);
  EXPECT_EQ(manager_->generation(1).num_blocks(), 8u);
  EXPECT_EQ(manager_->generation(0).used_blocks(), 0u);
  TxId tid = Begin();
  (void)tid;
  EXPECT_TRUE(manager_->generation(0).has_open_builder());
  EXPECT_EQ(manager_->generation(0).builder().record_count(), 1u);
}

TEST_F(ElManagerEdgeTest, OccupancyGaugeTracksUsedBlocks) {
  LogManagerOptions options;
  options.generation_blocks = {6, 6};
  Build(options);
  EXPECT_EQ(manager_->occupancy(0).current(), 0.0);
  // Fill a couple of blocks.
  TxId tid = Begin(SecondsToSimTime(100));
  for (int i = 0; i < 50; ++i) manager_->WriteUpdate(tid, i, 100);
  sim_.Run();
  EXPECT_EQ(manager_->occupancy(0).current(),
            static_cast<double>(manager_->generation(0).used_blocks()));
  EXPECT_GT(manager_->occupancy(0).peak(), 0.0);
  EXPECT_LE(manager_->occupancy(0).peak(), 6.0);
}

TEST_F(ElManagerEdgeTest, CommitOfUnknownTidChecks) {
  LogManagerOptions options;
  options.generation_blocks = {6, 6};
  Build(options);
  EXPECT_DEATH(manager_->Commit(999, [](TxId) {}), "unknown tid");
  EXPECT_DEATH(manager_->Abort(999), "unknown tid");
  EXPECT_DEATH(manager_->WriteUpdate(999, 1, 100), "unknown tid");
}

TEST_F(ElManagerEdgeTest, DoubleCommitChecks) {
  LogManagerOptions options;
  options.generation_blocks = {6, 6};
  Build(options);
  TxId tid = Begin();
  manager_->Commit(tid, [](TxId) {});
  EXPECT_DEATH(manager_->Commit(tid, [](TxId) {}), "double commit");
  EXPECT_DEATH(manager_->Abort(tid), "abort after commit");
}

}  // namespace
}  // namespace elog
