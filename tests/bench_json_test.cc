#include "runner/bench_json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace elog {
namespace runner {
namespace {

TEST(BenchJsonTest, SchemaSectionsInFixedOrder) {
  BenchJson bench("fig5_bandwidth");
  bench.AddConfig("jobs", static_cast<int64_t>(4));
  bench.AddMetric("simulations", static_cast<int64_t>(123));
  bench.set_wall_time_seconds(1.5);
  std::string json = bench.ToJson();

  size_t bench_pos = json.find("\"bench\"");
  size_t version_pos = json.find("\"schema_version\"");
  size_t config_pos = json.find("\"config\"");
  size_t metrics_pos = json.find("\"metrics\"");
  size_t tables_pos = json.find("\"tables\"");
  size_t wall_pos = json.find("\"wall_time_s\"");
  ASSERT_NE(bench_pos, std::string::npos);
  ASSERT_NE(version_pos, std::string::npos);
  ASSERT_NE(config_pos, std::string::npos);
  ASSERT_NE(metrics_pos, std::string::npos);
  ASSERT_NE(tables_pos, std::string::npos);
  ASSERT_NE(wall_pos, std::string::npos);
  // wall_time_s is deliberately last: determinism comparisons strip the
  // final line and diff the rest byte-for-byte.
  EXPECT_LT(bench_pos, version_pos);
  EXPECT_LT(version_pos, config_pos);
  EXPECT_LT(config_pos, metrics_pos);
  EXPECT_LT(metrics_pos, tables_pos);
  EXPECT_LT(tables_pos, wall_pos);
  EXPECT_NE(json.find("\"bench\": \"fig5_bandwidth\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(BenchJsonTest, ConfigValueTypes) {
  BenchJson bench("b");
  bench.AddConfig("name", "paper_mix");
  bench.AddConfig("jobs", static_cast<int64_t>(8));
  bench.AddConfig("ratio", 1.15);
  bench.AddConfig("quick", true);
  std::string json = bench.ToJson();
  EXPECT_NE(json.find("\"name\": \"paper_mix\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"ratio\": 1.15"), std::string::npos);
  EXPECT_NE(json.find("\"quick\": true"), std::string::npos);
}

TEST(BenchJsonTest, InsertionOrderWithinSection) {
  BenchJson bench("b");
  bench.AddConfig("zeta", static_cast<int64_t>(1));
  bench.AddConfig("alpha", static_cast<int64_t>(2));
  std::string json = bench.ToJson();
  EXPECT_LT(json.find("\"zeta\""), json.find("\"alpha\""));
}

TEST(BenchJsonTest, TablesCarryColumnsAndRows) {
  TableWriter table({"mix", "blocks"});
  table.AddRow({"5", "18"});
  table.AddRow({"20", "26"});
  BenchJson bench("b");
  bench.AddTable("results", table);
  std::string json = bench.ToJson();
  EXPECT_NE(json.find("\"results\""), std::string::npos);
  EXPECT_NE(json.find("\"columns\": [\"mix\", \"blocks\"]"),
            std::string::npos);
  EXPECT_NE(json.find("[\"5\", \"18\"]"), std::string::npos);
  EXPECT_NE(json.find("[\"20\", \"26\"]"), std::string::npos);
}

TEST(BenchJsonTest, IdenticalContentSerializesIdentically) {
  auto build = [] {
    BenchJson bench("determinism");
    bench.AddConfig("jobs", static_cast<int64_t>(4));
    bench.AddMetric("value", 0.1234567890123);
    TableWriter table({"a"});
    table.AddRow({"x"});
    bench.AddTable("results", table);
    bench.set_wall_time_seconds(0.0);
    return bench.ToJson();
  };
  EXPECT_EQ(build(), build());
}

TEST(BenchJsonTest, EscapeHandlesSpecials) {
  EXPECT_EQ(BenchJson::Escape("plain"), "plain");
  EXPECT_EQ(BenchJson::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(BenchJson::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(BenchJson::Escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(BenchJson::Escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(BenchJsonTest, EmptyDirSkipsWriting) {
  BenchJson bench("skipped");
  Status status = bench.WriteFile("");
  EXPECT_TRUE(status.ok());
}

TEST(BenchJsonTest, WriteFileRoundTrips) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "elog_bench_json_test";
  std::filesystem::remove_all(dir);

  BenchJson bench("roundtrip");
  bench.AddConfig("jobs", static_cast<int64_t>(1));
  bench.set_wall_time_seconds(2.25);
  ASSERT_TRUE(bench.WriteFile(dir.string()).ok());

  std::filesystem::path file = dir / "BENCH_roundtrip.json";
  EXPECT_EQ(bench.FilePath(dir.string()), file.string());
  std::ifstream in(file);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), bench.ToJson());

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace runner
}  // namespace elog
