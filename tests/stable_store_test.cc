#include "db/stable_store.h"

#include <gtest/gtest.h>

namespace elog {
namespace db {
namespace {

TEST(StableStoreTest, EmptyStore) {
  StableStore store;
  EXPECT_EQ(store.materialized_objects(), 0u);
  EXPECT_EQ(store.Get(42), ObjectVersion{});
  EXPECT_EQ(store.Get(42).lsn, 0u);
}

TEST(StableStoreTest, ApplyFlushSetsVersion) {
  StableStore store;
  store.ApplyFlush(7, 100, 0xabc);
  EXPECT_EQ(store.Get(7).lsn, 100u);
  EXPECT_EQ(store.Get(7).value_digest, 0xabcu);
  EXPECT_EQ(store.materialized_objects(), 1u);
  EXPECT_EQ(store.flushes_applied(), 1);
}

TEST(StableStoreTest, NewerVersionWins) {
  StableStore store;
  store.ApplyFlush(7, 100, 1);
  store.ApplyFlush(7, 200, 2);
  EXPECT_EQ(store.Get(7).lsn, 200u);
  EXPECT_EQ(store.Get(7).value_digest, 2u);
}

TEST(StableStoreTest, StaleFlushIgnored) {
  // A superseded update's flush can land after its successor's — the
  // store must keep the max-LSN version.
  StableStore store;
  store.ApplyFlush(7, 200, 2);
  store.ApplyFlush(7, 100, 1);
  EXPECT_EQ(store.Get(7).lsn, 200u);
  EXPECT_EQ(store.Get(7).value_digest, 2u);
  EXPECT_EQ(store.flushes_applied(), 2);  // both counted, one effective
}

TEST(StableStoreTest, EqualLsnDoesNotOverwrite) {
  StableStore store;
  store.ApplyFlush(7, 100, 1);
  store.ApplyFlush(7, 100, 999);  // duplicate flush (urgent + normal)
  EXPECT_EQ(store.Get(7).value_digest, 1u);
}

TEST(StableStoreTest, ObjectsIndependent) {
  StableStore store;
  store.ApplyFlush(1, 10, 100);
  store.ApplyFlush(2, 20, 200);
  EXPECT_EQ(store.Get(1).lsn, 10u);
  EXPECT_EQ(store.Get(2).lsn, 20u);
  EXPECT_EQ(store.materialized_objects(), 2u);
}

TEST(StableStoreTest, StealMarksProvisionalWithBeforeImage) {
  StableStore store;
  store.ApplyFlush(7, 100, 0xAA);  // committed base version
  store.ApplySteal(7, 150, 0xBB, /*writer=*/9, /*prev_lsn=*/100,
                   /*prev_digest=*/0xAA);
  ObjectVersion version = store.Get(7);
  EXPECT_TRUE(version.provisional);
  EXPECT_EQ(version.lsn, 150u);
  EXPECT_EQ(version.value_digest, 0xBBu);
  EXPECT_EQ(version.writer, 9u);
  EXPECT_EQ(version.prev_lsn, 100u);
  EXPECT_EQ(version.prev_digest, 0xAAu);
  EXPECT_EQ(store.steals_applied(), 1);
}

TEST(StableStoreTest, StaleStealIgnored) {
  StableStore store;
  store.ApplyFlush(7, 200, 0xCC);
  store.ApplySteal(7, 150, 0xBB, 9, 100, 0xAA);  // older than current
  EXPECT_FALSE(store.Get(7).provisional);
  EXPECT_EQ(store.Get(7).lsn, 200u);
}

TEST(StableStoreTest, CommitFlushConfirmsProvisional) {
  StableStore store;
  store.ApplySteal(7, 150, 0xBB, 9, 0, 0);
  ASSERT_TRUE(store.Get(7).provisional);
  // The commit-time flush of the same version clears the mark.
  store.ApplyFlush(7, 150, 0xBB);
  ObjectVersion version = store.Get(7);
  EXPECT_FALSE(version.provisional);
  EXPECT_EQ(version.lsn, 150u);
  EXPECT_EQ(version.writer, 0u);
}

TEST(StableStoreTest, UndoRestoresBeforeImage) {
  StableStore store;
  store.ApplyFlush(7, 100, 0xAA);
  store.ApplySteal(7, 150, 0xBB, 9, 100, 0xAA);
  store.ApplyUndo(7, 150, 100, 0xAA);
  ObjectVersion version = store.Get(7);
  EXPECT_FALSE(version.provisional);
  EXPECT_EQ(version.lsn, 100u);
  EXPECT_EQ(version.value_digest, 0xAAu);
  EXPECT_EQ(store.undos_applied(), 1);
}

TEST(StableStoreTest, UndoOfNeverCommittedObjectErases) {
  StableStore store;
  store.ApplySteal(7, 150, 0xBB, 9, 0, 0);
  store.ApplyUndo(7, 150, 0, 0);
  EXPECT_EQ(store.Get(7), ObjectVersion{});
  EXPECT_EQ(store.materialized_objects(), 0u);
}

TEST(StableStoreTest, UndoRequiresExactProvisionalMatch) {
  StableStore store;
  store.ApplyFlush(7, 100, 0xAA);
  // Not provisional: undo must not touch it.
  store.ApplyUndo(7, 100, 50, 0x11);
  EXPECT_EQ(store.Get(7).lsn, 100u);
  // Provisional but different version: no-op too.
  store.ApplySteal(7, 150, 0xBB, 9, 100, 0xAA);
  store.ApplyUndo(7, 140, 100, 0xAA);
  EXPECT_EQ(store.Get(7).lsn, 150u);
  EXPECT_TRUE(store.Get(7).provisional);
  EXPECT_EQ(store.undos_applied(), 0);
}

TEST(StableStoreTest, NewerCommitOverwritesProvisional) {
  StableStore store;
  store.ApplySteal(7, 150, 0xBB, 9, 0, 0);
  store.ApplyFlush(7, 200, 0xCC);  // a later committed version wins
  EXPECT_FALSE(store.Get(7).provisional);
  EXPECT_EQ(store.Get(7).lsn, 200u);
}

TEST(StableStoreTest, CloneIsDeep) {
  StableStore store;
  store.ApplyFlush(1, 10, 100);
  StableStore snapshot = store.Clone();
  store.ApplyFlush(1, 20, 200);
  store.ApplyFlush(2, 5, 50);
  EXPECT_EQ(snapshot.Get(1).lsn, 10u);
  EXPECT_EQ(snapshot.materialized_objects(), 1u);
}

}  // namespace
}  // namespace db
}  // namespace elog
