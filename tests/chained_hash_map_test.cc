#include "util/chained_hash_map.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace elog {
namespace {

TEST(ChainedHashMapTest, EmptyMap) {
  ChainedHashMap<uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(1), nullptr);
  EXPECT_FALSE(map.Contains(1));
  EXPECT_FALSE(map.Erase(1));
}

TEST(ChainedHashMapTest, InsertAndFind) {
  ChainedHashMap<uint64_t, std::string> map;
  auto [value, inserted] = map.Insert(42, "answer");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*value, "answer");
  ASSERT_NE(map.Find(42), nullptr);
  EXPECT_EQ(*map.Find(42), "answer");
  EXPECT_EQ(map.size(), 1u);
}

TEST(ChainedHashMapTest, DuplicateInsertReturnsExisting) {
  ChainedHashMap<uint64_t, int> map;
  map.Insert(5, 100);
  auto [value, inserted] = map.Insert(5, 999);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*value, 100);  // original survives
  EXPECT_EQ(map.size(), 1u);
}

TEST(ChainedHashMapTest, ValuePointersAreStableAcrossGrowth) {
  // Node-based chaining must not invalidate entry pointers on rehash —
  // the log manager holds LotEntry/LttEntry pointers across inserts.
  ChainedHashMap<uint64_t, int> map(4);
  auto [first, inserted] = map.Insert(0, 1234);
  ASSERT_TRUE(inserted);
  for (uint64_t i = 1; i < 1000; ++i) map.Insert(i, static_cast<int>(i));
  EXPECT_EQ(*first, 1234);
  EXPECT_EQ(map.Find(0), first);
}

TEST(ChainedHashMapTest, EraseRemoves) {
  ChainedHashMap<uint64_t, int> map;
  map.Insert(1, 10);
  map.Insert(2, 20);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_EQ(map.Find(1), nullptr);
  EXPECT_NE(map.Find(2), nullptr);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_FALSE(map.Erase(1));
}

TEST(ChainedHashMapTest, GrowsBeyondInitialBuckets) {
  ChainedHashMap<uint64_t, uint64_t> map(4);
  for (uint64_t i = 0; i < 10000; ++i) map.Insert(i, i * 2);
  EXPECT_EQ(map.size(), 10000u);
  EXPECT_GE(map.bucket_count(), 10000u);  // load factor kept <= 1
  for (uint64_t i = 0; i < 10000; i += 97) {
    ASSERT_NE(map.Find(i), nullptr);
    EXPECT_EQ(*map.Find(i), i * 2);
  }
}

TEST(ChainedHashMapTest, SequentialKeysSpreadAcrossBuckets) {
  // Sequential tids/oids with identity std::hash must still chain
  // shallowly thanks to the mixer.
  ChainedHashMap<uint64_t, int> map(1024);
  for (uint64_t i = 0; i < 512; ++i) map.Insert(i, 0);
  // With 1024 buckets and 512 well-mixed keys, a bucket with 8+ entries
  // would indicate broken mixing. Probe indirectly: erase+find all keys.
  for (uint64_t i = 0; i < 512; ++i) EXPECT_TRUE(map.Contains(i));
}

TEST(ChainedHashMapTest, ForEachVisitsAllOnce) {
  ChainedHashMap<uint64_t, int> map;
  for (uint64_t i = 0; i < 100; ++i) map.Insert(i, 1);
  std::set<uint64_t> seen;
  int total = 0;
  map.ForEach([&](uint64_t key, int& value) {
    seen.insert(key);
    total += value;
  });
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(total, 100);
}

TEST(ChainedHashMapTest, ForEachCanMutateValues) {
  ChainedHashMap<uint64_t, int> map;
  map.Insert(1, 10);
  map.Insert(2, 20);
  map.ForEach([](uint64_t, int& value) { value += 1; });
  EXPECT_EQ(*map.Find(1), 11);
  EXPECT_EQ(*map.Find(2), 21);
}

TEST(ChainedHashMapTest, ClearEmptiesMap) {
  ChainedHashMap<uint64_t, int> map;
  for (uint64_t i = 0; i < 50; ++i) map.Insert(i, 0);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);
  map.Insert(7, 70);  // usable after Clear
  EXPECT_EQ(*map.Find(7), 70);
}

TEST(ChainedHashMapTest, InsertEraseChurn) {
  // The LTT's life: constant insert/erase as transactions come and go.
  ChainedHashMap<uint64_t, uint64_t> map;
  for (uint64_t round = 0; round < 50; ++round) {
    for (uint64_t i = 0; i < 200; ++i) map.Insert(round * 200 + i, i);
    for (uint64_t i = 0; i < 200; ++i) {
      EXPECT_TRUE(map.Erase(round * 200 + i));
    }
  }
  EXPECT_TRUE(map.empty());
}

TEST(ChainedHashMapTest, StringKeys) {
  ChainedHashMap<std::string, int> map;
  map.Insert("alpha", 1);
  map.Insert("beta", 2);
  EXPECT_EQ(*map.Find("alpha"), 1);
  EXPECT_EQ(*map.Find("beta"), 2);
  EXPECT_EQ(map.Find("gamma"), nullptr);
}

}  // namespace
}  // namespace elog
