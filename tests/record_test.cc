#include "wal/record.h"

#include <gtest/gtest.h>

#include <set>

namespace elog {
namespace wal {
namespace {

TEST(LogRecordTest, BeginFactory) {
  LogRecord record = LogRecord::MakeBegin(7, 100);
  EXPECT_EQ(record.type, RecordType::kBegin);
  EXPECT_EQ(record.tid, 7u);
  EXPECT_EQ(record.lsn, 100u);
  EXPECT_EQ(record.logged_size, kTxRecordBytes);
  EXPECT_TRUE(record.is_tx());
  EXPECT_FALSE(record.is_data());
}

TEST(LogRecordTest, CommitAndAbortFactories) {
  EXPECT_EQ(LogRecord::MakeCommit(1, 2).type, RecordType::kCommit);
  EXPECT_EQ(LogRecord::MakeAbort(1, 2).type, RecordType::kAbort);
  EXPECT_EQ(LogRecord::MakeCommit(1, 2).logged_size, 8u);
}

TEST(LogRecordTest, DataFactory) {
  LogRecord record = LogRecord::MakeData(3, 50, 12345, 100, 0xfeed);
  EXPECT_EQ(record.type, RecordType::kData);
  EXPECT_TRUE(record.is_data());
  EXPECT_EQ(record.oid, 12345u);
  EXPECT_EQ(record.logged_size, 100u);
  EXPECT_EQ(record.value_digest, 0xfeedu);
}

TEST(LogRecordTest, ToStringMentionsTypeAndIds) {
  LogRecord record = LogRecord::MakeData(3, 50, 12345, 100, 0);
  std::string text = record.ToString();
  EXPECT_NE(text.find("DATA"), std::string::npos);
  EXPECT_NE(text.find("12345"), std::string::npos);
  EXPECT_NE(LogRecord::MakeCommit(9, 1).ToString().find("COMMIT"),
            std::string::npos);
}

TEST(LogRecordTest, TypeNames) {
  EXPECT_STREQ(RecordTypeToString(RecordType::kBegin), "BEGIN");
  EXPECT_STREQ(RecordTypeToString(RecordType::kCommit), "COMMIT");
  EXPECT_STREQ(RecordTypeToString(RecordType::kAbort), "ABORT");
  EXPECT_STREQ(RecordTypeToString(RecordType::kData), "DATA");
}

TEST(ValueDigestTest, DeterministicAndDiscriminating) {
  EXPECT_EQ(ComputeValueDigest(1, 2, 3), ComputeValueDigest(1, 2, 3));
  std::set<uint64_t> digests;
  for (TxId tid = 0; tid < 10; ++tid) {
    for (Oid oid = 0; oid < 10; ++oid) {
      for (Lsn lsn = 0; lsn < 10; ++lsn) {
        digests.insert(ComputeValueDigest(tid, oid, lsn));
      }
    }
  }
  EXPECT_EQ(digests.size(), 1000u);  // no collisions in a small cube
}

TEST(LogRecordDeathTest, ZeroSizeDataRejected) {
  EXPECT_DEATH(LogRecord::MakeData(1, 2, 3, 0, 0), "");
}

}  // namespace
}  // namespace wal
}  // namespace elog
