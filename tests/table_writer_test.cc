#include "util/table_writer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace elog {
namespace {

TEST(TableWriterTest, PrintsHeaderAndRule) {
  TableWriter table({"a", "bb"});
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("bb"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TableWriterTest, AlignsColumns) {
  TableWriter table({"col", "x"});
  table.AddRow({"verylongvalue", "1"});
  table.AddRow({"s", "2"});
  std::ostringstream out;
  table.Print(out);
  std::istringstream lines(out.str());
  std::string header, rule, row1, row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  // The second column starts at the same offset on both rows.
  EXPECT_EQ(row1.find(" 1"), row2.find(" 2"));
}

TEST(TableWriterTest, NumericRowFormatting) {
  TableWriter table({"x", "y"});
  table.AddNumericRow({1.0, 2.5});
  EXPECT_EQ(table.num_rows(), 1u);
  std::ostringstream out;
  table.WriteCsv(out);
  EXPECT_EQ(out.str(), "x,y\n1,2.5\n");
}

TEST(TableWriterTest, CsvEscaping) {
  TableWriter table({"name", "note"});
  table.AddRow({"a,b", "say \"hi\""});
  table.AddRow({"plain", "multi\nline"});
  std::ostringstream out;
  table.WriteCsv(out);
  std::string csv = out.str();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
}

TEST(TableWriterTest, EmptyTableCsvHasOnlyHeader) {
  TableWriter table({"only", "header"});
  std::ostringstream out;
  table.WriteCsv(out);
  EXPECT_EQ(out.str(), "only,header\n");
}

TEST(TableWriterDeathTest, RowWidthMismatchChecks) {
  TableWriter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

}  // namespace
}  // namespace elog
