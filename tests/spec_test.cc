#include "workload/spec.h"

#include <gtest/gtest.h>

namespace elog {
namespace workload {
namespace {

TEST(WorkloadSpecTest, PaperMixValidates) {
  for (double fraction : {0.0, 0.05, 0.4, 1.0}) {
    WorkloadSpec spec = PaperMix(fraction);
    EXPECT_TRUE(spec.Validate().ok()) << fraction;
  }
}

TEST(WorkloadSpecTest, PaperMixShape) {
  WorkloadSpec spec = PaperMix(0.05);
  ASSERT_EQ(spec.types.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.types[0].probability, 0.95);
  EXPECT_EQ(spec.types[0].lifetime, SecondsToSimTime(1));
  EXPECT_EQ(spec.types[0].num_data_records, 2u);
  EXPECT_EQ(spec.types[0].data_record_bytes, 100u);
  EXPECT_DOUBLE_EQ(spec.types[1].probability, 0.05);
  EXPECT_EQ(spec.types[1].lifetime, SecondsToSimTime(10));
  EXPECT_EQ(spec.types[1].num_data_records, 4u);
  EXPECT_EQ(spec.arrival_rate_tps, 100.0);
  EXPECT_EQ(spec.runtime, SecondsToSimTime(500));
  EXPECT_EQ(spec.num_objects, 10'000'000u);
}

TEST(WorkloadSpecTest, UpdateRateMatchesPaper) {
  // §4: "the average number of updates per second rises from 210 to 280"
  // as the 10 s fraction goes from 5% to 40%.
  EXPECT_DOUBLE_EQ(PaperMix(0.05).ExpectedUpdateRate(), 210.0);
  EXPECT_DOUBLE_EQ(PaperMix(0.40).ExpectedUpdateRate(), 280.0);
}

TEST(WorkloadSpecTest, LogByteRate) {
  // At 5%: 210 data records x 100 B + 100 tx x 16 B = 22.6 KB/s.
  EXPECT_DOUBLE_EQ(PaperMix(0.05).ExpectedLogBytesPerSecond(), 22600.0);
}

TEST(WorkloadSpecTest, ActiveTransactionsLittlesLaw) {
  // 5%: 95 x 1 s + 5 x 10 s at 100 TPS = 145 concurrent on average.
  EXPECT_DOUBLE_EQ(PaperMix(0.05).ExpectedActiveTransactions(), 145.0);
  EXPECT_DOUBLE_EQ(PaperMix(0.40).ExpectedActiveTransactions(), 460.0);
}

TEST(WorkloadSpecTest, RejectsEmptyTypes) {
  WorkloadSpec spec;
  spec.types.clear();
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(WorkloadSpecTest, RejectsBadProbabilitySum) {
  WorkloadSpec spec = PaperMix(0.05);
  spec.types[0].probability = 0.5;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(WorkloadSpecTest, RejectsNegativeProbability) {
  WorkloadSpec spec = PaperMix(0.05);
  spec.types[0].probability = -0.05;
  spec.types[1].probability = 1.05;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(WorkloadSpecTest, RejectsNonPositiveLifetime) {
  WorkloadSpec spec = PaperMix(0.0);
  spec.types[0].lifetime = 0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(WorkloadSpecTest, RejectsLifetimeNotExceedingEpsilon) {
  WorkloadSpec spec = PaperMix(0.0);
  spec.types[0].lifetime = spec.epsilon;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(WorkloadSpecTest, RejectsOversizedRecords) {
  WorkloadSpec spec = PaperMix(0.0);
  spec.types[0].data_record_bytes = 2001;  // exceeds block payload
  EXPECT_FALSE(spec.Validate().ok());
  spec.types[0].data_record_bytes = 2000;
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(WorkloadSpecTest, RejectsBadRates) {
  WorkloadSpec spec = PaperMix(0.05);
  spec.arrival_rate_tps = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = PaperMix(0.05);
  spec.runtime = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = PaperMix(0.05);
  spec.num_objects = 0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(WorkloadSpecTest, RejectsBadAbortProbability) {
  WorkloadSpec spec = PaperMix(0.05);
  spec.types[0].abort_probability = 1.5;
  EXPECT_FALSE(spec.Validate().ok());
}

}  // namespace
}  // namespace workload
}  // namespace elog
