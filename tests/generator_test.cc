// Tests the workload generator against a scripted fake sink, verifying
// the §3 transaction model timing (Figure 3 of the paper).

#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

namespace elog {
namespace workload {
namespace {

struct SinkEvent {
  enum Kind { kBegin, kUpdate, kCommit, kAbort } kind;
  TxId tid;
  Oid oid;
  uint32_t logged_size;
  SimTime when;
};

/// Fake sink: records the call stream; acknowledges commits after a fixed
/// delay (group-commit stand-in).
class RecordingSink : public TransactionSink {
 public:
  RecordingSink(sim::Simulator* simulator, SimTime ack_delay)
      : simulator_(simulator), ack_delay_(ack_delay) {}

  TxId BeginTransaction(const TransactionType& type) override {
    TxId tid = next_tid_++;
    types_[tid] = type.name;
    events_.push_back({SinkEvent::kBegin, tid, 0, 0, simulator_->Now()});
    return tid;
  }

  void WriteUpdate(TxId tid, Oid oid, uint32_t logged_size) override {
    events_.push_back(
        {SinkEvent::kUpdate, tid, oid, logged_size, simulator_->Now()});
  }

  void Commit(TxId tid, CommitCallback on_durable) override {
    events_.push_back({SinkEvent::kCommit, tid, 0, 0, simulator_->Now()});
    // Boxed: a CommitCallback is larger than an event's inline slot.
    simulator_->ScheduleAfter(
        ack_delay_,
        [tid, cb = std::make_unique<CommitCallback>(std::move(on_durable))] {
          (*cb)(tid);
        });
  }

  void Abort(TxId tid) override {
    events_.push_back({SinkEvent::kAbort, tid, 0, 0, simulator_->Now()});
  }

  std::vector<SinkEvent> events_;
  std::map<TxId, std::string> types_;
  sim::Simulator* simulator_;
  SimTime ack_delay_;
  TxId next_tid_ = 1;
};

WorkloadSpec OneShotSpec(SimTime lifetime, uint32_t records) {
  WorkloadSpec spec;
  TransactionType type;
  type.name = "only";
  type.probability = 1.0;
  type.lifetime = lifetime;
  type.num_data_records = records;
  type.data_record_bytes = 100;
  spec.types = {type};
  spec.arrival_rate_tps = 1.0;
  spec.runtime = kMillisecond;  // a single arrival at t=0
  spec.num_objects = 1000;
  spec.seed = 7;
  return spec;
}

TEST(GeneratorTest, Figure3RecordSchedule) {
  // T = 1 s, N = 2, ε = 1 ms: BEGIN at 0; data records at (T−ε)/2 and
  // T−ε; COMMIT at T.
  sim::Simulator sim;
  RecordingSink sink(&sim, 10 * kMillisecond);
  WorkloadGenerator generator(&sim, OneShotSpec(SecondsToSimTime(1), 2),
                              &sink, nullptr);
  generator.Start();
  sim.Run();

  ASSERT_EQ(sink.events_.size(), 4u);
  EXPECT_EQ(sink.events_[0].kind, SinkEvent::kBegin);
  EXPECT_EQ(sink.events_[0].when, 0);
  EXPECT_EQ(sink.events_[1].kind, SinkEvent::kUpdate);
  EXPECT_EQ(sink.events_[1].when, (SecondsToSimTime(1) - kMillisecond) / 2);
  EXPECT_EQ(sink.events_[2].kind, SinkEvent::kUpdate);
  EXPECT_EQ(sink.events_[2].when, SecondsToSimTime(1) - kMillisecond);
  EXPECT_EQ(sink.events_[3].kind, SinkEvent::kCommit);
  EXPECT_EQ(sink.events_[3].when, SecondsToSimTime(1));
}

TEST(GeneratorTest, CommitLatencyIsT4MinusT3) {
  sim::Simulator sim;
  RecordingSink sink(&sim, 42 * kMillisecond);
  WorkloadGenerator generator(&sim, OneShotSpec(SecondsToSimTime(1), 1),
                              &sink, nullptr);
  generator.Start();
  sim.Run();
  EXPECT_EQ(generator.committed(), 1);
  EXPECT_EQ(generator.commit_latency().count(), 1u);
  EXPECT_DOUBLE_EQ(generator.commit_latency().mean(),
                   42.0 * kMillisecond);
}

TEST(GeneratorTest, DeterministicArrivalTimes) {
  sim::Simulator sim;
  RecordingSink sink(&sim, kMillisecond);
  WorkloadSpec spec = OneShotSpec(10 * kMillisecond, 0);
  spec.arrival_rate_tps = 100.0;           // every 10 ms
  spec.runtime = 100 * kMillisecond;       // 10 arrivals: t=0..90 ms
  WorkloadGenerator generator(&sim, spec, &sink, nullptr);
  generator.Start();
  sim.Run();
  EXPECT_EQ(generator.started(), 10);
  std::vector<SimTime> begin_times;
  for (const SinkEvent& event : sink.events_) {
    if (event.kind == SinkEvent::kBegin) begin_times.push_back(event.when);
  }
  ASSERT_EQ(begin_times.size(), 10u);
  for (size_t i = 0; i < begin_times.size(); ++i) {
    EXPECT_EQ(begin_times[i], static_cast<SimTime>(i) * 10 * kMillisecond);
  }
}

TEST(GeneratorTest, ZeroRecordTransactionJustBeginsAndCommits) {
  sim::Simulator sim;
  RecordingSink sink(&sim, kMillisecond);
  WorkloadGenerator generator(&sim, OneShotSpec(50 * kMillisecond, 0), &sink,
                              nullptr);
  generator.Start();
  sim.Run();
  ASSERT_EQ(sink.events_.size(), 2u);
  EXPECT_EQ(sink.events_[0].kind, SinkEvent::kBegin);
  EXPECT_EQ(sink.events_[1].kind, SinkEvent::kCommit);
  EXPECT_EQ(generator.updates_written(), 0);
}

TEST(GeneratorTest, MixFollowsPdf) {
  sim::Simulator sim;
  RecordingSink sink(&sim, kMillisecond);
  WorkloadSpec spec = PaperMix(0.25);
  spec.arrival_rate_tps = 1000;
  spec.runtime = SecondsToSimTime(10);  // 10000 transactions
  spec.num_objects = 10'000'000;
  WorkloadGenerator generator(&sim, spec, &sink, nullptr);
  generator.Start();
  sim.RunUntil(spec.runtime);  // enough to classify all begins
  int long_count = 0;
  int total = 0;
  for (const auto& [tid, name] : sink.types_) {
    ++total;
    if (name == "long-10s") ++long_count;
  }
  EXPECT_EQ(total, 10000);
  EXPECT_NEAR(long_count / 10000.0, 0.25, 0.02);
}

TEST(GeneratorTest, OidsUniqueAmongActive) {
  sim::Simulator sim;
  RecordingSink sink(&sim, kMillisecond);
  WorkloadSpec spec = PaperMix(0.5);
  spec.arrival_rate_tps = 200;
  spec.runtime = SecondsToSimTime(5);
  spec.num_objects = 2000;  // small space forces potential collisions
  WorkloadGenerator generator(&sim, spec, &sink, nullptr);
  generator.Start();
  sim.Run();
  // Replay the event stream tracking held oids: no oid may be updated
  // again while its holder is still active (kill/commit releases).
  std::map<Oid, TxId> held_by;
  std::map<TxId, std::vector<Oid>> tx_oids;
  for (const SinkEvent& event : sink.events_) {
    switch (event.kind) {
      case SinkEvent::kUpdate: {
        auto it = held_by.find(event.oid);
        EXPECT_TRUE(it == held_by.end())
            << "oid " << event.oid << " updated while held";
        held_by[event.oid] = event.tid;
        tx_oids[event.tid].push_back(event.oid);
        break;
      }
      case SinkEvent::kCommit: {
        // Held until the ack fires 1 ms later; approximate by releasing
        // at commit: adequate because arrivals are 5 ms apart.
        for (Oid oid : tx_oids[event.tid]) held_by.erase(oid);
        break;
      }
      default:
        break;
    }
  }
}

TEST(GeneratorTest, AbortProbabilityRespected) {
  sim::Simulator sim;
  RecordingSink sink(&sim, kMillisecond);
  WorkloadSpec spec = OneShotSpec(10 * kMillisecond, 1);
  spec.types[0].abort_probability = 1.0;
  spec.arrival_rate_tps = 100;
  spec.runtime = SecondsToSimTime(1);
  WorkloadGenerator generator(&sim, spec, &sink, nullptr);
  generator.Start();
  sim.Run();
  EXPECT_EQ(generator.aborted(), 100);
  EXPECT_EQ(generator.committed(), 0);
}

TEST(GeneratorTest, KillCancelsRemainingWork) {
  sim::Simulator sim;
  RecordingSink sink(&sim, kMillisecond);
  WorkloadSpec spec = OneShotSpec(SecondsToSimTime(1), 4);
  WorkloadGenerator generator(&sim, spec, &sink, nullptr);
  generator.Start();
  // Kill the transaction just after its first data record (~250 ms).
  sim.RunUntil(300 * kMillisecond);
  ASSERT_EQ(generator.active(), 1u);
  generator.NotifyKilled(1);
  sim.Run();
  EXPECT_EQ(generator.killed(), 1);
  EXPECT_EQ(generator.active(), 0u);
  // Only BEGIN + 1 update happened; no commit, no further updates.
  int updates = 0;
  bool committed = false;
  for (const SinkEvent& event : sink.events_) {
    if (event.kind == SinkEvent::kUpdate) ++updates;
    if (event.kind == SinkEvent::kCommit) committed = true;
  }
  EXPECT_EQ(updates, 1);
  EXPECT_FALSE(committed);
}

TEST(GeneratorTest, MetricsCountersExported) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  RecordingSink sink(&sim, kMillisecond);
  WorkloadSpec spec = OneShotSpec(10 * kMillisecond, 2);
  spec.arrival_rate_tps = 10;
  spec.runtime = SecondsToSimTime(1);
  WorkloadGenerator generator(&sim, spec, &sink, &metrics);
  generator.Start();
  sim.Run();
  EXPECT_EQ(metrics.GetCounter("workload.started")->value(), 10);
  EXPECT_EQ(metrics.GetCounter("workload.updates")->value(), 20);
  EXPECT_EQ(metrics.GetCounter("workload.committed")->value(), 10);
}

TEST(GeneratorTest, PoissonArrivalsMatchRateAndVary) {
  sim::Simulator sim;
  RecordingSink sink(&sim, kMillisecond);
  WorkloadSpec spec = OneShotSpec(10 * kMillisecond, 0);
  spec.arrival_process = ArrivalProcess::kPoisson;
  spec.arrival_rate_tps = 100.0;
  spec.runtime = SecondsToSimTime(100);
  WorkloadGenerator generator(&sim, spec, &sink, nullptr);
  generator.Start();
  sim.Run();
  // Rate: expected ~10000 arrivals over 100 s; Poisson sd ~100.
  EXPECT_NEAR(generator.started(), 10000, 500);
  // Irregular gaps: with deterministic arrivals every gap is 10 ms.
  std::vector<SimTime> begins;
  for (const SinkEvent& event : sink.events_) {
    if (event.kind == SinkEvent::kBegin) begins.push_back(event.when);
  }
  int irregular = 0;
  for (size_t i = 1; i < begins.size(); ++i) {
    if (begins[i] - begins[i - 1] != 10 * kMillisecond) ++irregular;
  }
  EXPECT_GT(irregular, static_cast<int>(begins.size()) / 2);
}

TEST(GeneratorTest, PoissonArrivalsStrictlyOrderedAndDeterministic) {
  auto run = [] {
    sim::Simulator sim;
    RecordingSink sink(&sim, kMillisecond);
    WorkloadSpec spec = OneShotSpec(10 * kMillisecond, 0);
    spec.arrival_process = ArrivalProcess::kPoisson;
    spec.arrival_rate_tps = 500.0;
    spec.runtime = SecondsToSimTime(5);
    spec.seed = 99;
    WorkloadGenerator generator(&sim, spec, &sink, nullptr);
    generator.Start();
    sim.Run();
    std::vector<SimTime> begins;
    for (const SinkEvent& event : sink.events_) {
      if (event.kind == SinkEvent::kBegin) begins.push_back(event.when);
    }
    return begins;
  };
  std::vector<SimTime> a = run();
  std::vector<SimTime> b = run();
  EXPECT_EQ(a, b);  // same seed, same arrival stream
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GT(a[i], a[i - 1]);
}

TEST(GeneratorTest, OnOffArrivalsRespectDutyCycleAndMeanRate) {
  sim::Simulator sim;
  RecordingSink sink(&sim, kMillisecond);
  WorkloadSpec spec = OneShotSpec(10 * kMillisecond, 0);
  spec.arrival_process = ArrivalProcess::kOnOff;
  spec.arrival_rate_tps = 100.0;
  spec.on_off_period = SecondsToSimTime(1);
  spec.on_off_duty = 0.25;
  spec.on_off_burst_factor = 4.0;  // burst rate 400 tps, mean 100 tps
  spec.runtime = SecondsToSimTime(100);
  WorkloadGenerator generator(&sim, spec, &sink, nullptr);
  generator.Start();
  sim.Run();
  // Mean rate: ~10000 arrivals over 100 s (Poisson sd ~100).
  EXPECT_NEAR(generator.started(), 10000, 500);
  // Every arrival lands inside an ON window: the first quarter of its
  // period (one tie-broken +1 µs straggler per window boundary allowed).
  const SimTime period = spec.on_off_period;
  const SimTime on_len = period / 4;
  for (const SinkEvent& event : sink.events_) {
    if (event.kind != SinkEvent::kBegin) continue;
    EXPECT_LE(event.when % period, on_len + 1)
        << "arrival at " << event.when << " outside the ON window";
  }
}

TEST(GeneratorTest, OnOffArrivalsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    sim::Simulator sim;
    RecordingSink sink(&sim, kMillisecond);
    WorkloadSpec spec = OneShotSpec(10 * kMillisecond, 0);
    spec.arrival_process = ArrivalProcess::kOnOff;
    spec.arrival_rate_tps = 300.0;
    spec.on_off_duty = 1.0 / 3.0;
    spec.on_off_burst_factor = 3.0;
    spec.runtime = SecondsToSimTime(5);
    spec.seed = seed;
    WorkloadGenerator generator(&sim, spec, &sink, nullptr);
    generator.Start();
    sim.Run();
    std::vector<SimTime> begins;
    for (const SinkEvent& event : sink.events_) {
      if (event.kind == SinkEvent::kBegin) begins.push_back(event.when);
    }
    return begins;
  };
  std::vector<SimTime> a = run(42);
  std::vector<SimTime> b = run(42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, run(43));
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GT(a[i], a[i - 1]);
}

TEST(GeneratorTest, OnOffKnobsInertForOtherProcesses) {
  // The on_off_* fields are read only under ArrivalProcess::kOnOff, and
  // the burst draws come from a dedicated RNG stream — a Poisson run's
  // arrivals and oid draws are untouched by setting them.
  auto run = [](double burst_factor) {
    sim::Simulator sim;
    RecordingSink sink(&sim, kMillisecond);
    WorkloadSpec spec = PaperMix(0.3);
    spec.arrival_process = ArrivalProcess::kPoisson;
    spec.arrival_rate_tps = 50;
    spec.runtime = SecondsToSimTime(2);
    spec.on_off_burst_factor = burst_factor;
    spec.on_off_duty = burst_factor > 2.0 ? 0.1 : 0.5;
    WorkloadGenerator generator(&sim, spec, &sink, nullptr);
    generator.Start();
    sim.Run();
    std::vector<std::pair<SimTime, Oid>> stream;
    for (const SinkEvent& event : sink.events_) {
      stream.emplace_back(event.when, event.oid);
    }
    return stream;
  };
  EXPECT_EQ(run(2.0), run(8.0));
}

TEST(GeneratorTest, SameSeedSameStream) {
  auto run = [](uint64_t seed) {
    sim::Simulator sim;
    RecordingSink sink(&sim, kMillisecond);
    WorkloadSpec spec = PaperMix(0.3);
    spec.arrival_rate_tps = 50;
    spec.runtime = SecondsToSimTime(2);
    spec.seed = seed;
    WorkloadGenerator generator(&sim, spec, &sink, nullptr);
    generator.Start();
    sim.Run();
    std::vector<std::pair<SimTime, Oid>> stream;
    for (const SinkEvent& event : sink.events_) {
      if (event.kind == SinkEvent::kUpdate) {
        stream.emplace_back(event.when, event.oid);
      }
    }
    return stream;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

}  // namespace
}  // namespace workload
}  // namespace elog
