#include "util/intrusive_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace elog {
namespace {

struct Item {
  explicit Item(int v) : value(v) {}
  ListNode link;
  int value;
};

using List = IntrusiveCircularList<Item, &Item::link>;

std::vector<int> Values(const List& list) {
  std::vector<int> out;
  for (const Item& item : list) out.push_back(item.value);
  return out;
}

TEST(IntrusiveListTest, EmptyList) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
}

TEST(IntrusiveListTest, SingleElement) {
  List list;
  Item a(1);
  list.PushBack(&a);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.front(), &a);
  EXPECT_EQ(list.back(), &a);
  // Circular: next/prev of a single node is itself.
  EXPECT_EQ(list.Next(&a), &a);
  EXPECT_EQ(list.Prev(&a), &a);
}

TEST(IntrusiveListTest, PushBackPreservesOrder) {
  List list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(list.front(), &a);
  EXPECT_EQ(list.back(), &c);
}

TEST(IntrusiveListTest, CircularWrapAround) {
  // The paper's h_i trick: the tail is the head's predecessor.
  List list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  EXPECT_EQ(list.Prev(list.front()), list.back());
  EXPECT_EQ(list.Next(list.back()), list.front());
}

TEST(IntrusiveListTest, PushFront) {
  List list;
  Item a(1), b(2), c(3);
  list.PushBack(&b);
  list.PushBack(&c);
  list.PushFront(&a);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(list.front(), &a);
}

TEST(IntrusiveListTest, RemoveMiddle) {
  List list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Remove(&b);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 3}));
  EXPECT_FALSE(b.link.linked());
}

TEST(IntrusiveListTest, RemoveHeadAdvancesFront) {
  List list;
  Item a(1), b(2);
  list.PushBack(&a);
  list.PushBack(&b);
  list.Remove(&a);
  EXPECT_EQ(list.front(), &b);
  EXPECT_EQ(list.size(), 1u);
}

TEST(IntrusiveListTest, RemoveLastElementEmptiesList) {
  List list;
  Item a(1);
  list.PushBack(&a);
  list.Remove(&a);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.front(), nullptr);
}

TEST(IntrusiveListTest, RemoveTailUpdatesBack) {
  List list;
  Item a(1), b(2);
  list.PushBack(&a);
  list.PushBack(&b);
  list.Remove(&b);
  EXPECT_EQ(list.back(), &a);
}

TEST(IntrusiveListTest, MoveToBackIsRecirculation) {
  List list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.MoveToBack(&a);  // head record recirculated to the tail
  EXPECT_EQ(Values(list), (std::vector<int>{2, 3, 1}));
  EXPECT_EQ(list.front(), &b);
  EXPECT_EQ(list.back(), &a);
}

TEST(IntrusiveListTest, ReinsertAfterRemove) {
  List list;
  Item a(1), b(2);
  list.PushBack(&a);
  list.PushBack(&b);
  list.Remove(&a);
  list.PushBack(&a);
  EXPECT_EQ(Values(list), (std::vector<int>{2, 1}));
}

TEST(IntrusiveListTest, ManyElementsStressOrder) {
  List list;
  std::vector<Item> items;
  items.reserve(1000);
  for (int i = 0; i < 1000; ++i) items.emplace_back(i);
  for (auto& item : items) list.PushBack(&item);
  EXPECT_EQ(list.size(), 1000u);
  // Remove evens, then verify odds remain in order.
  for (auto& item : items) {
    if (item.value % 2 == 0) list.Remove(&item);
  }
  std::vector<int> values = Values(list);
  ASSERT_EQ(values.size(), 500u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(2 * i + 1));
  }
}

TEST(IntrusiveListDeathTest, DoublePushChecks) {
  List list;
  Item a(1);
  list.PushBack(&a);
  EXPECT_DEATH(list.PushBack(&a), "already on a list");
}

TEST(IntrusiveListDeathTest, RemoveUnlinkedChecks) {
  List list;
  Item a(1);
  EXPECT_DEATH(list.Remove(&a), "not on a list");
}

}  // namespace
}  // namespace elog
