// AdmissionController unit tests: watermark hysteresis, byte-probe
// saturation, deferred-queue bookkeeping, shedding degradation, and the
// determinism contract (identical inputs ⇒ identical decision streams).

#include "overload/admission_controller.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/metrics.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace elog {
namespace overload {
namespace {

using Decision = workload::AdmissionPolicy::Decision;

class AdmissionControllerTest : public ::testing::Test {
 protected:
  AdmissionConfig SmallConfig() {
    AdmissionConfig config;
    config.enabled = true;
    config.high_watermark = 0.80;
    config.low_watermark = 0.50;
    config.max_defer_attempts = 3;
    config.max_deferred = 2;
    return config;
  }

  sim::Simulator sim_;
  sim::MetricsRegistry metrics_;
};

TEST_F(AdmissionControllerTest, ConfigValidation) {
  AdmissionConfig config;
  EXPECT_TRUE(config.Validate().ok());  // defaults are valid
  config.enabled = true;
  EXPECT_TRUE(config.Validate().ok());
  config.high_watermark = 0.5;
  config.low_watermark = 0.6;  // low above high breaks hysteresis
  EXPECT_FALSE(config.Validate().ok());
  config.low_watermark = 0.6;  // disabled configs skip validation
  config.enabled = false;
  EXPECT_TRUE(config.Validate().ok());
}

TEST_F(AdmissionControllerTest, AdmitsWithNothingWatched) {
  AdmissionController controller(&sim_, SmallConfig(), &metrics_);
  EXPECT_EQ(controller.Consider(0), Decision::kAdmit);
  EXPECT_EQ(controller.admitted(), 1);
  EXPECT_FALSE(controller.saturated());
}

TEST_F(AdmissionControllerTest, NullGaugeIsIgnored) {
  AdmissionController controller(&sim_, SmallConfig(), &metrics_);
  controller.WatchOccupancy(nullptr, 10);
  EXPECT_EQ(controller.Consider(0), Decision::kAdmit);
}

TEST_F(AdmissionControllerTest, HysteresisEntersHighExitsLow) {
  AdmissionController controller(&sim_, SmallConfig(), &metrics_);
  sim::Gauge* occupancy = metrics_.GetGauge("gen0.occupancy");
  controller.WatchOccupancy(occupancy, 10);

  occupancy->Set(sim_.Now(), 7.0);  // 0.70: below high watermark
  EXPECT_EQ(controller.Consider(0), Decision::kAdmit);
  EXPECT_FALSE(controller.saturated());

  occupancy->Set(sim_.Now(), 8.0);  // 0.80: at high watermark -> enter
  EXPECT_EQ(controller.Consider(0), Decision::kDelay);
  EXPECT_TRUE(controller.saturated());

  occupancy->Set(sim_.Now(), 6.0);  // 0.60: inside the band -> stay in
  EXPECT_EQ(controller.Consider(0), Decision::kDelay);
  EXPECT_TRUE(controller.saturated());

  occupancy->Set(sim_.Now(), 4.0);  // 0.40: below low watermark -> exit
  EXPECT_EQ(controller.Consider(0), Decision::kAdmit);
  EXPECT_FALSE(controller.saturated());

  occupancy->Set(sim_.Now(), 6.0);  // 0.60 from below: still out
  EXPECT_EQ(controller.Consider(0), Decision::kAdmit);
  EXPECT_FALSE(controller.saturated());
}

TEST_F(AdmissionControllerTest, AnyWatchedGaugeCanSaturate) {
  AdmissionController controller(&sim_, SmallConfig(), &metrics_);
  sim::Gauge* a = metrics_.GetGauge("gen0.occupancy");
  sim::Gauge* b = metrics_.GetGauge("gen1.occupancy");
  controller.WatchOccupancy(a, 10);
  controller.WatchOccupancy(b, 20);
  a->Set(sim_.Now(), 1.0);
  b->Set(sim_.Now(), 16.0);  // 0.80 of 20
  EXPECT_EQ(controller.Consider(0), Decision::kDelay);
}

TEST_F(AdmissionControllerTest, ByteProbeSaturates) {
  AdmissionConfig config = SmallConfig();
  config.max_inflight_log_bytes = 4096;
  AdmissionController controller(&sim_, config, &metrics_);
  int64_t queued = 0;
  controller.set_inflight_probe([&queued] { return queued; });

  queued = 4096;  // at the limit: not over
  EXPECT_EQ(controller.Consider(0), Decision::kAdmit);
  queued = 4097;  // over
  EXPECT_EQ(controller.Consider(0), Decision::kDelay);
  queued = 100;  // back under (no hysteresis band on bytes)
  EXPECT_EQ(controller.Consider(0), Decision::kAdmit);
}

TEST_F(AdmissionControllerTest, DeferredQueueFillsThenSheds) {
  AdmissionController controller(&sim_, SmallConfig(), &metrics_);
  sim::Gauge* occupancy = metrics_.GetGauge("gen0.occupancy");
  controller.WatchOccupancy(occupancy, 10);
  occupancy->Set(sim_.Now(), 9.0);

  // max_deferred = 2: two fresh arrivals defer, the third sheds.
  EXPECT_EQ(controller.Consider(0), Decision::kDelay);
  EXPECT_EQ(controller.Consider(0), Decision::kDelay);
  EXPECT_EQ(controller.deferred_depth(), 2);
  EXPECT_EQ(controller.Consider(0), Decision::kShed);
  EXPECT_EQ(controller.deferred_depth(), 2);  // shed arrivals never queued

  // A retry that finds the valve open leaves the queue.
  occupancy->Set(sim_.Now(), 1.0);
  EXPECT_EQ(controller.Consider(1), Decision::kAdmit);
  EXPECT_EQ(controller.deferred_depth(), 1);

  EXPECT_EQ(controller.delayed(), 2);
  EXPECT_EQ(controller.shed(), 1);
  EXPECT_EQ(controller.admitted(), 1);
}

TEST_F(AdmissionControllerTest, RetriesExhaustIntoShed) {
  AdmissionController controller(&sim_, SmallConfig(), &metrics_);
  sim::Gauge* occupancy = metrics_.GetGauge("gen0.occupancy");
  controller.WatchOccupancy(occupancy, 10);
  occupancy->Set(sim_.Now(), 9.0);

  // One arrival deferred, then retried against a still-saturated valve:
  // attempts 1..2 defer again, attempt 3 (== max_defer_attempts) sheds
  // and leaves the queue.
  EXPECT_EQ(controller.Consider(0), Decision::kDelay);
  EXPECT_EQ(controller.Consider(1), Decision::kDelay);
  EXPECT_EQ(controller.Consider(2), Decision::kDelay);
  EXPECT_EQ(controller.deferred_depth(), 1);
  EXPECT_EQ(controller.Consider(3), Decision::kShed);
  EXPECT_EQ(controller.deferred_depth(), 0);
}

TEST_F(AdmissionControllerTest, ExportsOverloadMetrics) {
  AdmissionController controller(&sim_, SmallConfig(), &metrics_);
  sim::Gauge* occupancy = metrics_.GetGauge("gen0.occupancy");
  controller.WatchOccupancy(occupancy, 10);
  occupancy->Set(sim_.Now(), 9.0);
  (void)controller.Consider(0);
  EXPECT_EQ(metrics_.GetCounter("overload.delayed")->value(), 1);
  EXPECT_DOUBLE_EQ(metrics_.FindGauge("overload.saturated")->value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics_.FindGauge("overload.deferred_depth")->value(),
                   1.0);
}

// The determinism contract the bench and CI lean on: the controller
// draws no randomness, so an identical sequence of (gauge value, probe
// value, attempt) inputs produces an identical decision stream and
// identical counters.
TEST_F(AdmissionControllerTest, IdenticalInputsIdenticalDecisions) {
  auto run = [] {
    sim::Simulator sim;
    sim::MetricsRegistry metrics;
    AdmissionConfig config;
    config.enabled = true;
    config.high_watermark = 0.75;
    config.low_watermark = 0.40;
    config.max_inflight_log_bytes = 1000;
    config.max_defer_attempts = 2;
    config.max_deferred = 3;
    AdmissionController controller(&sim, config, &metrics);
    sim::Gauge* occupancy = metrics.GetGauge("gen0.occupancy");
    controller.WatchOccupancy(occupancy, 8);
    int64_t queued = 0;
    controller.set_inflight_probe([&queued] { return queued; });

    std::vector<int64_t> decisions;
    const struct {
      double occ;
      int64_t bytes;
      uint32_t attempt;
    } inputs[] = {
        {2, 0, 0},   {6, 0, 0},    {6, 2000, 0}, {6, 2000, 1},
        {7, 500, 0}, {7, 500, 1},  {7, 500, 2},  {3, 0, 1},
        {8, 0, 0},   {8, 0, 0},    {8, 0, 0},    {8, 0, 0},
        {1, 0, 1},   {1, 0, 2},
    };
    for (const auto& in : inputs) {
      occupancy->Set(sim.Now(), in.occ);
      queued = in.bytes;
      decisions.push_back(
          static_cast<int64_t>(controller.Consider(in.attempt)));
    }
    decisions.push_back(controller.admitted());
    decisions.push_back(controller.delayed());
    decisions.push_back(controller.shed());
    return decisions;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace overload
}  // namespace elog
