#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace elog {
namespace sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_FALSE(sim.HasPendingEvents());
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<SimTime> observed;
  sim.ScheduleAt(100, [&] { observed.push_back(sim.Now()); });
  sim.ScheduleAt(50, [&] { observed.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(observed, (std::vector<SimTime>{50, 100}));
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime inner_fire = -1;
  sim.ScheduleAt(10, [&] {
    sim.ScheduleAfter(5, [&] { inner_fire = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_fire, 15);
}

TEST(SimulatorTest, EventsCanCascade) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.ScheduleAfter(1, chain);
  };
  sim.ScheduleAt(0, chain);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), 99);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.ScheduleAt(30, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_TRUE(sim.HasPendingEvents());
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, RunUntilWithNoEventsAdvancesClock) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500);
}

TEST(SimulatorTest, RunUntilInclusiveOfDeadlineEvents) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(20, [&] { fired = true; });
  sim.RunUntil(20);
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.HasPendingEvents());
  // A later Run resumes.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(5, [&] { order.push_back(1); });
  sim.ScheduleAt(5, [&] { order.push_back(2); });
  sim.ScheduleAt(5, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, StopAfterEventsHaltsAtBudget) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(i, [&] { ++fired; });
  }
  sim.StopAfterEvents(4);
  sim.Run();
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.events_processed(), 4u);
  EXPECT_EQ(sim.Now(), 4);  // clock stops at the last processed event
  // The budget is absolute: a second Run with no new budget stays halted
  // until the budget is cleared.
  sim.StopAfterEvents(0);
  sim.Run();
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, StopAfterEventsCountsFromNow) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(i, [&] { ++fired; });
  }
  sim.StopAfterEvents(3);
  sim.Run();
  EXPECT_EQ(fired, 3);
  sim.StopAfterEvents(2);  // additional, relative to events_processed()
  sim.Run();
  EXPECT_EQ(fired, 5);
}

TEST(SimulatorTest, EventBudgetDoesNotFastForwardRunUntil) {
  Simulator sim;
  sim.ScheduleAt(10, [] {});
  sim.ScheduleAt(20, [] {});
  sim.StopAfterEvents(1);
  sim.RunUntil(1000);
  // Budget exhaustion must leave the clock at the halting event, not at
  // the deadline (the crash clock must be honest).
  EXPECT_EQ(sim.Now(), 10);
}

TEST(SimulatorDeathTest, SchedulingInThePastChecks) {
  Simulator sim;
  sim.ScheduleAt(100, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(50, [] {}), "");
}

TEST(SimulatorDeathTest, NegativeDelayChecks) {
  Simulator sim;
  EXPECT_DEATH(sim.ScheduleAfter(-1, [] {}), "");
}

}  // namespace
}  // namespace sim
}  // namespace elog
