// DuplexLogDevice unit tests: lockstep dispatch, merged-outcome
// classification (degraded writes, sole copies, silent double faults,
// dual failures), crash-capture visibility of half-landed writes,
// permanent drive death, and resilvering onto fresh media.

#include "disk/duplex_log_device.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault_injector.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "wal/block_format.h"

namespace elog {
namespace disk {
namespace {

constexpr SimTime kWrite = 15 * kMillisecond;

class DuplexLogDeviceTest : public ::testing::Test {
 protected:
  /// Builds devices with optional per-replica fault configs. Pass nullptr
  /// for a fault-free replica.
  void Build(const fault::FaultConfig* primary_faults,
             const fault::FaultConfig* mirror_faults,
             SimTime auto_resilver_delay = -1) {
    if (primary_faults != nullptr) {
      injector0_ =
          std::make_unique<fault::FaultInjector>(*primary_faults, 0);
    }
    if (mirror_faults != nullptr) {
      injector1_ = std::make_unique<fault::FaultInjector>(*mirror_faults, 1);
    }
    primary_ = std::make_unique<LogDevice>(&sim_, &storage0_, kWrite,
                                           &metrics_, injector0_.get());
    mirror_ =
        std::make_unique<LogDevice>(&sim_, &storage1_, kWrite, &metrics_,
                                    injector1_.get(), "log_device_mirror");
    duplex_ = std::make_unique<DuplexLogDevice>(
        &sim_, primary_.get(), mirror_.get(), &metrics_, auto_resilver_delay);
  }

  static wal::BlockImage Image(uint64_t seq) {
    const TxId tid = seq;
    return wal::EncodeBlock(0, seq,
                            {wal::LogRecord::MakeBegin(tid, seq * 10 + 1),
                             wal::LogRecord::MakeCommit(tid, seq * 10 + 2)});
  }

  void SubmitTracked(uint32_t slot, uint64_t seq) {
    LogWriteRequest request;
    request.address = {0, slot};
    request.image = Image(seq);
    request.on_complete = [this, slot](const Status& status) {
      completions_.push_back({slot, status.ok()});
    };
    duplex_->Submit(std::move(request));
  }

  sim::Simulator sim_;
  sim::MetricsRegistry metrics_;
  LogStorage storage0_{std::vector<uint32_t>{8}};
  LogStorage storage1_{std::vector<uint32_t>{8}};
  std::unique_ptr<fault::FaultInjector> injector0_;
  std::unique_ptr<fault::FaultInjector> injector1_;
  std::unique_ptr<LogDevice> primary_;
  std::unique_ptr<LogDevice> mirror_;
  std::unique_ptr<DuplexLogDevice> duplex_;
  /// (slot, merged ok) per completed logical write, in completion order.
  std::vector<std::pair<uint32_t, bool>> completions_;
};

TEST_F(DuplexLogDeviceTest, LockstepMirrorsEveryWrite) {
  Build(nullptr, nullptr);
  for (uint32_t slot = 0; slot < 3; ++slot) SubmitTracked(slot, slot + 1);
  sim_.Run();
  ASSERT_EQ(completions_.size(), 3u);
  for (uint32_t slot = 0; slot < 3; ++slot) {
    EXPECT_EQ(completions_[slot].first, slot);  // FIFO merge order
    EXPECT_TRUE(completions_[slot].second);
    ASSERT_TRUE(storage0_.IsWritten({0, slot}));
    ASSERT_TRUE(storage1_.IsWritten({0, slot}));
    EXPECT_EQ(*storage0_.Get({0, slot}), *storage1_.Get({0, slot}));
  }
  EXPECT_EQ(duplex_->writes_completed(), 3);
  EXPECT_EQ(duplex_->degraded_writes(), 0);
  EXPECT_EQ(duplex_->silent_double_faults(), 0);
  EXPECT_EQ(duplex_->dual_failures(), 0);
  // Replicas write in parallel, so three logical writes take 3x one
  // transfer, not 6x.
  EXPECT_EQ(sim_.Now(), 3 * kWrite);
}

TEST_F(DuplexLogDeviceTest, OneLogicalWriteOpenAtATime) {
  Build(nullptr, nullptr);
  SubmitTracked(0, 1);
  SubmitTracked(1, 2);
  sim_.RunUntil(1);
  BlockAddress addr;
  bool landed[2] = {true, true};
  ASSERT_TRUE(duplex_->InFlight(&addr, landed));
  EXPECT_EQ(addr, (BlockAddress{0, 0}));  // write 1 has not touched a drive
  EXPECT_FALSE(landed[0]);
  EXPECT_FALSE(landed[1]);
  sim_.Run();
  EXPECT_FALSE(duplex_->InFlight(&addr, landed));
  EXPECT_FALSE(duplex_->busy());
}

TEST_F(DuplexLogDeviceTest, DegradedWriteWhenOneReplicaFails) {
  fault::FaultConfig failing;
  failing.seed = 11;
  failing.log_transient_error_rate = 1.0;
  Build(nullptr, &failing);
  SubmitTracked(0, 1);
  SubmitTracked(1, 2);
  sim_.Run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_TRUE(completions_[0].second);  // merged OK: one copy survives
  EXPECT_TRUE(completions_[1].second);
  EXPECT_EQ(duplex_->degraded_writes(), 2);
  EXPECT_EQ(duplex_->sole_copy_writes(0), 2);
  EXPECT_EQ(duplex_->sole_copy_writes(1), 0);
  EXPECT_EQ(mirror_->write_errors(), 2);
  EXPECT_TRUE(storage0_.IsWritten({0, 0}));
  EXPECT_FALSE(storage1_.IsWritten({0, 0}));
}

TEST_F(DuplexLogDeviceTest, DualFailureRetriesInFifoOrder) {
  // Both replicas fail every attempt: the merged write errors and the
  // caller retries via SubmitFront — the retry must run before the next
  // queued logical write, exactly like a single device.
  fault::FaultConfig failing;
  failing.seed = 12;
  failing.log_transient_error_rate = 1.0;
  Build(&failing, &failing);
  std::vector<uint32_t> order;
  int attempts_a = 0;
  LogWriteRequest a;
  a.address = {0, 0};
  a.image = Image(1);
  std::function<void(const Status&)> on_a = [&](const Status& status) {
    order.push_back(0);
    EXPECT_FALSE(status.ok());
    if (++attempts_a < 2) {
      LogWriteRequest retry;
      retry.address = {0, 0};
      retry.image = Image(1);
      retry.on_complete = on_a;
      duplex_->SubmitFront(std::move(retry));
    }
  };
  a.on_complete = on_a;
  duplex_->Submit(std::move(a));
  SubmitTracked(1, 2);
  sim_.Run();
  // A's retry merges before B: order A, A, then B.
  ASSERT_EQ(order.size(), 2u);
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].first, 1u);
  EXPECT_FALSE(completions_[0].second);
  EXPECT_EQ(duplex_->dual_failures(), 3);
  EXPECT_FALSE(storage0_.IsWritten({0, 0}));
  EXPECT_FALSE(storage1_.IsWritten({0, 0}));
}

TEST_F(DuplexLogDeviceTest, RotOnOneCopyLeavesSoleCopyOnTheOther) {
  fault::FaultConfig rotting;
  rotting.seed = 13;
  rotting.log_bit_rot_rate = 1.0;
  Build(&rotting, nullptr);
  SubmitTracked(0, 1);
  sim_.Run();
  EXPECT_TRUE(completions_[0].second);
  EXPECT_EQ(duplex_->degraded_writes(), 0);  // both replicas stored a copy
  EXPECT_EQ(duplex_->silent_double_faults(), 0);
  EXPECT_EQ(duplex_->sole_copy_writes(1), 1);  // ...but only the mirror's
  EXPECT_EQ(duplex_->sole_copy_writes(0), 0);  // copy is intact
}

TEST_F(DuplexLogDeviceTest, BothCopiesRottingIsASilentDoubleFault) {
  fault::FaultConfig rotting;
  rotting.seed = 14;
  rotting.log_bit_rot_rate = 1.0;
  Build(&rotting, &rotting);
  SubmitTracked(0, 1);
  sim_.Run();
  EXPECT_TRUE(completions_[0].second);  // the writer never learns
  EXPECT_EQ(duplex_->silent_double_faults(), 1);
}

TEST_F(DuplexLogDeviceTest, RotOnTheOnlyStoredCopyIsASilentDoubleFault) {
  fault::FaultConfig rotting;
  rotting.seed = 15;
  rotting.log_bit_rot_rate = 1.0;
  fault::FaultConfig failing;
  failing.seed = 15;
  failing.log_transient_error_rate = 1.0;
  Build(&rotting, &failing);
  SubmitTracked(0, 1);
  sim_.Run();
  EXPECT_TRUE(completions_[0].second);
  EXPECT_EQ(duplex_->degraded_writes(), 1);
  EXPECT_EQ(duplex_->silent_double_faults(), 1);
  EXPECT_EQ(duplex_->sole_copy_writes(0), 0);  // the sole copy is rotten
}

TEST_F(DuplexLogDeviceTest, InFlightReportsTheHalfLandedCopy) {
  // A latency spike on the mirror opens a window where the primary's copy
  // has landed but the merge has not fired: crash capture must see
  // exactly that half-landed state to tear the pair atomically.
  fault::FaultConfig slow;
  slow.seed = 16;
  slow.log_latency_spike_rate = 1.0;
  slow.log_latency_spike_multiplier = 3.0;
  Build(nullptr, &slow);
  SubmitTracked(0, 1);
  sim_.RunUntil(20 * kMillisecond);  // primary done at 15ms, mirror at 45ms
  BlockAddress addr;
  bool landed[2] = {false, false};
  ASSERT_TRUE(duplex_->InFlight(&addr, landed));
  EXPECT_EQ(addr, (BlockAddress{0, 0}));
  EXPECT_TRUE(landed[0]);
  EXPECT_FALSE(landed[1]);
  EXPECT_TRUE(completions_.empty());  // not merged: not acknowledged
  sim_.Run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_TRUE(completions_[0].second);
}

TEST_F(DuplexLogDeviceTest, DriveDeathDegradesSubsequentWrites) {
  fault::FaultConfig dying;
  dying.seed = 17;
  dying.drive_death_rate = 1.0;
  dying.drive_death_by_ops_prob = 0.0;
  dying.min_drive_death_time = 1 * kMillisecond;
  dying.max_drive_death_time = 2 * kMillisecond;
  Build(nullptr, &dying);
  for (uint32_t slot = 0; slot < 3; ++slot) SubmitTracked(slot, slot + 1);
  sim_.Run();
  // Write 0 enters service at t=0, before the death instant; writes 1-2
  // start after it and find the mirror's media gone.
  EXPECT_TRUE(mirror_->dead());
  EXPECT_EQ(mirror_->dead_rejects(), 2);
  EXPECT_EQ(duplex_->dead_replicas_observed(), 1);
  EXPECT_EQ(duplex_->degraded_writes(), 2);
  EXPECT_EQ(duplex_->sole_copy_writes(0), 2);
  for (const auto& [slot, ok] : completions_) EXPECT_TRUE(ok);
  EXPECT_TRUE(storage0_.IsWritten({0, 2}));
  EXPECT_FALSE(storage1_.IsWritten({0, 2}));
}

TEST_F(DuplexLogDeviceTest, ManualResilverCopiesSurvivorOntoFreshMedia) {
  fault::FaultConfig dying;
  dying.seed = 18;
  dying.drive_death_rate = 1.0;
  dying.drive_death_by_ops_prob = 0.0;
  dying.min_drive_death_time = 1 * kMillisecond;
  dying.max_drive_death_time = 2 * kMillisecond;
  Build(nullptr, &dying);
  for (uint32_t slot = 0; slot < 3; ++slot) SubmitTracked(slot, slot + 1);
  sim_.Run();
  ASSERT_TRUE(mirror_->dead());

  EXPECT_EQ(duplex_->ResilverDeadReplica(), 3);
  EXPECT_FALSE(mirror_->dead());
  EXPECT_EQ(duplex_->resilvers_completed(), 1);
  EXPECT_EQ(duplex_->resilvered_blocks(), 3);
  EXPECT_EQ(duplex_->resilver_wiped_sole_copies(), 0);  // survivor had all
  for (uint32_t slot = 0; slot < 3; ++slot) {
    ASSERT_TRUE(storage1_.IsWritten({0, slot}));
    EXPECT_EQ(*storage0_.Get({0, slot}), *storage1_.Get({0, slot}));
  }
  // The replacement drive services writes again: no new degraded writes.
  const int64_t degraded_before = duplex_->degraded_writes();
  SubmitTracked(3, 4);
  sim_.Run();
  EXPECT_EQ(duplex_->degraded_writes(), degraded_before);
  EXPECT_TRUE(storage1_.IsWritten({0, 3}));
}

TEST_F(DuplexLogDeviceTest, ResilverWipesStaleMediaAndRecordsLostSoleCopies) {
  // The primary never stores anything (transient errors every attempt);
  // the mirror stores two sole copies, then its drive dies. A resilver
  // swaps in fresh media: the sole copies are gone for good — the device
  // must count them, and the stale images must NOT survive on the
  // replacement drive.
  fault::FaultConfig failing;
  failing.seed = 19;
  failing.log_transient_error_rate = 1.0;
  fault::FaultConfig dying;
  dying.seed = 19;
  dying.drive_death_rate = 1.0;
  dying.drive_death_by_ops_prob = 1.0;
  dying.min_drive_death_ops = 2;
  dying.max_drive_death_ops = 3;  // op_count = 2: the third write dies
  dying.min_drive_death_time = 1000 * kSecond;
  dying.max_drive_death_time = 1001 * kSecond;
  Build(&failing, &dying);
  for (uint32_t slot = 0; slot < 3; ++slot) SubmitTracked(slot, slot + 1);
  sim_.Run();
  ASSERT_TRUE(mirror_->dead());
  EXPECT_EQ(duplex_->sole_copy_writes(1), 2);
  EXPECT_EQ(duplex_->dual_failures(), 1);  // write 3: error + dead

  EXPECT_EQ(duplex_->ResilverDeadReplica(), 0);  // survivor holds nothing
  EXPECT_EQ(duplex_->resilver_wiped_sole_copies(), 2);
  EXPECT_FALSE(mirror_->dead());
  EXPECT_FALSE(storage1_.IsWritten({0, 0}));  // fresh media, no resurrection
  EXPECT_FALSE(storage1_.IsWritten({0, 1}));
}

TEST_F(DuplexLogDeviceTest, AutoResilverRunsAfterTheConfiguredDelay) {
  fault::FaultConfig dying;
  dying.seed = 20;
  dying.drive_death_rate = 1.0;
  dying.drive_death_by_ops_prob = 0.0;
  dying.min_drive_death_time = 1 * kMillisecond;
  dying.max_drive_death_time = 2 * kMillisecond;
  Build(nullptr, &dying, /*auto_resilver_delay=*/100 * kMillisecond);
  for (uint32_t slot = 0; slot < 3; ++slot) SubmitTracked(slot, slot + 1);
  sim_.Run();  // drains writes AND the scheduled resilver
  EXPECT_EQ(duplex_->resilvers_completed(), 1);
  EXPECT_FALSE(mirror_->dead());
  for (uint32_t slot = 0; slot < 3; ++slot) {
    EXPECT_TRUE(storage1_.IsWritten({0, slot}));
  }
}

TEST_F(DuplexLogDeviceTest, ResilverIsANoOpWithoutADeadReplica) {
  Build(nullptr, nullptr);
  SubmitTracked(0, 1);
  sim_.Run();
  EXPECT_EQ(duplex_->ResilverDeadReplica(), 0);
  EXPECT_EQ(duplex_->resilvers_completed(), 0);
}

// ---- Hedged writes and quarantine/eject (EnableHedging) -----------------

/// A mirror whose forced fail-slow plan makes every write 10x slow from
/// t = 0 (150 ms vs the primary's 15 ms).
fault::FaultConfig SlowMirror(uint64_t seed) {
  fault::FaultConfig config;
  config.seed = seed;
  config.force_fail_slow_replica = 1;
  config.force_fail_slow_onset = 0;
  config.fail_slow_multiplier = 10.0;
  return config;
}

class HedgedDuplexTest : public DuplexLogDeviceTest {
 protected:
  /// Wires a health monitor with a pinned 20 ms hedge deadline into the
  /// already-Built duplex. Default detection windows apply.
  void EnableHealth() {
    health::HealthOptions options;
    options.enabled = true;
    options.hedge.deadline = 20 * kMillisecond;
    monitor_ = std::make_unique<health::DriveHealthMonitor>(
        &sim_, options, &metrics_, "h");
    const int h0 = monitor_->RegisterDrive("log", "log0");
    const int h1 = monitor_->RegisterDrive("log", "log1");
    primary_->set_health(monitor_.get(), h0);
    mirror_->set_health(monitor_.get(), h1);
    duplex_->EnableHedging(monitor_.get(), h0, h1, kWrite);
  }

  void SubmitTimed(uint32_t slot, uint64_t seq) {
    LogWriteRequest request;
    request.address = {0, slot};
    request.image = Image(seq);
    request.on_complete = [this, slot](const Status& status) {
      completions_.push_back({slot, status.ok()});
      ack_times_.push_back(sim_.Now());
    };
    duplex_->Submit(std::move(request));
  }

  std::unique_ptr<health::DriveHealthMonitor> monitor_;
  std::vector<SimTime> ack_times_;
};

TEST_F(HedgedDuplexTest, HedgedAckThenLaggardReconciles) {
  fault::FaultConfig slow = SlowMirror(31);
  Build(nullptr, &slow);
  EnableHealth();
  SubmitTimed(0, 1);
  // Primary lands at 15 ms; the 20 ms hedge deadline fires at 35 ms and
  // acknowledges on the sole landed copy.
  sim_.RunUntil(40 * kMillisecond);
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_TRUE(completions_[0].second);
  EXPECT_EQ(ack_times_[0], 35 * kMillisecond);
  EXPECT_EQ(duplex_->hedges_fired(), 1);
  EXPECT_EQ(duplex_->unreconciled_hedged_acks(0), 1);
  EXPECT_TRUE(duplex_->busy());  // laggard copy still in service
  // The laggard completes at 150 ms: both copies durable, books settled.
  sim_.Run();
  EXPECT_EQ(sim_.Now(), 150 * kMillisecond);
  EXPECT_TRUE(storage0_.IsWritten({0, 0}));
  EXPECT_TRUE(storage1_.IsWritten({0, 0}));
  EXPECT_EQ(duplex_->unreconciled_hedged_acks(0), 0);
  EXPECT_EQ(duplex_->hedge_wins(), 0);
  EXPECT_EQ(duplex_->sole_copy_writes(0), 0);
  EXPECT_EQ(duplex_->writes_completed(), 1);
  EXPECT_FALSE(duplex_->busy());
}

TEST_F(HedgedDuplexTest, HedgedAckUnblocksTheNextWrite) {
  fault::FaultConfig slow = SlowMirror(32);
  Build(nullptr, &slow);
  EnableHealth();
  SubmitTimed(0, 1);
  SubmitTimed(1, 2);
  sim_.Run();
  // Acks pipeline past the slow mirror: 35 ms and 70 ms, not the
  // lockstep 150/300 ms merge times.
  ASSERT_EQ(ack_times_.size(), 2u);
  EXPECT_EQ(ack_times_[0], 35 * kMillisecond);
  EXPECT_EQ(ack_times_[1], 70 * kMillisecond);
  EXPECT_EQ(duplex_->hedges_fired(), 2);
  // The mirror still services both copies FIFO (150 and 300 ms).
  EXPECT_EQ(sim_.Now(), 300 * kMillisecond);
  EXPECT_TRUE(storage1_.IsWritten({0, 0}));
  EXPECT_TRUE(storage1_.IsWritten({0, 1}));
}

TEST_F(HedgedDuplexTest, HedgeWinWhenLaggardFails) {
  fault::FaultConfig failing_slow = SlowMirror(33);
  failing_slow.log_transient_error_rate = 1.0;
  Build(nullptr, &failing_slow);
  EnableHealth();
  SubmitTimed(0, 1);
  sim_.Run();
  // The caller was acknowledged at 35 ms; the laggard's failure at
  // 150 ms would have forced a degraded merge (or a visible stall)
  // without the hedge.
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_TRUE(completions_[0].second);
  EXPECT_EQ(ack_times_[0], 35 * kMillisecond);
  EXPECT_EQ(duplex_->hedges_fired(), 1);
  EXPECT_EQ(duplex_->hedge_wins(), 1);
  EXPECT_EQ(duplex_->degraded_writes(), 1);
  EXPECT_EQ(duplex_->sole_copy_writes(0), 1);
  EXPECT_TRUE(storage0_.IsWritten({0, 0}));
  EXPECT_FALSE(storage1_.IsWritten({0, 0}));
}

TEST_F(HedgedDuplexTest, RottedLaggardIsDivergentMediaForReadRepair) {
  fault::FaultConfig rotting_slow = SlowMirror(34);
  rotting_slow.log_bit_rot_rate = 1.0;
  Build(nullptr, &rotting_slow);
  EnableHealth();
  SubmitTimed(0, 1);
  sim_.Run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_TRUE(completions_[0].second);
  // The laggard "succeeded" but stored a scrambled image: the primary
  // holds the sole intact copy and the recovery read-repair merge picks
  // it (duplex_recovery_test covers that end).
  EXPECT_EQ(duplex_->hedge_wins(), 0);  // laggard status was OK
  EXPECT_EQ(duplex_->sole_copy_writes(0), 1);
  EXPECT_EQ(duplex_->silent_double_faults(), 0);
  ASSERT_TRUE(storage0_.IsWritten({0, 0}));
  ASSERT_TRUE(storage1_.IsWritten({0, 0}));
  EXPECT_TRUE(wal::DecodeBlock(*storage0_.Get({0, 0})).ok());
  EXPECT_FALSE(wal::DecodeBlock(*storage1_.Get({0, 0})).ok());
}

TEST_F(HedgedDuplexTest, QuarantineEjectResilverRoundTrip) {
  fault::FaultConfig slow = SlowMirror(35);
  Build(nullptr, &slow);
  EnableHealth();
  // A sustained stream: the monitor needs min_samples mirror completions
  // (150 ms apart) plus the 200 + 300 ms windows before quarantining.
  for (uint32_t i = 0; i < 48; ++i) SubmitTimed(i % 8, i + 1);
  sim_.Run();
  EXPECT_GT(duplex_->hedges_fired(), 0);
  EXPECT_EQ(duplex_->quarantines(), 1);
  EXPECT_GT(duplex_->quarantine_skips(), 0);
  EXPECT_FALSE(duplex_->ReplicaQuarantined(1));  // ejected AND revived
  EXPECT_FALSE(mirror_->dead());
  // The eject resilver copies the union: no slot lost despite the skips.
  for (uint32_t slot = 0; slot < 8; ++slot) {
    EXPECT_TRUE(storage0_.IsWritten({0, slot})) << "slot " << slot;
    EXPECT_TRUE(storage1_.IsWritten({0, slot})) << "slot " << slot;
  }
  EXPECT_EQ(duplex_->resilver_wiped_sole_copies(), 0);

  // Revived media is fresh: the consumed fail-slow plan no longer
  // applies, so post-eject writes settle as healthy lockstep merges.
  const int64_t hedges_before = duplex_->hedges_fired();
  completions_.clear();
  ack_times_.clear();
  const SimTime resume = sim_.Now();
  SubmitTimed(0, 100);
  sim_.Run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_TRUE(completions_[0].second);
  EXPECT_EQ(ack_times_[0], resume + kWrite);  // both replicas at 15 ms again
  EXPECT_EQ(duplex_->hedges_fired(), hedges_before);
  EXPECT_EQ(*storage0_.Get({0, 0}), *storage1_.Get({0, 0}));
}

TEST_F(HedgedDuplexTest, HedgingOffIsByteCompatibleLockstep) {
  // Sanity guard for the byte-identity contract: a duplex with health
  // wired but a *healthy* mirror never fires a hedge — every write is a
  // plain merge at the slower replica's completion time.
  Build(nullptr, nullptr);
  EnableHealth();
  for (uint32_t slot = 0; slot < 3; ++slot) SubmitTimed(slot, slot + 1);
  sim_.Run();
  EXPECT_EQ(duplex_->hedges_fired(), 0);
  EXPECT_EQ(duplex_->quarantines(), 0);
  ASSERT_EQ(ack_times_.size(), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ack_times_[i], (i + 1) * kWrite);
  }
}

}  // namespace
}  // namespace disk
}  // namespace elog
