// CellArena: slab accounting, free-list reuse, generation-stamped
// handles, and the churn bound (slab bytes stay within 2x of peak live
// bytes under sustained allocate/release traffic).

#include "core/cell_arena.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/metrics.h"
#include "util/random.h"

namespace elog {
namespace {

TEST(CellArenaTest, AllocateValueInitializes) {
  CellArena arena;
  Cell* cell = arena.Allocate();
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->generation, 0u);
  EXPECT_EQ(cell->slot, 0u);
  EXPECT_FALSE(cell->stolen);
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(arena.allocated(), 1u);
  arena.Release(cell);
  EXPECT_EQ(arena.live(), 0u);
}

TEST(CellArenaTest, ReleaseNullIsNoOp) {
  CellArena arena;
  arena.Release(nullptr);  // delete parity
  EXPECT_EQ(arena.live(), 0u);
}

TEST(CellArenaTest, FreeListReusesStorage) {
  CellArena arena;
  Cell* a = arena.Allocate();
  arena.Release(a);
  Cell* b = arena.Allocate();
  EXPECT_EQ(a, b);  // LIFO free list hands back the same slot
  EXPECT_EQ(arena.allocated(), 1u);
  EXPECT_EQ(arena.reused(), 1u);
  // Reuse re-runs the Cell constructor: the slot is clean again.
  EXPECT_EQ(b->generation, 0u);
  EXPECT_FALSE(b->stolen);
  arena.Release(b);
}

TEST(CellArenaTest, HandlesGoStaleOnReleaseAndReuse) {
  CellArena arena;
  Cell* cell = arena.Allocate();
  CellArena::Handle handle = arena.MakeHandle(cell);
  EXPECT_EQ(arena.Resolve(handle), cell);
  arena.Release(cell);
  EXPECT_EQ(arena.Resolve(handle), nullptr);  // released
  Cell* again = arena.Allocate();
  ASSERT_EQ(again, cell);  // same slot, new stamp
  EXPECT_EQ(arena.Resolve(handle), nullptr);  // never the new occupant
  CellArena::Handle fresh = arena.MakeHandle(again);
  EXPECT_EQ(arena.Resolve(fresh), again);
  arena.Release(again);
}

TEST(CellArenaTest, SlabCarving) {
  CellArena arena;
  EXPECT_EQ(arena.bytes(), 0u);
  std::vector<Cell*> cells;
  for (size_t i = 0; i < CellArena::kSlabCells; ++i) {
    cells.push_back(arena.Allocate());
  }
  EXPECT_EQ(arena.slab_count(), 1u);
  cells.push_back(arena.Allocate());  // first cell of slab 2
  EXPECT_EQ(arena.slab_count(), 2u);
  // Releasing everything keeps the slabs (peak-sized, like the LOT/LTT)
  // but the next wave is served entirely from the free list.
  for (Cell* cell : cells) arena.Release(cell);
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.slab_count(), 2u);
  const size_t allocated_before = arena.allocated();
  for (size_t i = 0; i < cells.size(); ++i) arena.Allocate();
  EXPECT_EQ(arena.allocated(), allocated_before);
  EXPECT_EQ(arena.slab_count(), 2u);
}

TEST(CellArenaTest, ChurnBoundSlabBytesStayNearPeakLive) {
  // Sustained random churn with a bounded live population: total slab
  // bytes must stay within 2x of the peak live-cell bytes, i.e. the
  // arena's footprint tracks peak occupancy, not allocation traffic.
  // (The bound holds whenever peak live >= kSlabCells; below that the
  // single mandatory slab dominates.)
  CellArena arena;
  Rng rng(99);
  std::vector<Cell*> live;
  size_t peak_live = 0;
  constexpr size_t kTargetLive = 4 * CellArena::kSlabCells;
  for (int op = 0; op < 200'000; ++op) {
    // 2:1 grow bias: an unbiased walk would only drift ~sqrt(ops) deep;
    // this pins the population at the cap with steady churn against it.
    const bool grow = live.size() < kTargetLive &&
                      (live.empty() || rng.NextBounded(3) != 0);
    if (grow) {
      live.push_back(arena.Allocate());
      peak_live = std::max(peak_live, live.size());
    } else {
      const size_t i = rng.NextBounded(live.size());
      arena.Release(live[i]);
      live[i] = live.back();
      live.pop_back();
    }
  }
  ASSERT_GE(peak_live, CellArena::kSlabCells);
  const size_t slot_bytes = arena.bytes() / (arena.slab_count() *
                                             CellArena::kSlabCells);
  EXPECT_LE(arena.bytes(), 2 * peak_live * slot_bytes)
      << "slabs: " << arena.slab_count() << " peak live: " << peak_live;
  for (Cell* cell : live) arena.Release(cell);
}

TEST(CellArenaTest, RegisterMetricsBackfillsCounts) {
  CellArena arena;
  Cell* a = arena.Allocate();
  arena.Release(a);
  arena.Allocate();  // one fresh, one reuse before registration
  sim::MetricsRegistry metrics;
  arena.RegisterMetrics(&metrics);
  EXPECT_EQ(metrics.GetCounter("core.cell_arena.allocated")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("core.cell_arena.reused")->value(), 1);
  arena.Allocate();
  EXPECT_EQ(metrics.GetCounter("core.cell_arena.allocated")->value(), 2);
}

}  // namespace
}  // namespace elog
