#include "disk/flush_drive.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault_injector.h"

namespace elog {
namespace disk {
namespace {

constexpr SimTime kTransfer = 25 * kMillisecond;

class FlushDriveTest : public ::testing::Test {
 protected:
  FlushDriveTest() : drive_(&sim_, 0, 0, 1000, kTransfer, &metrics_) {}

  FlushRequest Request(Oid oid) {
    FlushRequest request;
    request.oid = oid;
    request.lsn = next_lsn_++;
    request.on_durable = [this](const FlushRequest& r) {
      serviced_.push_back(r.oid);
    };
    return request;
  }

  sim::Simulator sim_;
  sim::MetricsRegistry metrics_;
  FlushDrive drive_;
  Lsn next_lsn_ = 1;
  std::vector<Oid> serviced_;
};

TEST_F(FlushDriveTest, SingleRequestTakesTransferTime) {
  SimTime done = -1;
  FlushRequest request = Request(10);
  request.on_durable = [&](const FlushRequest&) { done = sim_.Now(); };
  drive_.Enqueue(std::move(request));
  sim_.Run();
  EXPECT_EQ(done, kTransfer);
  EXPECT_EQ(drive_.flushes_completed(), 1);
}

TEST_F(FlushDriveTest, ShortestSeekFirst) {
  // Head starts at 0. Enqueue 900 (circular distance 100) and 400
  // (distance 400): 900 must be serviced first.
  drive_.Enqueue(Request(400));
  drive_.Enqueue(Request(900));
  sim_.RunUntil(1);  // let the first dispatch happen; nothing completes yet
  sim_.Run();
  ASSERT_EQ(serviced_.size(), 2u);
  // The first dispatched request was chosen before 900 arrived (the drive
  // was idle when 400 arrived), so 400 goes first here.
  EXPECT_EQ(serviced_[0], 400u);
}

TEST_F(FlushDriveTest, NearestPendingChosenWhenBusy) {
  drive_.Enqueue(Request(100));  // starts service immediately, head -> 100
  drive_.Enqueue(Request(500));
  drive_.Enqueue(Request(150));
  drive_.Enqueue(Request(990));  // circular distance from 100 is 110
  sim_.Run();
  ASSERT_EQ(serviced_.size(), 4u);
  EXPECT_EQ(serviced_[0], 100u);
  EXPECT_EQ(serviced_[1], 150u);  // nearest to 100
  EXPECT_EQ(serviced_[2], 990u);  // wraparound beats 500
  EXPECT_EQ(serviced_[3], 500u);
}

TEST_F(FlushDriveTest, WraparoundDistanceUsed) {
  // From 0, oid 999 is distance 1 (the range wraps, §3 of the paper).
  drive_.Enqueue(Request(1));    // head -> 1 after service starts
  drive_.Enqueue(Request(999));
  drive_.Enqueue(Request(300));
  sim_.Run();
  ASSERT_EQ(serviced_.size(), 3u);
  EXPECT_EQ(serviced_[1], 999u);
}

TEST_F(FlushDriveTest, SeekDistanceStatsRecorded) {
  drive_.Enqueue(Request(100));
  drive_.Enqueue(Request(300));
  sim_.Run();
  EXPECT_EQ(drive_.seek_distances().count(), 2u);
  // First seek: 0 -> 100 (distance 100); then 100 -> 300 (distance 200).
  EXPECT_DOUBLE_EQ(drive_.seek_distances().mean(), 150.0);
}

TEST_F(FlushDriveTest, UrgentServicedBeforePending) {
  drive_.Enqueue(Request(10));  // in service
  drive_.Enqueue(Request(11));
  drive_.Enqueue(Request(12));
  FlushRequest urgent = Request(800);
  drive_.EnqueueUrgent(std::move(urgent));
  sim_.Run();
  ASSERT_EQ(serviced_.size(), 4u);
  EXPECT_EQ(serviced_[1], 800u);  // urgent jumps the locality queue
}

TEST_F(FlushDriveTest, OneRequestInServiceAtATime) {
  for (Oid oid = 0; oid < 5; ++oid) drive_.Enqueue(Request(oid * 7));
  sim_.Run();
  EXPECT_EQ(serviced_.size(), 5u);
  // Five serial transfers.
  EXPECT_EQ(sim_.Now(), 5 * kTransfer);
}

TEST_F(FlushDriveTest, DuplicateOidsAllowed) {
  drive_.Enqueue(Request(42));
  drive_.Enqueue(Request(42));
  drive_.Enqueue(Request(42));
  sim_.Run();
  EXPECT_EQ(serviced_.size(), 3u);
}

TEST_F(FlushDriveTest, PendingCountTracksBacklog) {
  EXPECT_EQ(drive_.pending(), 0u);
  drive_.Enqueue(Request(1));  // goes straight into service
  drive_.Enqueue(Request(2));
  drive_.Enqueue(Request(3));
  EXPECT_EQ(drive_.pending(), 2u);
  sim_.Run();
  EXPECT_EQ(drive_.pending(), 0u);
}

TEST_F(FlushDriveTest, UrgentRequestsAreFifoAmongThemselves) {
  // Urgent requests model eviction/compensation ordering: a compensation
  // enqueued after its steal must land after it, so the urgent queue must
  // be strictly FIFO (no locality re-ordering).
  drive_.Enqueue(Request(500));  // occupies the drive
  drive_.EnqueueUrgent(Request(900));
  drive_.EnqueueUrgent(Request(10));   // nearer the head, but later
  drive_.EnqueueUrgent(Request(450));
  sim_.Run();
  ASSERT_EQ(serviced_.size(), 4u);
  EXPECT_EQ(serviced_[1], 900u);
  EXPECT_EQ(serviced_[2], 10u);
  EXPECT_EQ(serviced_[3], 450u);
}

TEST_F(FlushDriveTest, UrgentSeekDistancesCounted) {
  FlushRequest request = Request(100);
  drive_.EnqueueUrgent(std::move(request));
  sim_.Run();
  EXPECT_EQ(drive_.seek_distances().count(), 1u);
  EXPECT_DOUBLE_EQ(drive_.seek_distances().mean(), 100.0);
}

TEST_F(FlushDriveTest, OutOfRangeOidChecks) {
  EXPECT_DEATH(drive_.Enqueue(Request(1000)), "");
  EXPECT_DEATH(drive_.EnqueueUrgent(Request(5000)), "");
}

// --- Abandonment (on_failed) -------------------------------------------
//
// A lost flush must notify its owner: exactly one of on_durable /
// on_failed runs for every enqueued request, so no owner is ever left
// dangling on a durability signal that will never come.

class FailingFlushDriveTest : public ::testing::Test {
 protected:
  /// Per-request callback accounting, indexed by lsn.
  struct Outcome {
    int durable = 0;
    int failed = 0;
  };

  void BuildDrive(double fail_rate, uint32_t max_attempts,
                  uint64_t seed = 77) {
    fault::FaultConfig config;
    config.seed = seed;
    config.flush_transient_error_rate = fail_rate;
    config.max_flush_attempts = max_attempts;
    config.flush_retry_backoff = 5 * kMillisecond;
    injector_ = std::make_unique<fault::FaultInjector>(config);
    drive_ = std::make_unique<FlushDrive>(&sim_, 0, 0, 1000, kTransfer,
                                          &metrics_, injector_.get());
  }

  FlushRequest Tracked(Oid oid) {
    FlushRequest request;
    request.oid = oid;
    request.lsn = next_lsn_++;
    outcomes_.emplace_back();
    size_t index = outcomes_.size() - 1;
    request.on_durable = [this, index](const FlushRequest&) {
      ++outcomes_[index].durable;
    };
    request.on_failed = [this, index](const FlushRequest&) {
      ++outcomes_[index].failed;
    };
    return request;
  }

  sim::Simulator sim_;
  sim::MetricsRegistry metrics_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<FlushDrive> drive_;
  Lsn next_lsn_ = 1;
  std::vector<Outcome> outcomes_;
};

TEST_F(FailingFlushDriveTest, AbandonedRequestFiresOnFailedExactlyOnce) {
  BuildDrive(/*fail_rate=*/1.0, /*max_attempts=*/2);
  drive_->Enqueue(Tracked(10));
  sim_.Run();
  ASSERT_EQ(outcomes_.size(), 1u);
  EXPECT_EQ(outcomes_[0].durable, 0);
  EXPECT_EQ(outcomes_[0].failed, 1);
  // One initial attempt + one retry, then abandoned.
  EXPECT_EQ(drive_->flush_retries(), 1);
  EXPECT_EQ(drive_->flushes_lost(), 1);
  EXPECT_EQ(drive_->flushes_completed(), 0);
}

TEST_F(FailingFlushDriveTest, AbandonmentDoesNotStallTheQueue) {
  // The drive must go back in service after abandoning a request: later
  // requests (including urgent ones) still get exactly one callback.
  BuildDrive(/*fail_rate=*/1.0, /*max_attempts=*/1);
  for (Oid oid = 0; oid < 5; ++oid) drive_->Enqueue(Tracked(oid * 100));
  drive_->EnqueueUrgent(Tracked(999));
  sim_.Run();
  EXPECT_EQ(drive_->pending(), 0u);
  EXPECT_FALSE(drive_->busy());
  EXPECT_EQ(drive_->flushes_lost(), 6);
  ASSERT_EQ(outcomes_.size(), 6u);
  for (size_t i = 0; i < outcomes_.size(); ++i) {
    EXPECT_EQ(outcomes_[i].durable, 0) << "request " << i;
    EXPECT_EQ(outcomes_[i].failed, 1) << "request " << i;
  }
}

TEST_F(FailingFlushDriveTest, NoDanglingOwnersUnderMixedFaults) {
  // At a 40% per-attempt failure rate with 3 attempts, some requests
  // complete and some are abandoned — but every single one settles with
  // exactly one callback, and the drive's counters account for all of
  // them.
  BuildDrive(/*fail_rate=*/0.4, /*max_attempts=*/3);
  constexpr int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    drive_->Enqueue(Tracked(static_cast<Oid>((i * 37) % 1000)));
  }
  sim_.Run();
  EXPECT_EQ(drive_->pending(), 0u);
  EXPECT_FALSE(drive_->busy());
  ASSERT_EQ(outcomes_.size(), static_cast<size_t>(kRequests));
  int durable = 0;
  int failed = 0;
  for (size_t i = 0; i < outcomes_.size(); ++i) {
    EXPECT_EQ(outcomes_[i].durable + outcomes_[i].failed, 1)
        << "request " << i << " settled " << outcomes_[i].durable
        << " durable / " << outcomes_[i].failed << " failed callbacks";
    durable += outcomes_[i].durable;
    failed += outcomes_[i].failed;
  }
  EXPECT_EQ(durable + failed, kRequests);
  EXPECT_EQ(drive_->flushes_completed(), durable);
  EXPECT_EQ(drive_->flushes_lost(), failed);
  // With these rates both outcomes must actually occur.
  EXPECT_GT(durable, 0);
  EXPECT_GT(failed, 0);
}

TEST_F(FailingFlushDriveTest, RequestWithoutOnFailedStillCounted) {
  // on_failed is optional (legacy callers): abandonment without the
  // callback must not crash and must still free the drive.
  BuildDrive(/*fail_rate=*/1.0, /*max_attempts=*/1);
  FlushRequest bare;
  bare.oid = 1;
  bare.lsn = 1;
  drive_->Enqueue(std::move(bare));
  drive_->Enqueue(Tracked(2));
  sim_.Run();
  EXPECT_EQ(drive_->flushes_lost(), 2);
  ASSERT_EQ(outcomes_.size(), 1u);
  EXPECT_EQ(outcomes_[0].failed, 1);
}

}  // namespace
}  // namespace disk
}  // namespace elog
