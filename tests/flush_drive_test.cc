#include "disk/flush_drive.h"

#include <gtest/gtest.h>

#include <vector>

namespace elog {
namespace disk {
namespace {

constexpr SimTime kTransfer = 25 * kMillisecond;

class FlushDriveTest : public ::testing::Test {
 protected:
  FlushDriveTest() : drive_(&sim_, 0, 0, 1000, kTransfer, &metrics_) {}

  FlushRequest Request(Oid oid) {
    FlushRequest request;
    request.oid = oid;
    request.lsn = next_lsn_++;
    request.on_durable = [this](const FlushRequest& r) {
      serviced_.push_back(r.oid);
    };
    return request;
  }

  sim::Simulator sim_;
  sim::MetricsRegistry metrics_;
  FlushDrive drive_;
  Lsn next_lsn_ = 1;
  std::vector<Oid> serviced_;
};

TEST_F(FlushDriveTest, SingleRequestTakesTransferTime) {
  SimTime done = -1;
  FlushRequest request = Request(10);
  request.on_durable = [&](const FlushRequest&) { done = sim_.Now(); };
  drive_.Enqueue(std::move(request));
  sim_.Run();
  EXPECT_EQ(done, kTransfer);
  EXPECT_EQ(drive_.flushes_completed(), 1);
}

TEST_F(FlushDriveTest, ShortestSeekFirst) {
  // Head starts at 0. Enqueue 900 (circular distance 100) and 400
  // (distance 400): 900 must be serviced first.
  drive_.Enqueue(Request(400));
  drive_.Enqueue(Request(900));
  sim_.RunUntil(1);  // let the first dispatch happen; nothing completes yet
  sim_.Run();
  ASSERT_EQ(serviced_.size(), 2u);
  // The first dispatched request was chosen before 900 arrived (the drive
  // was idle when 400 arrived), so 400 goes first here.
  EXPECT_EQ(serviced_[0], 400u);
}

TEST_F(FlushDriveTest, NearestPendingChosenWhenBusy) {
  drive_.Enqueue(Request(100));  // starts service immediately, head -> 100
  drive_.Enqueue(Request(500));
  drive_.Enqueue(Request(150));
  drive_.Enqueue(Request(990));  // circular distance from 100 is 110
  sim_.Run();
  ASSERT_EQ(serviced_.size(), 4u);
  EXPECT_EQ(serviced_[0], 100u);
  EXPECT_EQ(serviced_[1], 150u);  // nearest to 100
  EXPECT_EQ(serviced_[2], 990u);  // wraparound beats 500
  EXPECT_EQ(serviced_[3], 500u);
}

TEST_F(FlushDriveTest, WraparoundDistanceUsed) {
  // From 0, oid 999 is distance 1 (the range wraps, §3 of the paper).
  drive_.Enqueue(Request(1));    // head -> 1 after service starts
  drive_.Enqueue(Request(999));
  drive_.Enqueue(Request(300));
  sim_.Run();
  ASSERT_EQ(serviced_.size(), 3u);
  EXPECT_EQ(serviced_[1], 999u);
}

TEST_F(FlushDriveTest, SeekDistanceStatsRecorded) {
  drive_.Enqueue(Request(100));
  drive_.Enqueue(Request(300));
  sim_.Run();
  EXPECT_EQ(drive_.seek_distances().count(), 2u);
  // First seek: 0 -> 100 (distance 100); then 100 -> 300 (distance 200).
  EXPECT_DOUBLE_EQ(drive_.seek_distances().mean(), 150.0);
}

TEST_F(FlushDriveTest, UrgentServicedBeforePending) {
  drive_.Enqueue(Request(10));  // in service
  drive_.Enqueue(Request(11));
  drive_.Enqueue(Request(12));
  FlushRequest urgent = Request(800);
  drive_.EnqueueUrgent(std::move(urgent));
  sim_.Run();
  ASSERT_EQ(serviced_.size(), 4u);
  EXPECT_EQ(serviced_[1], 800u);  // urgent jumps the locality queue
}

TEST_F(FlushDriveTest, OneRequestInServiceAtATime) {
  for (Oid oid = 0; oid < 5; ++oid) drive_.Enqueue(Request(oid * 7));
  sim_.Run();
  EXPECT_EQ(serviced_.size(), 5u);
  // Five serial transfers.
  EXPECT_EQ(sim_.Now(), 5 * kTransfer);
}

TEST_F(FlushDriveTest, DuplicateOidsAllowed) {
  drive_.Enqueue(Request(42));
  drive_.Enqueue(Request(42));
  drive_.Enqueue(Request(42));
  sim_.Run();
  EXPECT_EQ(serviced_.size(), 3u);
}

TEST_F(FlushDriveTest, PendingCountTracksBacklog) {
  EXPECT_EQ(drive_.pending(), 0u);
  drive_.Enqueue(Request(1));  // goes straight into service
  drive_.Enqueue(Request(2));
  drive_.Enqueue(Request(3));
  EXPECT_EQ(drive_.pending(), 2u);
  sim_.Run();
  EXPECT_EQ(drive_.pending(), 0u);
}

TEST_F(FlushDriveTest, UrgentRequestsAreFifoAmongThemselves) {
  // Urgent requests model eviction/compensation ordering: a compensation
  // enqueued after its steal must land after it, so the urgent queue must
  // be strictly FIFO (no locality re-ordering).
  drive_.Enqueue(Request(500));  // occupies the drive
  drive_.EnqueueUrgent(Request(900));
  drive_.EnqueueUrgent(Request(10));   // nearer the head, but later
  drive_.EnqueueUrgent(Request(450));
  sim_.Run();
  ASSERT_EQ(serviced_.size(), 4u);
  EXPECT_EQ(serviced_[1], 900u);
  EXPECT_EQ(serviced_[2], 10u);
  EXPECT_EQ(serviced_[3], 450u);
}

TEST_F(FlushDriveTest, UrgentSeekDistancesCounted) {
  FlushRequest request = Request(100);
  drive_.EnqueueUrgent(std::move(request));
  sim_.Run();
  EXPECT_EQ(drive_.seek_distances().count(), 1u);
  EXPECT_DOUBLE_EQ(drive_.seek_distances().mean(), 100.0);
}

TEST_F(FlushDriveTest, OutOfRangeOidChecks) {
  EXPECT_DEATH(drive_.Enqueue(Request(1000)), "");
  EXPECT_DEATH(drive_.EnqueueUrgent(Request(5000)), "");
}

}  // namespace
}  // namespace disk
}  // namespace elog
