// Firewall baseline semantics: single queue, firewall = oldest record of
// the oldest active transaction, committed records released immediately,
// kills when the tail catches the firewall.

#include "core/fw_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace elog {
namespace {

class RecordingKillListener : public KillListener {
 public:
  void OnTransactionKilled(TxId tid) override { killed.push_back(tid); }
  std::vector<TxId> killed;
};

class FwManagerTest : public ::testing::Test {
 protected:
  void Build(uint32_t log_blocks) {
    LogManagerOptions options = MakeFirewallOptions(log_blocks);
    options.num_objects = 1000;
    storage_ = std::make_unique<disk::LogStorage>(options.generation_blocks);
    device_ = std::make_unique<disk::LogDevice>(
        &sim_, storage_.get(), options.log_write_latency, nullptr);
    drives_ = std::make_unique<disk::DriveArray>(
        &sim_, options.num_flush_drives, options.num_objects,
        options.flush_transfer_time, nullptr);
    manager_ = std::make_unique<FirewallLogManager>(
        &sim_, options, device_.get(), drives_.get(), nullptr);
    manager_->set_kill_listener(&kills_);
    manager_->set_flush_apply_hook(
        [this](Oid, Lsn, uint64_t) { ++flushes_; });
  }

  workload::TransactionType Type(SimTime lifetime = SecondsToSimTime(1)) {
    workload::TransactionType type;
    type.lifetime = lifetime;
    return type;
  }

  TxId Begin(SimTime lifetime = SecondsToSimTime(1)) {
    return manager_->BeginTransaction(Type(lifetime));
  }

  void CommitAndSettle(TxId tid) {
    manager_->Commit(tid, [this](TxId id) { acked_.push_back(id); });
    manager_->ForceWriteOpenBuffers();
    sim_.Run();
  }

  sim::Simulator sim_;
  std::unique_ptr<disk::LogStorage> storage_;
  std::unique_ptr<disk::LogDevice> device_;
  std::unique_ptr<disk::DriveArray> drives_;
  std::unique_ptr<FirewallLogManager> manager_;
  RecordingKillListener kills_;
  std::vector<TxId> acked_;
  int flushes_ = 0;
};

TEST_F(FwManagerTest, CommittedRecordsReleasedWithoutFlushing) {
  Build(8);
  TxId tid = Begin();
  manager_->WriteUpdate(tid, 1, 100);
  manager_->WriteUpdate(tid, 2, 100);
  EXPECT_EQ(manager_->ltt_size(), 1u);
  EXPECT_EQ(manager_->lot_size(), 2u);
  CommitAndSettle(tid);
  ASSERT_EQ(acked_.size(), 1u);
  // FW's no-checkpoint simplification: everything garbage at commit, and
  // the flush subsystem is never engaged.
  EXPECT_EQ(manager_->ltt_size(), 0u);
  EXPECT_EQ(manager_->lot_size(), 0u);
  EXPECT_EQ(flushes_, 0);
  EXPECT_EQ(manager_->flushes_enqueued(), 0);
  manager_->CheckInvariants();
}

TEST_F(FwManagerTest, MemoryModelIs22BytesPerTransaction) {
  Build(8);
  TxId a = Begin();
  Begin();
  EXPECT_DOUBLE_EQ(manager_->modeled_memory_bytes(), 44.0);
  // Updates do not add to FW's memory cost (no LOT bookkeeping charge).
  manager_->WriteUpdate(a, 5, 100);
  EXPECT_DOUBLE_EQ(manager_->modeled_memory_bytes(), 44.0);
  CommitAndSettle(a);
  EXPECT_DOUBLE_EQ(manager_->modeled_memory_bytes(), 22.0);
}

TEST_F(FwManagerTest, OldestActiveTransactionIsTheFirewall) {
  Build(8);
  // The old transaction pins the log; a stream of short committed
  // transactions cannot reclaim space past it.
  TxId old_tid = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(old_tid, 999, 100);
  int committed_rounds = 0;
  for (int round = 0; round < 60 && kills_.killed.empty(); ++round) {
    TxId tid = Begin();
    manager_->WriteUpdate(tid, round, 100);
    CommitAndSettle(tid);
    ++committed_rounds;
  }
  // Eventually the tail catches the firewall and the oldest dies.
  ASSERT_FALSE(kills_.killed.empty());
  EXPECT_EQ(kills_.killed[0], old_tid);
  EXPECT_GT(committed_rounds, 2);  // it survived for a while first
  manager_->CheckInvariants();
}

TEST_F(FwManagerTest, AbortReleasesSpace) {
  Build(6);
  for (int round = 0; round < 60; ++round) {
    TxId tid = Begin(SecondsToSimTime(100));
    manager_->WriteUpdate(tid, round, 100);
    manager_->Abort(tid);
  }
  // Aborted records are garbage: no kills despite heavy traffic through
  // a tiny log.
  EXPECT_TRUE(kills_.killed.empty());
  EXPECT_EQ(manager_->ltt_size(), 0u);
  manager_->CheckInvariants();
}

TEST_F(FwManagerTest, NoForwardingOrRecirculationEver) {
  Build(6);
  for (int round = 0; round < 40; ++round) {
    TxId tid = Begin();
    manager_->WriteUpdate(tid, round, 100);
    CommitAndSettle(tid);
  }
  EXPECT_EQ(manager_->records_forwarded(), 0);
  EXPECT_EQ(manager_->records_recirculated(), 0);
  EXPECT_GT(manager_->records_discarded(), 0);
}

TEST_F(FwManagerTest, SpaceBoundedByOldestActive) {
  // With all transactions committing promptly, a small FW log sustains
  // unbounded traffic.
  Build(5);
  for (int round = 0; round < 100; ++round) {
    TxId tid = Begin();
    manager_->WriteUpdate(tid, round % 500, 100);
    CommitAndSettle(tid);
  }
  EXPECT_TRUE(kills_.killed.empty());
  manager_->CheckInvariants();
}

TEST(FwManagerConstructionTest, RejectsNonFirewallOptions) {
  sim::Simulator sim;
  LogManagerOptions options = MakeFirewallOptions(8);
  options.num_objects = 1000;
  disk::LogStorage storage(options.generation_blocks);
  disk::LogDevice device(&sim, &storage, options.log_write_latency, nullptr);
  disk::DriveArray drives(&sim, options.num_flush_drives, options.num_objects,
                          options.flush_transfer_time, nullptr);
  LogManagerOptions bad = options;
  bad.generation_blocks = {8, 8};
  EXPECT_DEATH(FirewallLogManager(&sim, bad, &device, &drives, nullptr),
               "single log queue");
  bad = options;
  bad.recirculation = true;
  EXPECT_DEATH(FirewallLogManager(&sim, bad, &device, &drives, nullptr), "");
}

}  // namespace
}  // namespace elog
