#include "util/status.h"

#include <gtest/gtest.h>

namespace elog {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status status = Status::OutOfSpace("generation 1 full");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsOutOfSpace());
  EXPECT_EQ(status.code(), StatusCode::kOutOfSpace);
  EXPECT_EQ(status.message(), "generation 1 full");
  EXPECT_EQ(status.ToString(), "OutOfSpace: generation 1 full");
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsCorruption());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_FALSE(Status::Corruption("x").IsOutOfSpace());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("a"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kInternal);
       ++code) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(code)),
                 "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> result(std::string("abc"));
  result.value() += "def";
  EXPECT_EQ(*result, "abcdef");
  EXPECT_EQ(result->size(), 6u);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultDeathTest, ValueOnErrorChecks) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_DEATH({ (void)result.value(); }, "boom");
}

TEST(ResultDeathTest, OkStatusRejected) {
  EXPECT_DEATH({ Result<int> result{Status::OK()}; (void)result; },
               "without a value");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Aborted("inner"); };
  auto outer = [&]() -> Status {
    ELOG_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kAborted);
}

TEST(StatusMacroTest, ReturnIfErrorPassesOk) {
  auto outer = []() -> Status {
    ELOG_RETURN_IF_ERROR(Status::OK());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace elog
