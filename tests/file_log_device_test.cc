// FileLogDevice: the real-I/O LogWritePort. Covers the port contract
// (FIFO completions, SubmitFront, oracle-mode timing identical to the
// simulated LogDevice), both completion modes, the graceful fallbacks,
// and the headline acceptance oracle: the same workload through the
// simulated and file backends produces identical durable log bytes.

#include "disk/file_log_device.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/wall_executor.h"
#include "db/database.h"
#include "sim/simulator.h"
#include "wal/block_format.h"

namespace elog {
namespace disk {
namespace {

constexpr SimTime kLatency = 15 * kMillisecond;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

wal::BlockImage MakeImage(uint32_t generation, uint64_t seq) {
  return wal::EncodeBlock(generation, seq, {});
}

FileLogDeviceOptions OracleOptions(const std::string& name) {
  FileLogDeviceOptions options;
  options.path = TempPath(name);
  options.slot_bytes = 4096;
  options.model_latency = kLatency;
  return options;
}

TEST(FileLogDeviceTest, OracleModeMatchesSimulatedLatency) {
  sim::Simulator sim;
  auto opened = FileLogDevice::Open(&sim, {4, 4},
                                    OracleOptions("oracle_latency.wal"));
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  FileLogDevice& device = **opened;
  SimTime durable_at = -1;
  device.Submit({{0, 1}, MakeImage(0, 1),
                 [&](const Status& s) {
                   ASSERT_TRUE(s.ok());
                   durable_at = sim.Now();
                 }});
  sim.Run();
  EXPECT_EQ(durable_at, kLatency);
  EXPECT_EQ(device.writes_completed(), 1);
  EXPECT_EQ(device.writes_completed(0), 1);
  EXPECT_FALSE(device.busy());
}

TEST(FileLogDeviceTest, WritesAreSerializedFifo) {
  sim::Simulator sim;
  auto opened =
      FileLogDevice::Open(&sim, {4, 4}, OracleOptions("oracle_fifo.wal"));
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  FileLogDevice& device = **opened;
  std::vector<SimTime> completions;
  for (uint32_t slot = 0; slot < 3; ++slot) {
    device.Submit({{0, slot}, MakeImage(0, slot + 1),
                   [&](const Status&) { completions.push_back(sim.Now()); }});
  }
  sim.Run();
  // One write in service at a time: 15, 30, 45 ms — exactly LogDevice.
  EXPECT_EQ(completions,
            (std::vector<SimTime>{kLatency, 2 * kLatency, 3 * kLatency}));
}

TEST(FileLogDeviceTest, SubmitFrontJumpsTheQueue) {
  sim::Simulator sim;
  auto opened =
      FileLogDevice::Open(&sim, {4, 4}, OracleOptions("oracle_front.wal"));
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  FileLogDevice& device = **opened;
  std::vector<int> order;
  device.Submit({{0, 0}, MakeImage(0, 1), [&](const Status&) {
                   order.push_back(0);
                   // Submitted while slot 1 is queued: the retry-style
                   // front submission must run before it.
                   device.SubmitFront({{0, 2}, MakeImage(0, 3),
                                       [&](const Status&) {
                                         order.push_back(2);
                                       }});
                 }});
  device.Submit(
      {{0, 1}, MakeImage(0, 2), [&](const Status&) { order.push_back(1); }});
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(FileLogDeviceTest, MirrorReceivesCompletedImages) {
  sim::Simulator sim;
  LogStorage mirror({4, 4});
  auto opened = FileLogDevice::Open(
      &sim, {4, 4}, OracleOptions("oracle_mirror.wal"), &mirror);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  const wal::BlockImage image = MakeImage(1, 9);
  (*opened)->Submit({{1, 3}, image, nullptr});
  sim.Run();
  ASSERT_TRUE(mirror.IsWritten({1, 3}));
  EXPECT_EQ(*mirror.Get({1, 3}), image);
  EXPECT_FALSE(mirror.IsWritten({0, 0}));
}

TEST(FileLogDeviceTest, DurableBytesRecoverFromTheFile) {
  sim::Simulator sim;
  FileLogDeviceOptions options = OracleOptions("oracle_recover.wal");
  std::vector<wal::BlockImage> images;
  {
    auto opened = FileLogDevice::Open(&sim, {4, 4}, options);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    for (uint32_t slot = 0; slot < 4; ++slot) {
      images.push_back(MakeImage(0, slot + 1));
      (*opened)->Submit({{0, slot}, images.back(), nullptr});
    }
    images.push_back(MakeImage(1, 5));
    (*opened)->Submit({{1, 2}, images.back(), nullptr});
    sim.Run();
    EXPECT_EQ((*opened)->writes_completed(), 5);
  }  // destructor joins the worker and closes the file
  FileRecoveryResult recovered = RecoverFromFile(options.path);
  ASSERT_TRUE(recovered.status.ok()) << recovered.status.message();
  EXPECT_FALSE(recovered.stopped_early) << recovered.stop_reason;
  EXPECT_EQ(recovered.blocks_valid, 5u);
  for (uint32_t slot = 0; slot < 4; ++slot) {
    ASSERT_TRUE(recovered.storage.IsWritten({0, slot}));
    EXPECT_EQ(*recovered.storage.Get({0, slot}), images[slot]);
  }
  ASSERT_TRUE(recovered.storage.IsWritten({1, 2}));
  EXPECT_EQ(*recovered.storage.Get({1, 2}), images[4]);
}

TEST(FileLogDeviceTest, RewritesReplaceSlotContents) {
  sim::Simulator sim;
  FileLogDeviceOptions options = OracleOptions("oracle_rewrite.wal");
  auto opened = FileLogDevice::Open(&sim, {4}, options);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  const wal::BlockImage final_image = MakeImage(0, 2);
  (*opened)->Submit({{0, 1}, MakeImage(0, 1), nullptr});
  (*opened)->Submit({{0, 1}, final_image, nullptr});
  sim.Run();
  opened->reset();
  FileRecoveryResult recovered = RecoverFromFile(options.path);
  ASSERT_TRUE(recovered.status.ok());
  EXPECT_EQ(*recovered.storage.Get({0, 1}), final_image);
}

TEST(FileLogDeviceTest, WallClockModeCompletesWhenDurable) {
  core::WallClockExecutor executor;
  FileLogDeviceOptions options = OracleOptions("wall_mode.wal");
  options.model_latency = 0;  // wall mode
  auto opened = FileLogDevice::Open(&executor, {4, 4}, options);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  int completed = 0;
  for (uint32_t slot = 0; slot < 3; ++slot) {
    (*opened)->Submit({{0, slot}, MakeImage(0, slot + 1),
                       [&](const Status& s) {
                         ASSERT_TRUE(s.ok());
                         ++completed;
                       }});
  }
  // The device retains external work on the executor while a write is in
  // flight, so Run() blocks until all three completions have landed.
  executor.Run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ((*opened)->writes_completed(), 3);
  opened->reset();
  FileRecoveryResult recovered = RecoverFromFile(options.path);
  ASSERT_TRUE(recovered.status.ok());
  EXPECT_EQ(recovered.blocks_valid, 3u);
}

TEST(FileLogDeviceTest, WallModeRequiresCrossThreadExecutor) {
  sim::Simulator sim;
  FileLogDeviceOptions options = OracleOptions("wall_on_sim.wal");
  options.model_latency = 0;
  auto opened = FileLogDevice::Open(&sim, {4, 4}, options);
  EXPECT_FALSE(opened.ok());
}

TEST(FileLogDeviceTest, RejectsUnalignedSlotBytes) {
  sim::Simulator sim;
  FileLogDeviceOptions options = OracleOptions("bad_slot.wal");
  options.slot_bytes = 1000;
  EXPECT_FALSE(FileLogDevice::Open(&sim, {4, 4}, options).ok());
}

TEST(FileLogDeviceTest, RejectsUnwritablePath) {
  sim::Simulator sim;
  FileLogDeviceOptions options = OracleOptions("unused.wal");
  options.path = "/nonexistent-dir-xyzzy/log.wal";
  EXPECT_FALSE(FileLogDevice::Open(&sim, {4, 4}, options).ok());
}

TEST(FileLogDeviceTest, BufferedFallbackStillWrites) {
  // Force the buffered path outright; the device must behave identically
  // apart from the direct_io_active() flag. (On filesystems that reject
  // O_DIRECT — tmpfs — the direct_io=true path degrades to exactly this.)
  sim::Simulator sim;
  FileLogDeviceOptions options = OracleOptions("buffered.wal");
  options.direct_io = false;
  auto opened = FileLogDevice::Open(&sim, {4, 4}, options);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  EXPECT_FALSE((*opened)->direct_io_active());
  (*opened)->Submit({{0, 0}, MakeImage(0, 1), nullptr});
  sim.Run();
  EXPECT_EQ((*opened)->writes_completed(), 1);
  EXPECT_EQ((*opened)->write_errors(), 0);
}

// --- The acceptance oracle ----------------------------------------------

db::DatabaseConfig OracleConfig(SimTime runtime) {
  db::DatabaseConfig config;
  config.workload = workload::PaperMix(0.05);
  config.workload.runtime = runtime;
  config.log.generation_blocks = {18, 16};
  config.log.recirculation = true;
  return config;
}

void ExpectStorageEqual(const LogStorage& a, const LogStorage& b) {
  ASSERT_EQ(a.num_generations(), b.num_generations());
  for (uint32_t g = 0; g < a.num_generations(); ++g) {
    ASSERT_EQ(a.generation_size(g), b.generation_size(g));
    for (uint32_t s = 0; s < a.generation_size(g); ++s) {
      const wal::BlockImage* left = a.Get({g, s});
      const wal::BlockImage* right = b.Get({g, s});
      ASSERT_EQ(left == nullptr, right == nullptr)
          << "written-state mismatch at gen " << g << " slot " << s;
      if (left != nullptr) {
        ASSERT_EQ(*left, *right)
            << "byte mismatch at gen " << g << " slot " << s;
      }
    }
  }
}

TEST(FileBackendOracleTest, SimAndFileBackendsProduceIdenticalLogBytes) {
  const SimTime runtime = SecondsToSimTime(30);
  // Reference: the default simulated backend.
  db::Database sim_db(OracleConfig(runtime));
  db::RunStats sim_stats = sim_db.Run();

  // Same canonical trace through the file backend.
  db::DatabaseConfig file_config = OracleConfig(runtime);
  file_config.log.backend.kind = BackendConfig::Kind::kFile;
  file_config.log.backend.path = TempPath("oracle_backend.wal");
  // Default slot size: the full-fidelity record encoding can exceed the
  // 2048 accounted bytes, and 16384 covers the worst case.
  db::Database file_db(file_config);
  db::RunStats file_stats = file_db.Run();

  // The manager-visible event streams are identical, so every run stat
  // and every durable block must match.
  EXPECT_EQ(sim_stats.total_committed, file_stats.total_committed);
  EXPECT_EQ(sim_stats.records_appended, file_stats.records_appended);
  EXPECT_EQ(sim_stats.log_writes_per_sec, file_stats.log_writes_per_sec);
  ASSERT_GT(file_db.file_device()->writes_completed(), 0);
  ExpectStorageEqual(sim_db.storage(), file_db.storage());

  // And the bytes that actually hit the disk recover to the same state.
  FileRecoveryResult recovered =
      RecoverFromFile(file_config.log.backend.path);
  ASSERT_TRUE(recovered.status.ok()) << recovered.status.message();
  EXPECT_FALSE(recovered.stopped_early) << recovered.stop_reason;
  ExpectStorageEqual(sim_db.storage(), recovered.storage);
}

}  // namespace
}  // namespace disk
}  // namespace elog
