// Property test: arbitrary record sets round-trip through the block
// format byte-exactly, and any single-byte corruption is detected.

#include <gtest/gtest.h>

#include "util/random.h"
#include "wal/block_format.h"

namespace elog {
namespace wal {
namespace {

class BlockRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

std::vector<LogRecord> RandomRecords(Rng* rng) {
  std::vector<LogRecord> records;
  uint32_t budget = kBlockPayloadBytes;
  while (true) {
    uint32_t pick = static_cast<uint32_t>(rng->NextBounded(4));
    LogRecord record;
    TxId tid = rng->NextBounded(1u << 20);
    Lsn lsn = rng->NextBounded(1ull << 40);
    switch (pick) {
      case 0:
        record = LogRecord::MakeBegin(tid, lsn);
        break;
      case 1:
        record = LogRecord::MakeCommit(tid, lsn);
        break;
      case 2:
        record = LogRecord::MakeAbort(tid, lsn);
        break;
      default: {
        uint32_t size = 8 + static_cast<uint32_t>(rng->NextBounded(400));
        Oid oid = rng->NextBounded(10'000'000);
        record = LogRecord::MakeData(tid, lsn, oid, size,
                                     ComputeValueDigest(tid, oid, lsn));
        // UNDO/REDO before-images, present on roughly half the records.
        if (rng->NextBool(0.5)) {
          record.prev_lsn = rng->NextBounded(1ull << 40);
          record.prev_digest = rng->NextUint64();
        }
        break;
      }
    }
    if (record.logged_size > budget) break;
    budget -= record.logged_size;
    records.push_back(record);
    if (rng->NextBool(0.02)) break;  // occasionally stop early
  }
  return records;
}

TEST_P(BlockRoundTripTest, EncodeDecodeIdentity) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<LogRecord> records = RandomRecords(&rng);
    uint32_t generation = static_cast<uint32_t>(rng.NextBounded(4));
    uint64_t seq = rng.NextUint64();
    BlockImage image = EncodeBlock(generation, seq, records);
    Result<DecodedBlock> decoded = DecodeBlock(image);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->generation, generation);
    EXPECT_EQ(decoded->write_seq, seq);
    ASSERT_EQ(decoded->records.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(decoded->records[i].type, records[i].type);
      EXPECT_EQ(decoded->records[i].tid, records[i].tid);
      EXPECT_EQ(decoded->records[i].lsn, records[i].lsn);
      EXPECT_EQ(decoded->records[i].oid, records[i].oid);
      EXPECT_EQ(decoded->records[i].logged_size, records[i].logged_size);
      EXPECT_EQ(decoded->records[i].value_digest, records[i].value_digest);
      EXPECT_EQ(decoded->records[i].prev_lsn, records[i].prev_lsn);
      EXPECT_EQ(decoded->records[i].prev_digest, records[i].prev_digest);
    }
  }
}

TEST_P(BlockRoundTripTest, RandomSingleByteCorruptionDetected) {
  Rng rng(GetParam() ^ 0xc0ffee);
  for (int iteration = 0; iteration < 50; ++iteration) {
    BlockImage image = EncodeBlock(0, 1, RandomRecords(&rng));
    BlockImage corrupt = image;
    size_t position = rng.NextBounded(corrupt.size());
    uint8_t flip =
        static_cast<uint8_t>(1u << rng.NextBounded(8));
    corrupt[position] ^= flip;
    EXPECT_FALSE(DecodeBlock(corrupt).ok())
        << "undetected flip of bit " << static_cast<int>(flip) << " at byte "
        << position;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 1234,
                                           0xdeadbeef));

}  // namespace
}  // namespace wal
}  // namespace elog
