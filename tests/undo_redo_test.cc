// UNDO/REDO mode (§1's generalization): steal policy, provisional stable
// versions, abort compensation, and recovery's undo pass.

#include <gtest/gtest.h>

#include <memory>

#include "db/database.h"
#include "db/recovery.h"

namespace elog {
namespace {

/// Direct-API fixture with a stable store wired like the Database facade.
class UndoRedoTest : public ::testing::Test {
 protected:
  void Build(LogManagerOptions options) {
    options.undo_redo = true;
    options.num_objects = 1000;
    storage_ = std::make_unique<disk::LogStorage>(options.generation_blocks);
    device_ = std::make_unique<disk::LogDevice>(
        &sim_, storage_.get(), options.log_write_latency, nullptr);
    drives_ = std::make_unique<disk::DriveArray>(
        &sim_, options.num_flush_drives, options.num_objects,
        options.flush_transfer_time, nullptr);
    manager_ = std::make_unique<EphemeralLogManager>(
        &sim_, options, device_.get(), drives_.get(), nullptr);
    manager_->set_flush_apply_hook([this](Oid oid, Lsn lsn, uint64_t digest) {
      stable_.ApplyFlush(oid, lsn, digest);
    });
    manager_->set_steal_apply_hook([this](Oid oid, Lsn lsn, uint64_t digest,
                                          TxId writer, Lsn prev_lsn,
                                          uint64_t prev_digest) {
      stable_.ApplySteal(oid, lsn, digest, writer, prev_lsn, prev_digest);
    });
    manager_->set_undo_apply_hook(
        [this](Oid oid, Lsn stolen, Lsn prev_lsn, uint64_t prev_digest) {
          stable_.ApplyUndo(oid, stolen, prev_lsn, prev_digest);
        });
    manager_->set_version_query([this](Oid oid) {
      db::ObjectVersion version = stable_.Get(oid);
      if (version.provisional) {
        return std::make_pair(version.prev_lsn, version.prev_digest);
      }
      return std::make_pair(version.lsn, version.value_digest);
    });
  }

  static LogManagerOptions StealEveryTick() {
    LogManagerOptions options;
    options.generation_blocks = {10, 10};
    options.steal_interval = 5 * kMillisecond;  // aggressive pressure
    return options;
  }

  TxId Begin(SimTime lifetime = SecondsToSimTime(1)) {
    workload::TransactionType type;
    type.lifetime = lifetime;
    return manager_->BeginTransaction(type);
  }

  sim::Simulator sim_;
  std::unique_ptr<disk::LogStorage> storage_;
  std::unique_ptr<disk::LogDevice> device_;
  std::unique_ptr<disk::DriveArray> drives_;
  std::unique_ptr<EphemeralLogManager> manager_;
  db::StableStore stable_;
};

TEST_F(UndoRedoTest, StealPutsProvisionalValueInStable) {
  Build(StealEveryTick());
  TxId tid = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(tid, 42, 100);
  sim_.RunUntil(sim_.Now() + SecondsToSimTime(1));
  EXPECT_GE(manager_->steals(), 1);
  db::ObjectVersion version = stable_.Get(42);
  EXPECT_TRUE(version.provisional);
  EXPECT_EQ(version.writer, tid);
  EXPECT_GT(version.lsn, 0u);
  EXPECT_EQ(version.prev_lsn, 0u);  // no committed predecessor
  manager_->CheckInvariants();
}

TEST_F(UndoRedoTest, AbortCompensatesStolenValue) {
  Build(StealEveryTick());
  TxId tid = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(tid, 42, 100);
  sim_.RunUntil(sim_.Now() + SecondsToSimTime(1));
  ASSERT_TRUE(stable_.Get(42).provisional);
  manager_->Abort(tid);
  sim_.Run();
  EXPECT_GE(manager_->compensations(), 1);
  EXPECT_GE(stable_.undos_applied(), 1);
  // No committed predecessor existed: the object vanishes from stable.
  EXPECT_EQ(stable_.Get(42), db::ObjectVersion{});
  manager_->CheckInvariants();
}

TEST_F(UndoRedoTest, AbortRestoresCommittedPredecessor) {
  Build(StealEveryTick());
  // First, commit a version of object 42 and let it flush.
  TxId first = Begin();
  manager_->WriteUpdate(first, 42, 100);
  Lsn committed_lsn = 0;
  manager_->Commit(first, [](TxId) {});
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  committed_lsn = stable_.Get(42).lsn;
  ASSERT_GT(committed_lsn, 0u);
  uint64_t committed_digest = stable_.Get(42).value_digest;

  // Now a second transaction updates it, gets stolen, and aborts.
  TxId second = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(second, 42, 100);
  sim_.RunUntil(sim_.Now() + SecondsToSimTime(1));
  ASSERT_TRUE(stable_.Get(42).provisional);
  EXPECT_EQ(stable_.Get(42).prev_lsn, committed_lsn);
  manager_->Abort(second);
  sim_.Run();
  EXPECT_FALSE(stable_.Get(42).provisional);
  EXPECT_EQ(stable_.Get(42).lsn, committed_lsn);
  EXPECT_EQ(stable_.Get(42).value_digest, committed_digest);
  manager_->CheckInvariants();
}

TEST_F(UndoRedoTest, CommitConfirmsStolenValue) {
  Build(StealEveryTick());
  TxId tid = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(tid, 42, 100);
  sim_.RunUntil(sim_.Now() + SecondsToSimTime(1));
  ASSERT_TRUE(stable_.Get(42).provisional);
  Lsn stolen_lsn = stable_.Get(42).lsn;
  manager_->Commit(tid, [](TxId) {});
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  // The commit-time flush confirms the same version.
  EXPECT_FALSE(stable_.Get(42).provisional);
  EXPECT_EQ(stable_.Get(42).lsn, stolen_lsn);
  EXPECT_EQ(manager_->ltt_size(), 0u);
  manager_->CheckInvariants();
}

TEST_F(UndoRedoTest, RecoveryRevertsUncommittedStolenValue) {
  Build(StealEveryTick());
  TxId tid = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(tid, 42, 100);
  sim_.RunUntil(sim_.Now() + SecondsToSimTime(1));
  ASSERT_TRUE(stable_.Get(42).provisional);
  // Crash now: the writer never committed.
  db::RecoveryResult result =
      db::RecoveryManager::Recover(*storage_, stable_);
  EXPECT_EQ(result.undos_applied, 1u);
  EXPECT_FALSE(result.state.count(42));
}

TEST_F(UndoRedoTest, RecoveryKeepsCommittedStolenValue) {
  Build(StealEveryTick());
  TxId tid = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(tid, 42, 100);
  sim_.RunUntil(sim_.Now() + SecondsToSimTime(1));
  Lsn stolen_lsn = stable_.Get(42).lsn;
  manager_->Commit(tid, [](TxId) {});
  manager_->ForceWriteOpenBuffers();
  sim_.RunUntil(sim_.Now() + 20 * kMillisecond);  // COMMIT durable
  // Crash with the confirmation flush possibly still pending: the COMMIT
  // record in the log legitimizes the provisional value.
  db::RecoveryResult result =
      db::RecoveryManager::Recover(*storage_, stable_);
  ASSERT_TRUE(result.state.count(42));
  EXPECT_EQ(result.state[42].lsn, stolen_lsn);
  EXPECT_FALSE(result.state[42].provisional);
}

TEST_F(UndoRedoTest, UndoImageBytesAccounted) {
  LogManagerOptions options;
  options.generation_blocks = {10, 10};
  Build(options);  // undo_redo on, no stealing
  TxId tid = Begin();
  manager_->WriteUpdate(tid, 1, 100);
  // The open buffer holds BEGIN (8) + data (100 + 8 undo bytes).
  EXPECT_EQ(manager_->generation(0).builder().used_bytes(), 116u);
}

TEST(UndoRedoOptionsTest, StealRequiresUndoRedo) {
  LogManagerOptions options;
  options.steal_interval = kMillisecond;
  EXPECT_FALSE(options.Validate().ok());
  options.undo_redo = true;
  EXPECT_TRUE(options.Validate().ok());
}

/// End-to-end crash property under aggressive stealing: recovery must
/// reproduce exactly the acknowledged committed state — never a stolen
/// uncommitted value.
class UndoRedoCrashTest : public ::testing::TestWithParam<SimTime> {};

TEST_P(UndoRedoCrashTest, RecoveryExactUnderStealing) {
  db::DatabaseConfig config;
  config.workload = workload::PaperMix(0.10);
  config.workload.runtime = SecondsToSimTime(3600);
  config.log.generation_blocks = {18, 14};
  config.log.recirculation = true;
  config.log.undo_redo = true;
  config.log.steal_interval = 20 * kMillisecond;  // 50 steals/s

  db::Database database(config);
  db::Database::CrashImage image =
      database.RunUntilCrash(GetParam(), /*torn_write=*/true);
  EXPECT_GT(database.manager().steals(), 0);

  db::RecoveryResult result =
      db::RecoveryManager::Recover(image.log, image.stable);
  for (const auto& [oid, expected] : image.expected_state) {
    auto it = result.state.find(oid);
    ASSERT_NE(it, result.state.end()) << "lost committed object " << oid;
    EXPECT_EQ(it->second.lsn, expected.lsn) << "object " << oid;
    EXPECT_EQ(it->second.value_digest, expected.value_digest);
  }
  for (const auto& [oid, recovered] : result.state) {
    auto it = image.expected_state.find(oid);
    ASSERT_NE(it, image.expected_state.end())
        << "recovered unacknowledged object " << oid << " (lsn "
        << recovered.lsn << ")";
    EXPECT_EQ(recovered.lsn, it->second.lsn);
  }
}

INSTANTIATE_TEST_SUITE_P(CrashSweep, UndoRedoCrashTest,
                         ::testing::Values(SecondsToSimTime(2),
                                           SecondsToSimTime(5),
                                           SecondsToSimTime(9) +
                                               3 * kMillisecond,
                                           SecondsToSimTime(16)));

}  // namespace
}  // namespace elog
