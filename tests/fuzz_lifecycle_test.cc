// Randomized lifecycle fuzzing of the EL manager across configurations:
// arbitrary interleavings of begin/update/commit/abort with simulated-time
// advancement, invariant checks throughout, conservation at the end, and
// a crash/recovery exactness check against the commit-hook shadow.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/recovery.h"
#include "db/stable_store.h"
#include "core/el_manager.h"
#include "util/random.h"

namespace elog {
namespace {

struct FuzzCase {
  const char* name;
  std::vector<uint32_t> generation_blocks;
  bool recirculation;
  UnflushedPolicy policy;
  bool release_on_commit;
  bool undo_redo;
  SimTime steal_interval;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<FuzzCase>& info) {
  return std::string(info.param.name) + "_s" +
         std::to_string(info.param.seed);
}

class FuzzLifecycleTest : public ::testing::TestWithParam<FuzzCase>,
                          public KillListener {
 public:
  void OnTransactionKilled(TxId tid) override {
    resolved_.insert(tid);
    open_.erase(tid);
    committing_.erase(tid);
  }

 protected:
  /// Every transaction that reached a terminal outcome (commit ack,
  /// abort, or kill) — a set, because a kill can interleave with the
  /// operation that would otherwise have resolved the transaction.
  std::unordered_set<TxId> resolved_;
  std::unordered_map<TxId, int> open_;  // still issuing operations
  std::unordered_set<TxId> committing_;
  std::unordered_set<TxId> acked_;
};

TEST_P(FuzzLifecycleTest, RandomInterleavingsStaySound) {
  const FuzzCase& c = GetParam();
  LogManagerOptions options;
  options.generation_blocks = c.generation_blocks;
  options.recirculation = c.recirculation;
  options.unflushed_policy = c.policy;
  options.release_on_commit = c.release_on_commit;
  options.undo_redo = c.undo_redo;
  options.steal_interval = c.steal_interval;
  options.num_objects = 2000;
  ASSERT_TRUE(options.Validate().ok());

  sim::Simulator sim;
  disk::LogStorage storage(options.generation_blocks);
  disk::LogDevice device(&sim, &storage, options.log_write_latency, nullptr);
  disk::DriveArray drives(&sim, options.num_flush_drives,
                          options.num_objects, options.flush_transfer_time,
                          nullptr);
  EphemeralLogManager manager(&sim, options, &device, &drives, nullptr);
  manager.set_kill_listener(this);

  db::StableStore stable;
  manager.set_flush_apply_hook([&](Oid oid, Lsn lsn, uint64_t digest) {
    stable.ApplyFlush(oid, lsn, digest);
  });
  manager.set_steal_apply_hook([&](Oid oid, Lsn lsn, uint64_t digest,
                                   TxId writer, Lsn prev_lsn,
                                   uint64_t prev_digest) {
    stable.ApplySteal(oid, lsn, digest, writer, prev_lsn, prev_digest);
  });
  manager.set_undo_apply_hook(
      [&](Oid oid, Lsn stolen, Lsn prev_lsn, uint64_t prev_digest) {
        stable.ApplyUndo(oid, stolen, prev_lsn, prev_digest);
      });
  manager.set_version_query([&](Oid oid) {
    db::ObjectVersion version = stable.Get(oid);
    if (version.provisional) {
      return std::make_pair(version.prev_lsn, version.prev_digest);
    }
    return std::make_pair(version.lsn, version.value_digest);
  });

  std::unordered_map<Oid, db::ObjectVersion> shadow;
  manager.set_commit_hook(
      [&](TxId tid, const std::vector<wal::LogRecord>& updates) {
        acked_.insert(tid);
        for (const wal::LogRecord& record : updates) {
          db::ObjectVersion& version = shadow[record.oid];
          if (record.lsn > version.lsn) {
            version.lsn = record.lsn;
            version.value_digest = record.value_digest;
          }
        }
      });

  Rng rng(c.seed);
  workload::TransactionType type;
  int64_t begun = 0;
  int64_t finished = 0;  // commit-requested or aborted

  for (int step = 0; step < 4000; ++step) {
    uint64_t draw = rng.NextBounded(100);
    if (draw < 25 || open_.empty()) {
      type.lifetime = SecondsToSimTime(1 + rng.NextBounded(30));
      TxId tid = manager.BeginTransaction(type);
      open_[tid] = 0;
      ++begun;
    } else if (draw < 70) {
      auto it = open_.begin();
      std::advance(it, rng.NextBounded(open_.size()));
      TxId tid = it->first;
      // The call may kill tid or any other open transaction (the kill
      // listener prunes open_), so no iterator survives it.
      manager.WriteUpdate(tid, rng.NextBounded(options.num_objects),
                          20 + static_cast<uint32_t>(rng.NextBounded(200)));
    } else if (draw < 85) {
      auto it = open_.begin();
      std::advance(it, rng.NextBounded(open_.size()));
      TxId tid = it->first;
      open_.erase(it);
      committing_.insert(tid);
      manager.Commit(tid, [&](TxId done) {
        committing_.erase(done);
        resolved_.insert(done);
        acked_.insert(done);
      });
    } else if (draw < 92) {
      auto it = open_.begin();
      std::advance(it, rng.NextBounded(open_.size()));
      TxId tid = it->first;
      open_.erase(it);
      manager.Abort(tid);
      resolved_.insert(tid);  // dedups with a kill during the call
    } else {
      // Let time pass: disk writes complete, flushes land, steals fire.
      manager.ForceWriteOpenBuffers();
      sim.RunUntil(sim.Now() + rng.NextBounded(200) * kMillisecond);
    }
    if (step % 200 == 0) manager.CheckInvariants();
  }

  // Crash point: verify recovery right here. The guarantee is tiered:
  //   - always (any EL config): no phantom objects and no version newer
  //     than acknowledged — uncommitted work never surfaces;
  //   - exactness additionally requires that no committed record was
  //     dropped with its flush still in flight (urgent_flushes == 0) and
  //     no commit-window kill occurred. The fuzz deliberately saturates
  //     tiny logs, so those documented windows do occur here.
  manager.CheckInvariants();
  if (!c.release_on_commit) {  // FW mode drops committed evidence
    db::RecoveryResult result =
        db::RecoveryManager::Recover(storage, stable);
    const bool no_phantom_windows = manager.unsafe_committing_kills() == 0 &&
                                    manager.unsafe_commit_drops() == 0;
    if (no_phantom_windows) {
      // Without commit-window kills, nothing unacknowledged can surface.
      for (const auto& [oid, recovered] : result.state) {
        auto it = shadow.find(oid);
        ASSERT_NE(it, shadow.end())
            << c.name << ": phantom object " << oid;
        EXPECT_LE(recovered.lsn, it->second.lsn)
            << c.name << ": recovered a version newer than acknowledged";
      }
    }
    if (no_phantom_windows && manager.urgent_flushes() == 0) {
      // Without dropped-while-flushing records either: exactness.
      for (const auto& [oid, expected] : shadow) {
        auto it = result.state.find(oid);
        ASSERT_NE(it, result.state.end())
            << c.name << ": lost committed object " << oid;
        EXPECT_EQ(it->second.lsn, expected.lsn);
        EXPECT_EQ(it->second.value_digest, expected.value_digest);
      }
    }
  }

  // Drain: finish everything still in flight.
  while (!open_.empty()) {
    TxId tid = open_.begin()->first;
    open_.erase(open_.begin());
    committing_.insert(tid);
    manager.Commit(tid, [&](TxId done) {
      committing_.erase(done);
      resolved_.insert(done);
    });
  }
  for (int i = 0; i < 1000 && !committing_.empty(); ++i) {
    manager.ForceWriteOpenBuffers();
    sim.RunUntil(sim.Now() + 100 * kMillisecond);
  }
  sim.Run();
  EXPECT_TRUE(committing_.empty());
  manager.CheckInvariants();
  // Conservation: everything begun reached exactly one terminal outcome.
  (void)finished;
  EXPECT_EQ(static_cast<int64_t>(resolved_.size()), begun);
  // Quiescence: tables empty once all flushing settles. The naive §2.1
  // flush-on-demand policy never settles on its own — committed records
  // wait in the log until head pressure flushes them — so it is exempt.
  if (c.policy != UnflushedPolicy::kFlushOnDemand) {
    EXPECT_EQ(manager.ltt_size(), 0u);
    EXPECT_EQ(manager.lot_size(), 0u);
  }
}

std::vector<FuzzCase> MakeCases() {
  std::vector<FuzzCase> cases;
  for (uint64_t seed : {7ull, 1234ull, 999ull}) {
    cases.push_back({"el", {12, 12}, true, UnflushedPolicy::kKeepInLog,
                     false, false, 0, seed});
    cases.push_back({"el_tiny", {5, 5}, true, UnflushedPolicy::kKeepInLog,
                     false, false, 0, seed});
    cases.push_back({"el_norecirc", {12, 12}, false,
                     UnflushedPolicy::kKeepInLog, false, false, 0, seed});
    cases.push_back({"el_demand", {12, 12}, true,
                     UnflushedPolicy::kFlushOnDemand, false, false, 0,
                     seed});
    cases.push_back({"fw", {40}, false, UnflushedPolicy::kKeepInLog, true,
                     false, 0, seed});
    cases.push_back({"undo_redo", {12, 12}, true,
                     UnflushedPolicy::kKeepInLog, false, true,
                     10 * kMillisecond, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, FuzzLifecycleTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

}  // namespace
}  // namespace elog
