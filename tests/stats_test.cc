#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace elog {
namespace {

TEST(StatAccumulatorTest, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(StatAccumulatorTest, SingleValue) {
  StatAccumulator acc;
  acc.Add(7.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 7.5);
  EXPECT_EQ(acc.min(), 7.5);
  EXPECT_EQ(acc.max(), 7.5);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulatorTest, KnownMoments) {
  StatAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  // Sample variance of the set is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatAccumulatorTest, NegativeValues) {
  StatAccumulator acc;
  acc.Add(-5.0);
  acc.Add(5.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), -5.0);
  EXPECT_EQ(acc.max(), 5.0);
}

TEST(StatAccumulatorTest, ResetClears) {
  StatAccumulator acc;
  acc.Add(1.0);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
}

TEST(HistogramTest, EmptyPercentiles) {
  Histogram hist;
  EXPECT_EQ(hist.Percentile(50), 0.0);
  EXPECT_EQ(hist.count(), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram hist;
  hist.Add(100.0);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_DOUBLE_EQ(hist.mean(), 100.0);
  EXPECT_EQ(hist.Percentile(0), 100.0);
  EXPECT_EQ(hist.Percentile(100), 100.0);
}

TEST(HistogramTest, MedianOfUniformRange) {
  Histogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Add(static_cast<double>(i));
  // Exponential buckets: the median is approximate but must be within a
  // bucket's width of 500.
  EXPECT_NEAR(hist.Median(), 500.0, 100.0);
  EXPECT_GE(hist.Percentile(99), 900.0);
  EXPECT_LE(hist.Percentile(1), 20.0);
}

TEST(HistogramTest, PercentilesMonotone) {
  Histogram hist;
  for (int i = 0; i < 10000; ++i) hist.Add(static_cast<double>(i % 777));
  double previous = 0.0;
  for (double p = 0; p <= 100; p += 5) {
    double value = hist.Percentile(p);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(HistogramTest, PercentileBoundedByMinMax) {
  Histogram hist;
  hist.Add(3.0);
  hist.Add(900000.0);
  for (double p : {0.0, 10.0, 50.0, 90.0, 100.0}) {
    EXPECT_GE(hist.Percentile(p), 3.0);
    EXPECT_LE(hist.Percentile(p), 900000.0);
  }
}

TEST(HistogramTest, ResetClears) {
  Histogram hist;
  hist.Add(5);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.Percentile(50), 0.0);
}

TEST(TimeWeightedValueTest, ConstantSignal) {
  TimeWeightedValue value;
  value.Set(0, 10.0);
  EXPECT_EQ(value.current(), 10.0);
  EXPECT_EQ(value.peak(), 10.0);
  EXPECT_DOUBLE_EQ(value.Average(100), 10.0);
}

TEST(TimeWeightedValueTest, StepSignalAverage) {
  TimeWeightedValue value;
  value.Set(0, 0.0);
  value.Set(50, 100.0);
  // 50 µs at 0 then 50 µs at 100 -> average 50.
  EXPECT_DOUBLE_EQ(value.Average(100), 50.0);
  EXPECT_EQ(value.peak(), 100.0);
}

TEST(TimeWeightedValueTest, PeakSurvivesDecline) {
  TimeWeightedValue value;
  value.Set(0, 5.0);
  value.Set(10, 50.0);
  value.Set(20, 1.0);
  EXPECT_EQ(value.peak(), 50.0);
  EXPECT_EQ(value.current(), 1.0);
}

TEST(TimeWeightedValueTest, BeforeFirstSetAverageIsCurrent) {
  TimeWeightedValue value;
  EXPECT_EQ(value.Average(100), 0.0);
  value.Set(100, 3.0);
  EXPECT_EQ(value.Average(100), 3.0);  // zero elapsed time
}

TEST(TimeWeightedValueTest, RepeatedSetsAtSameInstant) {
  TimeWeightedValue value;
  value.Set(10, 1.0);
  value.Set(10, 2.0);
  value.Set(10, 3.0);
  EXPECT_EQ(value.current(), 3.0);
  EXPECT_EQ(value.peak(), 3.0);
  EXPECT_DOUBLE_EQ(value.Average(20), 3.0);
}

}  // namespace
}  // namespace elog
