#include "wal/block_format.h"

#include <gtest/gtest.h>

#include <vector>

namespace elog {
namespace wal {
namespace {

std::vector<LogRecord> SampleRecords() {
  return {
      LogRecord::MakeBegin(1, 10),
      LogRecord::MakeData(1, 11, 777, 100, ComputeValueDigest(1, 777, 11)),
      LogRecord::MakeData(1, 12, 778, 100, ComputeValueDigest(1, 778, 12)),
      LogRecord::MakeCommit(1, 13),
  };
}

TEST(BlockFormatTest, EncodeDecodeRoundTrip) {
  std::vector<LogRecord> records = SampleRecords();
  BlockImage image = EncodeBlock(2, 99, records);
  Result<DecodedBlock> decoded = DecodeBlock(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->generation, 2u);
  EXPECT_EQ(decoded->write_seq, 99u);
  ASSERT_EQ(decoded->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded->records[i].type, records[i].type);
    EXPECT_EQ(decoded->records[i].tid, records[i].tid);
    EXPECT_EQ(decoded->records[i].lsn, records[i].lsn);
    EXPECT_EQ(decoded->records[i].oid, records[i].oid);
    EXPECT_EQ(decoded->records[i].logged_size, records[i].logged_size);
    EXPECT_EQ(decoded->records[i].value_digest, records[i].value_digest);
  }
}

TEST(BlockFormatTest, EmptyBlockRoundTrips) {
  BlockImage image = EncodeBlock(0, 1, {});
  Result<DecodedBlock> decoded = DecodeBlock(image);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->records.empty());
}

TEST(BlockFormatTest, CorruptionDetectedAnywhere) {
  BlockImage image = EncodeBlock(0, 7, SampleRecords());
  for (size_t pos = 0; pos < image.size(); pos += 13) {
    BlockImage corrupt = image;
    corrupt[pos] ^= 0x40;
    Result<DecodedBlock> decoded = DecodeBlock(corrupt);
    EXPECT_FALSE(decoded.ok()) << "corruption at byte " << pos;
    EXPECT_TRUE(decoded.status().IsCorruption());
  }
}

TEST(BlockFormatTest, TruncatedImageRejected) {
  BlockImage image = EncodeBlock(0, 7, SampleRecords());
  for (size_t keep : {0u, 10u, 47u, 60u}) {
    BlockImage truncated(image.begin(), image.begin() + keep);
    EXPECT_FALSE(DecodeBlock(truncated).ok()) << "kept " << keep;
  }
}

TEST(BlockFormatTest, WrongMagicRejected) {
  BlockImage image = EncodeBlock(0, 7, {});
  image[0] ^= 0xff;
  Result<DecodedBlock> decoded = DecodeBlock(image);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);
}

TEST(BlockBuilderTest, TracksAccountedBytes) {
  BlockBuilder builder(0);
  EXPECT_TRUE(builder.empty());
  EXPECT_EQ(builder.free_bytes(), kBlockPayloadBytes);
  ASSERT_TRUE(builder.Add(LogRecord::MakeBegin(1, 1)));
  EXPECT_EQ(builder.used_bytes(), kTxRecordBytes);
  ASSERT_TRUE(builder.Add(LogRecord::MakeData(1, 2, 5, 100, 0)));
  EXPECT_EQ(builder.used_bytes(), kTxRecordBytes + 100);
  EXPECT_EQ(builder.record_count(), 2u);
}

TEST(BlockBuilderTest, ExactCapacityPacking) {
  // 20 records of 100 bytes fill the 2000-byte payload exactly.
  BlockBuilder builder(0);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(builder.Add(LogRecord::MakeData(1, i + 1, i, 100, 0)));
  }
  EXPECT_EQ(builder.free_bytes(), 0u);
  EXPECT_FALSE(builder.Fits(1));
  EXPECT_FALSE(builder.Add(LogRecord::MakeBegin(2, 99)));
  EXPECT_EQ(builder.record_count(), 20u);  // rejected record left no trace
}

TEST(BlockBuilderTest, RecordsNeverSpanBlocks) {
  BlockBuilder builder(0);
  ASSERT_TRUE(builder.Add(LogRecord::MakeData(1, 1, 1, 1950, 0)));
  // 51 bytes free: a 100-byte record must be refused, not split.
  EXPECT_FALSE(builder.Add(LogRecord::MakeData(1, 2, 2, 100, 0)));
  EXPECT_TRUE(builder.Add(LogRecord::MakeCommit(1, 3)));  // 8 bytes fits
}

TEST(BlockBuilderTest, FinishResetsForReuse) {
  BlockBuilder builder(3);
  builder.Add(LogRecord::MakeBegin(1, 1));
  BlockImage image = builder.Finish(5);
  EXPECT_TRUE(builder.empty());
  EXPECT_EQ(builder.used_bytes(), 0u);
  Result<DecodedBlock> decoded = DecodeBlock(image);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->generation, 3u);
  EXPECT_EQ(decoded->write_seq, 5u);
  // Builder usable again.
  builder.Add(LogRecord::MakeBegin(2, 2));
  EXPECT_EQ(builder.record_count(), 1u);
}

TEST(BlockBuilderTest, ResetDiscards) {
  BlockBuilder builder(0);
  builder.Add(LogRecord::MakeBegin(1, 1));
  builder.Reset();
  EXPECT_TRUE(builder.empty());
}

TEST(BlockFormatTest, MaxTxRecordsPerBlock) {
  // 250 tx records of 8 bytes fill a block exactly and round trip.
  BlockBuilder builder(1);
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(builder.Add(LogRecord::MakeBegin(i, i + 1)));
  }
  EXPECT_FALSE(builder.Fits(kTxRecordBytes));
  BlockImage image = builder.Finish(1);
  Result<DecodedBlock> decoded = DecodeBlock(image);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->records.size(), 250u);
}

}  // namespace
}  // namespace wal
}  // namespace elog
