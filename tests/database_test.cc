// End-to-end tests of the Database facade: full (shortened) paper
// workloads through EL and FW, with the sanity numbers of §3/§4.

#include "db/database.h"

#include <gtest/gtest.h>

namespace elog {
namespace db {
namespace {

DatabaseConfig SmallConfig(double long_fraction, SimTime runtime) {
  DatabaseConfig config;
  config.workload = workload::PaperMix(long_fraction);
  config.workload.runtime = runtime;
  config.log.generation_blocks = {18, 16};
  config.log.recirculation = true;
  return config;
}

TEST(DatabaseTest, ShortElRunCompletesCleanly) {
  DatabaseConfig config = SmallConfig(0.05, SecondsToSimTime(30));
  Database database(config);
  RunStats stats = database.Run();
  EXPECT_EQ(stats.total_started, 3000);
  EXPECT_EQ(stats.total_killed, 0);
  EXPECT_EQ(stats.total_committed, 3000);
  database.manager().CheckInvariants();
}

TEST(DatabaseTest, UpdateRateMatchesPaperSanityNumbers) {
  // §4: 210 updates/s at 5%, 280 at 40%. Short windows see a deficit
  // from 10 s transactions started near the end (their records land
  // after the snapshot), so allow 10%.
  for (auto [mix, expected] : {std::pair{0.05, 210.0}, {0.40, 280.0}}) {
    DatabaseConfig config = SmallConfig(mix, SecondsToSimTime(100));
    if (mix > 0.2) config.log.generation_blocks = {40, 40};
    Database database(config);
    RunStats stats = database.Run();
    double rate = stats.updates_written / 100.0;
    EXPECT_NEAR(rate, expected, expected * 0.10) << "mix " << mix;
  }
}

TEST(DatabaseTest, LogBandwidthNearExpectedByteRate) {
  DatabaseConfig config = SmallConfig(0.05, SecondsToSimTime(60));
  Database database(config);
  RunStats stats = database.Run();
  // 22.6 KB/s over 2000-byte blocks = 11.3 blocks/s for generation 0,
  // plus forwarding overhead; the paper reports ~12.9 total.
  EXPECT_GT(stats.log_writes_per_sec, 11.0);
  EXPECT_LT(stats.log_writes_per_sec, 14.5);
}

TEST(DatabaseTest, CommitLatencyReflectsGroupCommit) {
  DatabaseConfig config = SmallConfig(0.05, SecondsToSimTime(30));
  Database database(config);
  RunStats stats = database.Run();
  // A block fills every ~88 ms; mean ack delay is roughly half that plus
  // the 15 ms write. Bound loosely.
  EXPECT_GT(stats.commit_latency_mean_us, 20.0 * kMillisecond);
  EXPECT_LT(stats.commit_latency_mean_us, 120.0 * kMillisecond);
}

TEST(DatabaseTest, FlushKeepsUpWithAmpleBandwidth) {
  DatabaseConfig config = SmallConfig(0.05, SecondsToSimTime(30));
  Database database(config);
  RunStats stats = database.Run();
  // 400 flush/s versus 210 updates/s: negligible backlog.
  EXPECT_LT(stats.flush_backlog, 30u);
  EXPECT_GT(stats.flushes_completed, 5500);
}

TEST(DatabaseTest, ScarceFlushBandwidthBuildsBacklogAndLocality) {
  DatabaseConfig ample = SmallConfig(0.05, SecondsToSimTime(60));
  DatabaseConfig scarce = SmallConfig(0.05, SecondsToSimTime(60));
  scarce.log.generation_blocks = {20, 16};
  scarce.log.flush_transfer_time = 45 * kMillisecond;
  Database ample_db(ample);
  Database scarce_db(scarce);
  RunStats ample_stats = ample_db.Run();
  RunStats scarce_stats = scarce_db.Run();
  EXPECT_GT(scarce_stats.flush_backlog, ample_stats.flush_backlog);
  // §4: the backlog makes flush I/O more sequential (smaller seeks).
  EXPECT_LT(scarce_stats.mean_flush_seek_distance,
            ample_stats.mean_flush_seek_distance * 0.8);
}

TEST(DatabaseTest, FwNeedsMoreSpaceThanEl) {
  // The headline claim at a 5% mix, at reduced runtime: FW at EL's block
  // budget dies; EL survives.
  DatabaseConfig el = SmallConfig(0.05, SecondsToSimTime(60));
  el.log.generation_blocks = {18, 10};
  Database el_db(el);
  RunStats el_stats = el_db.Run();
  EXPECT_EQ(el_stats.total_killed, 0);

  DatabaseConfig fw = el;
  fw.log = MakeFirewallOptions(28);
  fw.stop_on_first_kill = true;
  Database fw_db(fw);
  RunStats fw_stats = fw_db.Run();
  EXPECT_GT(fw_stats.total_killed, 0);
}

TEST(DatabaseTest, FwSurvivesAtPaperMinimum) {
  DatabaseConfig fw = SmallConfig(0.05, SecondsToSimTime(60));
  fw.log = MakeFirewallOptions(123);
  Database database(fw);
  RunStats stats = database.Run();
  EXPECT_EQ(stats.total_killed, 0);
  EXPECT_NEAR(stats.log_writes_per_sec, 11.6, 0.5);
}

TEST(DatabaseTest, StopOnFirstKillEndsEarly) {
  DatabaseConfig config = SmallConfig(0.05, SecondsToSimTime(120));
  config.log = MakeFirewallOptions(20);  // far too small
  config.stop_on_first_kill = true;
  Database database(config);
  RunStats stats = database.Run();
  EXPECT_GT(stats.total_killed, 0);
  EXPECT_LT(database.simulator().Now(), SecondsToSimTime(60));
}

TEST(DatabaseTest, ExpectedStateTracksCommits) {
  DatabaseConfig config = SmallConfig(0.05, SecondsToSimTime(10));
  Database database(config);
  RunStats stats = database.Run();
  // Every committed transaction wrote ~2 updates over distinct objects;
  // the shadow has at least one object per committing transaction.
  EXPECT_GT(stats.total_committed, 0);
  EXPECT_GE(database.expected_state().size(),
            static_cast<size_t>(stats.total_committed));
  // All flushed state agrees with the shadow.
  for (const auto& [oid, version] : database.stable().objects()) {
    auto it = database.expected_state().find(oid);
    ASSERT_NE(it, database.expected_state().end());
    EXPECT_LE(version.lsn, it->second.lsn);
  }
}

TEST(DatabaseTest, DeterministicAcrossRuns) {
  auto run = [] {
    DatabaseConfig config = SmallConfig(0.05, SecondsToSimTime(20));
    Database database(config);
    RunStats stats = database.Run();
    return std::tuple(stats.total_committed, stats.records_appended,
                      stats.log_writes_per_sec,
                      database.expected_state().size());
  };
  EXPECT_EQ(run(), run());
}

TEST(DatabaseTest, SeedChangesOutcomeDetails) {
  DatabaseConfig a = SmallConfig(0.05, SecondsToSimTime(20));
  DatabaseConfig b = a;
  b.workload.seed = 777;
  Database da(a);
  Database db_(b);
  da.Run();
  db_.Run();
  EXPECT_NE(da.expected_state(), db_.expected_state());
}

TEST(DatabaseDeathTest, MismatchedObjectCountsRejected) {
  DatabaseConfig config = SmallConfig(0.05, SecondsToSimTime(10));
  config.workload.num_objects = 5'000'000;
  EXPECT_DEATH(Database database(config), "NUM_OBJECTS");
}

}  // namespace
}  // namespace db
}  // namespace elog
