// Regression armor for the reproduction itself: the qualitative shape of
// every §4 result, at reduced runtimes (60 s instead of 500 s). If a
// change to the engine breaks "who wins, by roughly what factor, where
// the crossovers fall", it fails here rather than silently skewing the
// benches.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/fw_manager.h"
#include "db/database.h"
#include "harness/experiment.h"
#include "harness/figures.h"

namespace elog {
namespace harness {
namespace {

class PaperShapeTest : public ::testing::Test {
 protected:
  static workload::WorkloadSpec Mix(double fraction) {
    workload::WorkloadSpec spec = workload::PaperMix(fraction);
    spec.runtime = SecondsToSimTime(60);
    return spec;
  }

  static db::RunStats RunConfig(const LogManagerOptions& options,
                                const workload::WorkloadSpec& spec) {
    db::DatabaseConfig config;
    config.log = options;
    config.workload = spec;
    return RunExperiment(config);
  }
};

TEST_F(PaperShapeTest, Figure4SpaceOrderingAndFactor) {
  // At the 5% mix EL needs several times less space than FW; the ratio
  // shrinks as the long-transaction fraction grows (Figure 4's shape).
  double previous_ratio = 1e9;
  for (double mix : {0.05, 0.20, 0.40}) {
    workload::WorkloadSpec spec = Mix(mix);
    MinSpaceResult fw = MinFirewallSpace(MakeFirewallOptions(8), spec);
    LogManagerOptions el;
    el.recirculation = false;
    MinSpaceResult el_min = MinElSpace(el, spec, 4, 30);
    double ratio =
        static_cast<double>(fw.total_blocks) / el_min.total_blocks;
    EXPECT_GT(ratio, 1.3) << "EL must beat FW on space at mix " << mix;
    EXPECT_LT(ratio, previous_ratio + 0.15)
        << "EL's advantage must shrink with the mix";
    previous_ratio = ratio;
    if (mix == 0.05) {
      EXPECT_GT(ratio, 3.0) << "paper reports 3.6x at the 5% mix";
    }
  }
}

TEST_F(PaperShapeTest, Figure5BandwidthOrderingAndPremium) {
  workload::WorkloadSpec spec = Mix(0.05);
  MinSpaceResult fw = MinFirewallSpace(MakeFirewallOptions(8), spec);
  LogManagerOptions el;
  el.recirculation = false;
  MinSpaceResult el_min = MinElSpace(el, spec, 4, 30);
  // FW near the raw fill rate (~11.3 blocks/s); EL above FW but by a
  // bounded premium (paper: +11%).
  EXPECT_NEAR(fw.stats.log_writes_per_sec, 11.6, 0.6);
  EXPECT_GT(el_min.stats.log_writes_per_sec, fw.stats.log_writes_per_sec);
  EXPECT_LT(el_min.stats.log_writes_per_sec,
            fw.stats.log_writes_per_sec * 1.30);
}

TEST_F(PaperShapeTest, Figure6MemoryOrdering) {
  workload::WorkloadSpec spec = Mix(0.05);
  MinSpaceResult fw = MinFirewallSpace(MakeFirewallOptions(8), spec);
  LogManagerOptions el;
  el.recirculation = false;
  MinSpaceResult el_min = MinElSpace(el, spec, 4, 30);
  // EL pays more memory than FW, but stays in the tens of kilobytes
  // ("can all fit in the main memory of many workstations").
  EXPECT_GT(el_min.stats.peak_memory_bytes, fw.stats.peak_memory_bytes);
  EXPECT_LT(el_min.stats.peak_memory_bytes, 100'000.0);
  // FW's model: 22 B x ~145 concurrent transactions.
  EXPECT_NEAR(fw.stats.peak_memory_bytes, 22 * 145, 22 * 40);
}

TEST_F(PaperShapeTest, Figure7RecirculationTradesSpaceForBandwidth) {
  workload::WorkloadSpec spec = Mix(0.05);
  LogManagerOptions base;
  Fig7Result result = RunFig7(base, spec, 18, 16);
  // Recirculation lets the last generation shrink below the
  // no-recirculation minimum (16)...
  EXPECT_LT(result.min_gen1_blocks, 16u);
  // ...at a monotone-in-aggregate bandwidth cost.
  const Fig7Point& largest = result.points.front();
  Fig7Point smallest_surviving = largest;
  for (const Fig7Point& point : result.points) {
    if (point.survives) smallest_surviving = point;
  }
  EXPECT_GT(smallest_surviving.bandwidth_total, largest.bandwidth_total);
  EXPECT_GT(smallest_surviving.recirculated, largest.recirculated);
  // The paper's operating window: bandwidth grows only a few percent
  // from 34 down to 28 total blocks.
  for (const Fig7Point& point : result.points) {
    if (point.survives && point.total_blocks >= 28) {
      EXPECT_LT(point.bandwidth_total, largest.bandwidth_total * 1.05);
    }
  }
}

TEST_F(PaperShapeTest, ScarceFlushLocalityFeedback) {
  // §4: as the flush backlog grows, seeks shrink (negative feedback).
  workload::WorkloadSpec spec = Mix(0.05);
  LogManagerOptions normal;
  normal.generation_blocks = {20, 11};
  LogManagerOptions scarce = normal;
  scarce.flush_transfer_time = 45 * kMillisecond;
  db::RunStats normal_stats = RunConfig(normal, spec);
  db::RunStats scarce_stats = RunConfig(scarce, spec);
  EXPECT_LT(scarce_stats.mean_flush_seek_distance,
            normal_stats.mean_flush_seek_distance * 0.7);
  EXPECT_GT(scarce_stats.flush_backlog, normal_stats.flush_backlog);
  EXPECT_EQ(scarce_stats.kills, 0);
}

TEST_F(PaperShapeTest, UpdateRateAnchors) {
  // §4's in-text sanity numbers.
  EXPECT_DOUBLE_EQ(workload::PaperMix(0.05).ExpectedUpdateRate(), 210.0);
  EXPECT_DOUBLE_EQ(workload::PaperMix(0.40).ExpectedUpdateRate(), 280.0);
}

TEST_F(PaperShapeTest, Gen0OccupancySeriesMonotoneThenSteady) {
  // The MetricSampler's gen-0 occupancy series under the §4.1 workload:
  // the circular array fills from empty (a monotone non-decreasing ramp
  // once smoothed over the sampling cadence) and then holds near-full —
  // EL reclaims space continuously, it does not drain its generations.
  db::DatabaseConfig config;
  config.workload = Mix(0.05);
  config.log.generation_blocks = {18, 12};
  config.metric_sample_interval = SecondsToSimTime(1);
  db::Database database(config);
  database.Run();
  const obs::MetricSampler& sampler = *database.sampler();
  std::vector<double> series = sampler.Series("el.gen0.occupancy");
  ASSERT_GE(series.size(), 30u);

  // The plateau is the series' own maximum — a few blocks below the
  // configured size, since head advance keeps reclaiming the oldest
  // slots (the k+2 constraint needs headroom).
  const double size = 18.0;
  const double plateau = *std::max_element(series.begin(), series.end());
  EXPECT_GT(plateau, size * 0.7) << "generation 0 never filled";
  EXPECT_LE(plateau, size);

  // Monotone ramp (tolerance one block of sampling jitter) until the
  // series first reaches the plateau…
  size_t steady_start = series.size();
  for (size_t i = 0; i < series.size(); ++i) {
    if (series[i] >= plateau - 1.0) {
      steady_start = i;
      break;
    }
    if (i > 0) {
      EXPECT_GE(series[i] + 1.0, series[i - 1])
          << "occupancy dipped during the ramp at sample " << i;
    }
  }
  ASSERT_LT(steady_start, series.size() / 2)
      << "generation 0 took too long to fill under the paper workload";
  // …then steady: the circular array reuses space continuously and
  // never drains back down.
  for (size_t i = steady_start; i < series.size(); ++i) {
    EXPECT_GE(series[i], plateau - 3.0)
        << "occupancy fell out of steady state at sample " << i;
    EXPECT_LE(series[i], size);
  }
}

}  // namespace
}  // namespace harness
}  // namespace elog
