// Pinned-golden determinism tests for the hot-path rework.
//
// The event-kernel / CRC / block-pool optimizations must not change a
// single simulated outcome. These tests pin end-of-run scalars of two
// very different runs — a short Figure-5 bandwidth configuration and a
// cancellation-heavy fault-injected torture trial (kills cancel pending
// generator events; lingers and retries churn the event queue) — to the
// exact values the pre-rework kernel produced. Any behavioral drift in
// the event queue ordering, CRC digests, or block image contents shows
// up here as a scalar mismatch.
//
// The pinned values were captured from the seed implementation
// (std::function event queue, byte-at-a-time table CRC, per-block vector
// allocation) and must never be updated to "fix" this test: a mismatch
// means the rework changed simulated behavior.

#include <gtest/gtest.h>

#include "db/database.h"
#include "runner/torture.h"
#include "workload/spec.h"

namespace elog {
namespace {

db::RunStats RunShortFig5() {
  db::DatabaseConfig config;
  config.workload = workload::PaperMix(0.05);
  config.workload.runtime = SecondsToSimTime(60);
  config.workload.seed = 42;
  config.log.generation_blocks = {18, 12};
  db::Database database(config);
  return database.Run();
}

TEST(DeterminismGoldenTest, Fig5ShortRunMatchesPinnedScalars) {
  db::RunStats stats = RunShortFig5();
  // Doubles compared exactly: the run is deterministic to the bit.
  EXPECT_EQ(stats.log_writes_per_sec, 12.633333333333333);
  ASSERT_EQ(stats.log_writes_per_sec_by_generation.size(), 2u);
  EXPECT_EQ(stats.log_writes_per_sec_by_generation[0], 11.416666666666666);
  EXPECT_EQ(stats.log_writes_per_sec_by_generation[1], 1.2166666666666666);
  EXPECT_EQ(stats.updates_written, 12346);
  EXPECT_EQ(stats.flushes_completed, 12223);
  EXPECT_EQ(stats.total_started, 6000);
  EXPECT_EQ(stats.total_committed, 6000);
  EXPECT_EQ(stats.total_killed, 0);
  EXPECT_EQ(stats.records_appended, 24600);
  EXPECT_EQ(stats.records_forwarded, 4517);
  EXPECT_EQ(stats.records_recirculated, 522);
  EXPECT_EQ(stats.records_discarded, 24426);
  EXPECT_EQ(stats.commit_latency_mean_us, 64334.874999999913);
  EXPECT_EQ(stats.peak_memory_bytes, 14040.0);
}

TEST(DeterminismGoldenTest, CancellationHeavyRunMatchesPinnedScalars) {
  // An undersized log under the 20% mix: most long transactions are
  // killed (5345 of 6000 arrivals), and every kill cancels the victim's
  // pending generator events — this run leans on EventQueue::Cancel
  // harder than any figure configuration does.
  db::DatabaseConfig config;
  config.workload = workload::PaperMix(0.20);
  config.workload.runtime = SecondsToSimTime(60);
  config.workload.seed = 42;
  config.log.generation_blocks = {8, 10};
  db::Database database(config);
  db::RunStats stats = database.Run();
  EXPECT_EQ(stats.total_killed, 5345);
  EXPECT_EQ(stats.total_committed, 655);
  EXPECT_EQ(stats.total_started, 6000);
  EXPECT_EQ(stats.records_appended, 10894);
  EXPECT_EQ(stats.records_forwarded, 2188);
  EXPECT_EQ(stats.records_recirculated, 4542588);
  EXPECT_EQ(stats.records_discarded, 10836);
  EXPECT_EQ(stats.log_writes_per_sec, 60.483333333333334);
  EXPECT_EQ(stats.commit_latency_mean_us, 129488246.56488551);
  EXPECT_EQ(stats.peak_memory_bytes, 20240.0);
}

TEST(DeterminismGoldenTest, Fig5ShortRunTwinRunsAgree) {
  db::RunStats a = RunShortFig5();
  db::RunStats b = RunShortFig5();
  EXPECT_EQ(a.log_writes_per_sec, b.log_writes_per_sec);
  EXPECT_EQ(a.updates_written, b.updates_written);
  EXPECT_EQ(a.total_committed, b.total_committed);
  EXPECT_EQ(a.commit_latency_mean_us, b.commit_latency_mean_us);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
}

TEST(DeterminismGoldenTest, TortureTrialRecoveryDigestMatchesPinned) {
  // Trial 12 of the default UNDO/REDO torture spec — the most fault-rich
  // of the first forty: transient write errors with front-of-queue
  // retries, bit-rot, flush retry storms, a torn-write crash mid-stream,
  // and an UNDO pass at recovery. Recovery re-scans and CRC-checks every
  // block, so this digest also witnesses CRC and block-image
  // equivalence across implementations.
  runner::TortureSpec spec;
  runner::TortureTrial trial = runner::RunTortureTrial(
      spec, runner::TortureManager::kEphemeralUndo, 12);
  EXPECT_TRUE(trial.ok);
  EXPECT_EQ(trial.seed, 11943278627979894855ull);
  EXPECT_EQ(trial.crash_time, 11263667);
  EXPECT_EQ(trial.crash_events, 7451u);
  EXPECT_EQ(trial.torn_write, true);
  EXPECT_EQ(trial.committed, 977);
  EXPECT_EQ(trial.killed, 0);
  EXPECT_EQ(trial.log_write_retries, 5);
  EXPECT_EQ(trial.bit_rot_writes, 2);
  EXPECT_EQ(trial.flush_retries, 51);
  EXPECT_EQ(trial.blocks_corrupt, 2);
  EXPECT_EQ(trial.records_recovered, 9);
  EXPECT_EQ(trial.undos_applied, 58);
}

}  // namespace
}  // namespace elog
