// Duplex recovery: the per-slot read-repair merge (RecoverDuplex), the
// DerivePolicy oracle-strength rules, and the PR's acceptance scenario —
// a torture trial that kills one log replica mid-run and then crashes
// recovers the acknowledged state exactly, while the same trial replayed
// in single-log mode demonstrably loses data.

#include <gtest/gtest.h>

#include <vector>

#include "db/recovery.h"
#include "db/recovery_check.h"
#include "db/stable_store.h"
#include "disk/log_storage.h"
#include "runner/torture.h"
#include "wal/block_format.h"

namespace elog {
namespace db {
namespace {

/// One committed transaction in one block: BEGIN, DATA(oid), COMMIT.
wal::BlockImage TxBlock(uint32_t generation, uint64_t seq, TxId tid, Oid oid,
                        Lsn lsn) {
  return wal::EncodeBlock(
      generation, seq,
      {wal::LogRecord::MakeBegin(tid, lsn),
       wal::LogRecord::MakeData(tid, lsn + 1, oid, 100,
                                wal::ComputeValueDigest(tid, oid, lsn + 1)),
       wal::LogRecord::MakeCommit(tid, lsn + 2)});
}

TEST(RecoverDuplexTest, DivergentSlotResolvesToHigherWriteSeqAndRepairs) {
  disk::LogStorage primary({4});
  disk::LogStorage mirror({4});
  // The mirror missed slot 0's latest write: it still holds the slot's
  // previous, valid content (an older transaction).
  primary.Put({0, 0}, TxBlock(0, /*seq=*/7, /*tid=*/2, /*oid=*/10, 200));
  mirror.Put({0, 0}, TxBlock(0, /*seq=*/4, /*tid=*/1, /*oid=*/10, 100));

  StableStore stable;
  RecoveryResult result =
      RecoveryManager::RecoverDuplex(&primary, &mirror, stable);

  EXPECT_EQ(result.duplex.blocks_diverged, 1u);
  EXPECT_EQ(result.duplex.blocks_repaired, 1u);
  ASSERT_EQ(result.state.count(10), 1u);
  EXPECT_EQ(result.state.at(10).lsn, 201u);  // tid 2's update, not tid 1's
  // Read-repair overwrote the stale mirror copy with the chosen image.
  EXPECT_EQ(*mirror.Get({0, 0}), *primary.Get({0, 0}));
}

TEST(RecoverDuplexTest, RepairOffIsReadOnlyButChoosesTheSameCopy) {
  disk::LogStorage primary({4});
  disk::LogStorage mirror({4});
  primary.Put({0, 0}, TxBlock(0, 7, 2, 10, 200));
  mirror.Put({0, 0}, TxBlock(0, 4, 1, 10, 100));
  const wal::BlockImage stale = *mirror.Get({0, 0});

  StableStore stable;
  RecoveryResult result = RecoveryManager::RecoverDuplex(
      &primary, &mirror, stable, /*read_repair=*/false);

  EXPECT_EQ(result.duplex.blocks_diverged, 1u);
  EXPECT_EQ(result.duplex.blocks_repaired, 0u);
  EXPECT_EQ(result.state.at(10).lsn, 201u);
  EXPECT_EQ(*mirror.Get({0, 0}), stale);  // untouched
}

TEST(RecoverDuplexTest, EachReplicaContributesItsValidCopies) {
  // Slot 0 is corrupt on the primary, slot 1 corrupt on the mirror: the
  // merge must recover BOTH transactions — a block valid on either
  // replica is never lost — and repair both damaged copies.
  disk::LogStorage primary({4});
  disk::LogStorage mirror({4});
  for (auto* replica : {&primary, &mirror}) {
    replica->Put({0, 0}, TxBlock(0, 1, 1, 10, 100));
    replica->Put({0, 1}, TxBlock(0, 2, 2, 20, 200));
  }
  primary.CorruptBlock({0, 0});
  mirror.CorruptBlock({0, 1});

  StableStore stable;
  RecoveryResult result =
      RecoveryManager::RecoverDuplex(&primary, &mirror, stable);

  EXPECT_TRUE(result.scan.Consistent());
  EXPECT_EQ(result.scan.blocks_valid, 2u);
  EXPECT_EQ(result.scan.blocks_corrupt, 0u);  // merged view is clean
  EXPECT_EQ(result.duplex.blocks_repaired, 2u);
  EXPECT_EQ(result.duplex.blocks_double_fault, 0u);
  EXPECT_EQ(result.state.at(10).lsn, 101u);
  EXPECT_EQ(result.state.at(20).lsn, 201u);
  EXPECT_EQ(result.duplex.replica[0].blocks_corrupt, 1u);
  EXPECT_EQ(result.duplex.replica[1].blocks_corrupt, 1u);
}

TEST(RecoverDuplexTest, BothCopiesCorruptIsADoubleFault) {
  disk::LogStorage primary({4});
  disk::LogStorage mirror({4});
  for (auto* replica : {&primary, &mirror}) {
    replica->Put({0, 0}, TxBlock(0, 1, 1, 10, 100));
    replica->CorruptBlock({0, 0});
  }
  StableStore stable;
  RecoveryResult result =
      RecoveryManager::RecoverDuplex(&primary, &mirror, stable);
  EXPECT_EQ(result.duplex.blocks_double_fault, 1u);
  EXPECT_EQ(result.scan.blocks_corrupt, 1u);  // surfaced, not hidden
  EXPECT_TRUE(result.scan.Consistent());
  EXPECT_EQ(result.state.count(10), 0u);
  EXPECT_EQ(result.duplex.blocks_repaired, 0u);  // nothing valid to copy
}

TEST(RecoverDuplexTest, CorruptBesideEmptyIsATornWriteNotADoubleFault) {
  // Only one replica ever stored the slot, and that copy is damaged (an
  // ordinary torn tail write): corrupt, but not a double fault.
  disk::LogStorage primary({4});
  disk::LogStorage mirror({4});
  primary.Put({0, 0}, TxBlock(0, 1, 1, 10, 100));
  primary.CorruptBlock({0, 0});
  StableStore stable;
  RecoveryResult result =
      RecoveryManager::RecoverDuplex(&primary, &mirror, stable);
  EXPECT_EQ(result.duplex.blocks_double_fault, 0u);
  EXPECT_EQ(result.scan.blocks_corrupt, 1u);
  EXPECT_TRUE(result.scan.Consistent());
}

TEST(RecoverDuplexTest, UnreadableReplicaRecoversFromTheSurvivor) {
  disk::LogStorage primary({4});
  primary.Put({0, 0}, TxBlock(0, 1, 1, 10, 100));
  StableStore stable;
  RecoveryResult result =
      RecoveryManager::RecoverDuplex(&primary, /*mirror=*/nullptr, stable);
  EXPECT_TRUE(result.duplex.replica_readable[0]);
  EXPECT_FALSE(result.duplex.replica_readable[1]);
  EXPECT_EQ(result.duplex.replica[1].blocks_scanned, 0u);  // never touched
  EXPECT_EQ(result.state.at(10).lsn, 101u);
  // A written-and-damaged block beside an unreadable replica IS a double
  // fault: no readable copy survived anywhere.
  primary.CorruptBlock({0, 0});
  result = RecoveryManager::RecoverDuplex(&primary, nullptr, stable);
  EXPECT_EQ(result.duplex.blocks_double_fault, 1u);
}

TEST(RecoverDuplexTest, BothReplicasUnreadableFallsBackToStableStore) {
  StableStore stable;
  stable.ApplyFlush(/*oid=*/10, /*lsn=*/50, /*value_digest=*/777);
  RecoveryResult result =
      RecoveryManager::RecoverDuplex(nullptr, nullptr, stable);
  EXPECT_FALSE(result.duplex.replica_readable[0]);
  EXPECT_FALSE(result.duplex.replica_readable[1]);
  EXPECT_EQ(result.scan.blocks_scanned, 0u);
  EXPECT_TRUE(result.scan.Consistent());
  ASSERT_EQ(result.state.count(10), 1u);
  EXPECT_EQ(result.state.at(10).lsn, 50u);
}

// --- DerivePolicy: which oracle strength a run earns -------------------

TEST(DerivePolicyTest, BitRotVoidsExactnessOnlyInSingleLogMode) {
  RunFaultSummary summary;
  summary.bit_rot_writes = 3;
  EXPECT_FALSE(DerivePolicy(summary).expect_exact);
  summary.duplex = true;  // the other replica repairs rotted blocks
  EXPECT_TRUE(DerivePolicy(summary).expect_exact);
  EXPECT_TRUE(DerivePolicy(summary).expect_no_phantoms);
}

TEST(DerivePolicyTest, DeadSingleLogDriveVoidsExactness) {
  RunFaultSummary summary;
  summary.replica_readable[0] = false;
  EXPECT_FALSE(DerivePolicy(summary).expect_exact);
}

TEST(DerivePolicyTest, DeadReplicaWithoutSoleCopiesKeepsExactness) {
  RunFaultSummary summary;
  summary.duplex = true;
  summary.replica_readable[1] = false;
  EXPECT_TRUE(DerivePolicy(summary).expect_exact);
  summary.sole_copy_writes[1] = 1;  // its copies were the only intact ones
  EXPECT_FALSE(DerivePolicy(summary).expect_exact);
}

TEST(DerivePolicyTest, DuplexDoubleFaultEvidenceVoidsExactness) {
  RunFaultSummary base;
  base.duplex = true;
  EXPECT_TRUE(DerivePolicy(base).expect_exact);
  RunFaultSummary summary = base;
  summary.silent_double_faults = 1;
  EXPECT_FALSE(DerivePolicy(summary).expect_exact);
  summary = base;
  summary.resilver_wiped_sole_copies = 2;
  EXPECT_FALSE(DerivePolicy(summary).expect_exact);
  summary = base;
  summary.replica_readable[0] = summary.replica_readable[1] = false;
  EXPECT_FALSE(DerivePolicy(summary).expect_exact);
}

TEST(DerivePolicyTest, LostWritesVoidBothClaims) {
  RunFaultSummary summary;
  summary.duplex = true;
  summary.log_writes_lost = 1;
  InvariantPolicy policy = DerivePolicy(summary);
  EXPECT_FALSE(policy.expect_exact);
  EXPECT_FALSE(policy.expect_no_phantoms);
}

// --- The acceptance scenario -------------------------------------------

/// The acceptance spec: drive deaths land in [0.5s, 2s), crashes shortly
/// after in [0.6s, 2.2s) — inside the window where acked commits are
/// still waiting on the flush drives — and no resilver, so a dead
/// replica stays dead to the crash. Everything derives from base_seed 42.
runner::TortureSpec AcceptanceSpec() {
  runner::TortureSpec spec;
  spec.trials = 30;
  spec.base_seed = 42;
  spec.duplex = true;
  spec.drive_death_rate = 0.5;
  spec.resilver_prob = 0.0;
  spec.min_drive_death_time = 500 * kMillisecond;
  spec.max_drive_death_time = 2 * kSecond;
  spec.min_crash_time = 600 * kMillisecond;
  spec.max_crash_time = 2200 * kMillisecond;
  spec.event_crash_prob = 0.0;
  return spec;
}

TEST(DuplexTortureAcceptanceTest, DuplexSweepSurvivesReplicaDeaths) {
  // Every duplex trial — replicas dying mid-run included — must pass its
  // derived oracle, and some trial must kill exactly one replica while
  // the oracle still demands exactness: duplexing turned a permanent
  // drive loss into a non-event.
  const runner::TortureSpec spec = AcceptanceSpec();
  int exact_despite_death = 0;
  for (int index = 0; index < spec.trials; ++index) {
    runner::TortureTrial trial = runner::RunTortureTrial(
        spec, runner::TortureManager::kEphemeral, index);
    EXPECT_TRUE(trial.ok)
        << "duplex trial " << index << ": " << trial.first_violation;
    if (trial.replicas_dead == 1 && trial.exact_checked && trial.ok) {
      ++exact_despite_death;
    }
  }
  EXPECT_GT(exact_despite_death, 0)
      << "no trial killed exactly one replica while keeping the exact "
         "oracle; widen the sweep";
}

TEST(DuplexTortureAcceptanceTest, ReplicaDeathRecoversExactlyWhereSingleLogLosesData) {
  // The tentpole demonstration, pinned to a deterministic trial found by
  // sweeping AcceptanceSpec(): at index 17 the log drive (replica 0)
  // dies mid-run and the system crashes ~moments later. Duplexed, the
  // survivor carries the log and recovery is EXACT. The same (seed,
  // manager, index) replayed single-log — the duplex-only draws are
  // appended after the single-log draws, so workload, fault stream and
  // crash schedule are identical — loses acknowledged commits that were
  // still waiting on the flush drives. Both runs replay bit-identically
  // from the triple alone.
  const int kIndex = 17;
  const runner::TortureSpec spec = AcceptanceSpec();
  runner::TortureTrial duplex_trial = runner::RunTortureTrial(
      spec, runner::TortureManager::kEphemeral, kIndex);
  EXPECT_EQ(duplex_trial.replicas_dead, 1);
  EXPECT_TRUE(duplex_trial.exact_checked);
  EXPECT_TRUE(duplex_trial.ok) << duplex_trial.first_violation;

  runner::TortureSpec single = spec;
  single.duplex = false;
  db::InvariantPolicy force_exact;
  force_exact.expect_exact = true;
  force_exact.expect_no_phantoms = false;  // lost blocks leave stale COMMITs
  runner::TortureTrial single_trial = runner::RunTortureTrial(
      single, runner::TortureManager::kEphemeral, kIndex, &force_exact);
  EXPECT_EQ(single_trial.seed, duplex_trial.seed);
  EXPECT_EQ(single_trial.crash_time, duplex_trial.crash_time);
  EXPECT_EQ(single_trial.replicas_dead, 1);  // the same death plan trips
  EXPECT_FALSE(single_trial.ok)
      << "single-log replay of the replica-death trial met forced "
         "exactness — it lost nothing?";
  EXPECT_GT(single_trial.violation_count, 0u);
  // The loss is concrete: an acknowledged version is gone.
  EXPECT_NE(single_trial.first_violation.find("missing after recovery"),
            std::string::npos)
      << single_trial.first_violation;
}

TEST(DuplexTortureAcceptanceTest, DuplexTrialsReplayBitIdentically) {
  runner::TortureSpec spec;
  spec.trials = 1;
  spec.base_seed = 42;
  spec.duplex = true;
  spec.drive_death_rate = 0.9;
  spec.resilver_prob = 0.5;
  runner::TortureTrial a =
      runner::RunTortureTrial(spec, runner::TortureManager::kEphemeral, 3);
  runner::TortureTrial b =
      runner::RunTortureTrial(spec, runner::TortureManager::kEphemeral, 3);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.crash_time, b.crash_time);
  EXPECT_EQ(a.crash_events, b.crash_events);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.degraded_writes, b.degraded_writes);
  EXPECT_EQ(a.silent_double_faults, b.silent_double_faults);
  EXPECT_EQ(a.blocks_repaired, b.blocks_repaired);
  EXPECT_EQ(a.resilvered_blocks, b.resilvered_blocks);
  EXPECT_EQ(a.records_recovered, b.records_recovered);
}

}  // namespace
}  // namespace db
}  // namespace elog
