// obs::MetricSampler: cadence alignment, column discovery, CSV/JSON
// shape, determinism across --jobs, and series-reproduces-scalars.

#include "obs/metric_sampler.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "db/database.h"
#include "runner/sweep_runner.h"
#include "sim/metrics.h"
#include "sim/simulator.h"

namespace elog {
namespace obs {
namespace {

TEST(MetricSamplerTest, CadenceAlignsToInterval) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  sim::Counter* counter = metrics.GetCounter("c");
  MetricSampler sampler(&sim, &metrics, 100);
  // Bump the counter between ticks; Start() samples t=0 immediately and
  // then every 100 µs through the bound.
  for (SimTime t = 50; t <= 500; t += 100) {
    sim.ScheduleAt(t, [counter] { counter->Incr(); });
  }
  sampler.Start(500);
  sim.Run();

  ASSERT_EQ(sampler.num_samples(), 6u);  // t = 0, 100, ..., 500
  const std::vector<SimTime> expected = {0, 100, 200, 300, 400, 500};
  EXPECT_EQ(sampler.times(), expected);
  const std::vector<double> series = sampler.Series("c");
  const std::vector<double> want = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(series, want);
}

TEST(MetricSamplerTest, BoundStopsTicksSoRunTerminates) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  MetricSampler sampler(&sim, &metrics, 100);
  sampler.Start(250);  // ticks at 0, 100, 200 — 300 would overshoot
  sim.Run();
  EXPECT_EQ(sampler.num_samples(), 3u);
  EXPECT_EQ(sim.Now(), 200);
}

TEST(MetricSamplerTest, LateColumnsBackfillZero) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  metrics.GetCounter("early")->Incr(7);
  MetricSampler sampler(&sim, &metrics, 10);
  sampler.SampleNow();
  metrics.GetCounter("late")->Incr(3);
  sampler.SampleNow();

  EXPECT_EQ(sampler.Value(0, "early"), 7.0);
  EXPECT_EQ(sampler.Value(0, "late"), 0.0);  // did not exist yet
  EXPECT_EQ(sampler.Value(1, "late"), 3.0);
  const std::vector<double> late = sampler.Series("late");
  EXPECT_EQ(late, (std::vector<double>{0.0, 3.0}));
}

TEST(MetricSamplerTest, CsvAndJsonShape) {
  sim::Simulator sim;
  sim::MetricsRegistry metrics;
  metrics.GetCounter("b.count")->Incr(2);
  metrics.GetGauge("a.depth")->Set(0, 1.5);
  MetricSampler sampler(&sim, &metrics, 10);
  sampler.SampleNow();

  // Counters come first, then gauges; within each, sorted map order.
  const std::string csv = sampler.ToCsv();
  EXPECT_EQ(csv, "time_us,b.count,a.depth\n0,2,1.5\n");
  const std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"interval_us\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"b.count\": [2]"), std::string::npos);
  EXPECT_NE(json.find("\"a.depth\": [1.5]"), std::string::npos);
}

db::DatabaseConfig SampledConfig() {
  db::DatabaseConfig config;
  config.workload = workload::PaperMix(0.05);
  config.workload.runtime = SecondsToSimTime(20);
  config.log.generation_blocks = {18, 12};
  config.metric_sample_interval = SecondsToSimTime(1);
  return config;
}

/// The acceptance bar for the sampler: final cumulative series values
/// ARE the managers' end-of-run scalars — one accounting pipeline.
TEST(MetricSamplerTest, SeriesReproducesEndOfRunScalars) {
  db::Database database(SampledConfig());
  db::RunStats stats = database.Run();
  const MetricSampler& sampler = *database.sampler();
  ASSERT_GT(sampler.num_samples(), 0u);
  const size_t last = sampler.num_samples() - 1;

  EXPECT_EQ(sampler.Value(last, "el.appended"),
            static_cast<double>(stats.records_appended));
  EXPECT_EQ(sampler.Value(last, "el.forwarded"),
            static_cast<double>(stats.records_forwarded));
  EXPECT_EQ(sampler.Value(last, "el.recirculated"),
            static_cast<double>(stats.records_recirculated));
  EXPECT_EQ(sampler.Value(last, "workload.committed"),
            static_cast<double>(stats.total_committed));
  EXPECT_EQ(sampler.Value(last, "flush_drive.flushes"),
            static_cast<double>(database.drives().total_flushes_completed()));
  // Per-generation counters sum to the whole-log totals.
  double forwarded = 0.0;
  for (int g = 0; g < 2; ++g) {
    forwarded +=
        sampler.Value(last, "el.gen" + std::to_string(g) + ".forwarded");
  }
  EXPECT_EQ(forwarded, static_cast<double>(stats.records_forwarded));
  // The occupancy gauge column matches the manager's gauge object.
  EXPECT_EQ(sampler.Value(last, "el.gen0.occupancy"),
            database.metrics().GetGauge("el.gen0.occupancy")->value());
}

/// Same (config, seed) at --jobs 1 and --jobs 4: byte-identical CSV and
/// JSON. The sampler rides the virtual clock, so thread count and wall
/// time cannot enter.
TEST(MetricSamplerTest, DeterministicAcrossJobs) {
  std::vector<std::string> csv(2), json(2);
  const int jobs[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    runner::SweepOptions options;
    options.jobs = jobs[i];
    runner::SweepRunner sweeper(options);
    std::vector<std::string> csv_out(3), json_out(3);
    // Run several sampled simulations on the pool; take the first's
    // artifacts (all three are identical configs + seeds).
    runner::ParallelFor(sweeper.pool(), 3, [&](size_t k) {
      db::Database database(SampledConfig());
      database.Run();
      csv_out[k] = database.sampler()->ToCsv();
      json_out[k] = database.sampler()->ToJson();
    });
    EXPECT_EQ(csv_out[0], csv_out[1]);
    EXPECT_EQ(csv_out[1], csv_out[2]);
    csv[i] = csv_out[0];
    json[i] = json_out[0];
  }
  EXPECT_EQ(csv[0], csv[1]);
  EXPECT_EQ(json[0], json[1]);
}

}  // namespace
}  // namespace obs
}  // namespace elog
