// InlineVector / InlineFlatSet / InlineBucketSet (the LOT/LTT entry
// containers) and the InlineFunction kernel behind the commit callbacks:
// inline/spill transitions, move semantics, ordering, and differential
// behavior against the standard containers. InlineBucketSet's iteration
// order is load-bearing (the committed artifacts pin the flush schedule
// it produces), so it gets both a differential fuzz against the
// historical container and self-contained pinned goldens that hold even
// if the standard library's own order ever changes.

#include "util/inline_vec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "sim/inline_callback.h"
#include "util/inline_bucket_set.h"
#include "util/random.h"

namespace elog {
namespace {

TEST(InlineVectorTest, StaysInlineUpToN) {
  InlineVector<uint64_t, 4> vec;
  for (uint64_t i = 0; i < 4; ++i) {
    vec.push_back(i);
    EXPECT_FALSE(vec.spilled());
    EXPECT_EQ(vec.heap_bytes(), 0u);
  }
  vec.push_back(4);
  EXPECT_TRUE(vec.spilled());
  EXPECT_GT(vec.heap_bytes(), 0u);
  for (uint64_t i = 0; i < 5; ++i) EXPECT_EQ(vec[i], i);
}

TEST(InlineVectorTest, EraseShiftsDown) {
  InlineVector<int, 2> vec;
  for (int i = 0; i < 6; ++i) vec.push_back(i);
  vec.erase(vec.begin() + 2);  // {0,1,3,4,5}
  vec.erase(vec.begin());      // {1,3,4,5}
  ASSERT_EQ(vec.size(), 4u);
  EXPECT_EQ(vec[0], 1);
  EXPECT_EQ(vec[1], 3);
  EXPECT_EQ(vec[3], 5);
}

TEST(InlineVectorTest, MoveStealsHeapRelocatesInline) {
  // Inline: elements relocate.
  InlineVector<uint64_t, 4> small;
  small.push_back(7);
  small.push_back(8);
  InlineVector<uint64_t, 4> small2(std::move(small));
  EXPECT_EQ(small.size(), 0u);
  ASSERT_EQ(small2.size(), 2u);
  EXPECT_EQ(small2[0], 7u);

  // Spilled: the heap buffer moves wholesale, so element addresses hold.
  InlineVector<uint64_t, 2> big;
  for (uint64_t i = 0; i < 10; ++i) big.push_back(i);
  const uint64_t* addr = &big[3];
  InlineVector<uint64_t, 2> big2(std::move(big));
  EXPECT_EQ(big.size(), 0u);
  EXPECT_FALSE(big.spilled());
  ASSERT_EQ(big2.size(), 10u);
  EXPECT_EQ(&big2[3], addr);
}

TEST(InlineVectorTest, MoveOnlyElements) {
  InlineVector<std::unique_ptr<int>, 2> vec;
  for (int i = 0; i < 5; ++i) vec.push_back(std::make_unique<int>(i));
  vec.erase(vec.begin() + 1);
  ASSERT_EQ(vec.size(), 4u);
  EXPECT_EQ(*vec[0], 0);
  EXPECT_EQ(*vec[1], 2);
  InlineVector<std::unique_ptr<int>, 2> moved(std::move(vec));
  EXPECT_EQ(*moved[3], 4);
}

TEST(InlineFlatSetTest, SortedUniqueSemantics) {
  InlineFlatSet<uint64_t, 4> set;
  EXPECT_TRUE(set.insert(30));
  EXPECT_TRUE(set.insert(10));
  EXPECT_TRUE(set.insert(20));
  EXPECT_FALSE(set.insert(10));  // duplicate
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.count(10), 1u);
  EXPECT_EQ(set.count(11), 0u);
  // Ascending iteration regardless of insertion order.
  std::vector<uint64_t> order(set.begin(), set.end());
  EXPECT_EQ(order, (std::vector<uint64_t>{10, 20, 30}));
  EXPECT_EQ(set.erase(20), 1u);
  EXPECT_EQ(set.erase(20), 0u);
  EXPECT_EQ(set.size(), 2u);
}

TEST(InlineFlatSetTest, DifferentialAgainstStdSet) {
  InlineFlatSet<uint64_t, 4> flat;
  std::set<uint64_t> oracle;
  Rng rng(17);
  for (int op = 0; op < 50'000; ++op) {
    const uint64_t key = rng.NextBounded(64);
    switch (rng.NextBounded(3)) {
      case 0:
        ASSERT_EQ(flat.insert(key), oracle.insert(key).second);
        break;
      case 1:
        ASSERT_EQ(flat.erase(key), oracle.erase(key));
        break;
      case 2:
        ASSERT_EQ(flat.count(key), oracle.count(key));
        break;
    }
    ASSERT_EQ(flat.size(), oracle.size());
  }
  ASSERT_TRUE(std::equal(flat.begin(), flat.end(), oracle.begin(),
                         oracle.end()));
}

TEST(InlineBucketSetTest, PinnedOrderGoldenSmall) {
  // Hand-derived from the order spec in util/inline_bucket_set.h; holds
  // with no reference to any library container. bucket_count is 13
  // after the first insert, so 5, 18 and 31 share bucket 5 and 3, 16
  // and 29 share bucket 3.
  InlineBucketSet<uint64_t, 4> set;
  EXPECT_EQ(set.bucket_count(), 1u);
  EXPECT_TRUE(set.insert(5));  // empty bucket: head       -> [5]
  EXPECT_EQ(set.bucket_count(), 13u);
  EXPECT_TRUE(set.insert(18));  // before 5                -> [18 5]
  EXPECT_TRUE(set.insert(3));   // empty bucket: head      -> [3 18 5]
  EXPECT_TRUE(set.insert(31));  // before 18, mid-list     -> [3 31 18 5]
  EXPECT_TRUE(set.insert(16));  // before 3 at head        -> [16 3 31 18 5]
  EXPECT_FALSE(set.insert(31));
  EXPECT_EQ(set.erase(18), 1u);  //                        -> [16 3 31 5]
  EXPECT_TRUE(set.insert(29));   // before 16 at head      -> [29 16 3 31 5]
  std::vector<uint64_t> order(set.begin(), set.end());
  EXPECT_EQ(order, (std::vector<uint64_t>{29, 16, 3, 31, 5}));
  EXPECT_TRUE(set.contains(31));
  EXPECT_FALSE(set.contains(18));
}

TEST(InlineBucketSetTest, PinnedOrderGoldenAcrossRehash) {
  // Inserting 0..12 stacks each at the head (13 distinct buckets):
  // [12 .. 1 0]. The 14th insert grows 13 -> 29 buckets; the relink
  // walks the old list in order, stacking at the new head, which
  // reverses it; 13 then lands at the head of the reversed list.
  InlineBucketSet<uint64_t, 4> set;
  for (uint64_t v = 0; v <= 12; ++v) ASSERT_TRUE(set.insert(v));
  EXPECT_EQ(set.bucket_count(), 13u);
  std::vector<uint64_t> before(set.begin(), set.end());
  EXPECT_EQ(before, (std::vector<uint64_t>{12, 11, 10, 9, 8, 7, 6, 5, 4, 3,
                                           2, 1, 0}));
  ASSERT_TRUE(set.insert(13));
  EXPECT_EQ(set.bucket_count(), 29u);
  std::vector<uint64_t> after(set.begin(), set.end());
  EXPECT_EQ(after, (std::vector<uint64_t>{13, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                                          10, 11, 12}));
}

TEST(InlineBucketSetTest, GrowthScheduleMatchesSpec) {
  // bucket_count transitions at the sizes the spec dictates.
  InlineBucketSet<uint64_t, 4> set;
  const std::vector<std::pair<size_t, size_t>> schedule = {
      {1, 13}, {14, 29}, {30, 59}, {60, 127}, {128, 257}, {258, 541},
      {542, 1109}, {1110, 2357}};
  size_t expected = 1;
  auto next = schedule.begin();
  for (uint64_t i = 0; i < 1200; ++i) {
    ASSERT_TRUE(set.insert(i * 0x9E3779B97F4A7C15ull));
    if (next != schedule.end() && set.size() == next->first) {
      expected = next->second;
      ++next;
    }
    ASSERT_EQ(set.bucket_count(), expected) << "at size " << set.size();
  }
}

TEST(InlineBucketSetTest, DifferentialAgainstUnorderedSet) {
  // Lockstep fuzz against the container whose order the committed
  // artifacts historically encoded. Full order compared after every op
  // while small, sampled when large.
  for (const uint64_t universe : {23ull, 100ull, 4096ull}) {
    InlineBucketSet<uint64_t, 4> mine;
    std::unordered_set<uint64_t> ref;
    Rng rng(31 + universe);
    for (int op = 0; op < 30'000; ++op) {
      const uint64_t key = rng.NextBounded(universe);
      if (rng.NextBounded(100) < 60) {
        ASSERT_EQ(mine.insert(key), ref.insert(key).second);
      } else {
        ASSERT_EQ(mine.erase(key), ref.erase(key));
      }
      ASSERT_EQ(mine.size(), ref.size());
      ASSERT_EQ(mine.bucket_count(), ref.bucket_count());
      if (ref.size() <= 64 || op % 97 == 0) {
        ASSERT_TRUE(std::equal(mine.begin(), mine.end(), ref.begin(),
                               ref.end()))
            << "order diverged at op " << op << " size " << ref.size();
      }
    }
    ASSERT_TRUE(std::equal(mine.begin(), mine.end(), ref.begin(), ref.end()));
  }
}

TEST(InlineBucketSetTest, StaysInlineForSmallSets) {
  InlineBucketSet<uint64_t, 4> set;
  for (uint64_t v = 0; v < 4; ++v) set.insert(v * 100);
  EXPECT_EQ(set.heap_bytes(), 0u);
  set.insert(999);
  EXPECT_GT(set.heap_bytes(), 0u);
}

TEST(InlineBucketSetTest, EraseKeepsGrowthSchedule) {
  // Erase never shrinks: like the node-based container, draining the
  // set keeps its bucket schedule, so refilling replays the same orders.
  InlineBucketSet<uint64_t, 4> set;
  for (uint64_t v = 0; v < 20; ++v) set.insert(v);
  EXPECT_EQ(set.bucket_count(), 29u);
  for (uint64_t v = 0; v < 20; ++v) EXPECT_EQ(set.erase(v), 1u);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.bucket_count(), 29u);
  std::unordered_set<uint64_t> ref;
  for (uint64_t v = 0; v < 20; ++v) ref.insert(v);
  for (uint64_t v = 0; v < 20; ++v) ref.erase(v);
  for (uint64_t v = 50; v < 70; ++v) {
    set.insert(v);
    ref.insert(v);
  }
  EXPECT_TRUE(std::equal(set.begin(), set.end(), ref.begin(), ref.end()));
}

TEST(InlineBucketSetTest, MoveTransfersOrderAndResetsSource) {
  InlineBucketSet<uint64_t, 4> set;
  for (uint64_t v = 0; v < 10; ++v) set.insert(v * 7);
  const std::vector<uint64_t> order(set.begin(), set.end());
  InlineBucketSet<uint64_t, 4> moved(std::move(set));
  EXPECT_EQ(std::vector<uint64_t>(moved.begin(), moved.end()), order);
  // Moved-from is a fresh set: empty, back to the initial schedule.
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.bucket_count(), 1u);
  EXPECT_TRUE(set.insert(5));
  EXPECT_EQ(set.bucket_count(), 13u);
}

TEST(InlineFunctionTest, InvokesWithArgumentsAndReturn) {
  sim::InlineFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  ASSERT_TRUE(add);
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunctionTest, NullStates) {
  sim::InlineFunction<void(uint64_t)> fn;
  EXPECT_FALSE(fn);
  fn = [](uint64_t) {};
  EXPECT_TRUE(fn);
  fn = nullptr;
  EXPECT_FALSE(fn);
}

TEST(InlineFunctionTest, MoveTransfersStateAndCaptures) {
  int calls = 0;
  sim::InlineFunction<void(uint64_t)> fn = [&calls](uint64_t v) {
    calls += static_cast<int>(v);
  };
  sim::InlineFunction<void(uint64_t)> moved = std::move(fn);
  EXPECT_FALSE(fn);
  ASSERT_TRUE(moved);
  moved(5);
  EXPECT_EQ(calls, 5);
}

TEST(InlineFunctionTest, MoveOnlyCapture) {
  auto box = std::make_unique<int>(41);
  sim::InlineFunction<int()> fn = [box = std::move(box)] { return *box + 1; };
  sim::InlineFunction<int()> moved = std::move(fn);
  EXPECT_EQ(moved(), 42);
}

TEST(InlineFunctionTest, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(7);
  EXPECT_EQ(token.use_count(), 1);
  {
    sim::InlineFunction<void()> fn = [token] {};
    EXPECT_EQ(token.use_count(), 2);
    sim::InlineFunction<void()> moved = std::move(fn);
    EXPECT_EQ(token.use_count(), 2);  // relocated, not copied
  }
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
}  // namespace elog
