#include "harness/tuner.h"

#include <gtest/gtest.h>

namespace elog {
namespace harness {
namespace {

TunerRequest ShortRequest(double mix, double max_ratio) {
  TunerRequest request;
  request.workload = workload::PaperMix(mix);
  request.workload.runtime = SecondsToSimTime(30);
  request.max_bandwidth_ratio = max_ratio;
  request.gen0_max = 26;
  return request;
}

TEST(TunerTest, RecommendsSmallLayoutAtLightMix) {
  TunerResult result = TuneGenerations(ShortRequest(0.05, 1.2));
  EXPECT_TRUE(result.recommended.meets_budget);
  EXPECT_LT(result.recommended.total_blocks,
            result.fw_baseline.total_blocks / 3)
      << "EL should save at least 3x at a 5% mix";
  EXPECT_LE(result.recommended.bandwidth_ratio, 1.2);
  EXPECT_GT(result.simulations, 10);
}

TEST(TunerTest, GenerousBudgetFindsSpaceMinimum) {
  TunerResult loose = TuneGenerations(ShortRequest(0.05, 10.0));
  TunerResult tight = TuneGenerations(ShortRequest(0.05, 1.1));
  EXPECT_LE(loose.recommended.total_blocks, tight.recommended.total_blocks)
      << "a looser bandwidth budget can only shrink the log";
}

TEST(TunerTest, ImpossibleBudgetFallsBackFlagged) {
  // No EL layout beats FW's own bandwidth.
  TunerResult result = TuneGenerations(ShortRequest(0.05, 0.5));
  EXPECT_FALSE(result.recommended.meets_budget);
  EXPECT_FALSE(result.recommended.generation_blocks.empty());
}

TEST(TunerTest, CandidatesIncludeSingleGenerationRing) {
  TunerRequest request = ShortRequest(0.05, 1.5);
  request.candidate_generation_counts = {1};
  TunerResult result = TuneGenerations(request);
  ASSERT_FALSE(result.candidates.empty());
  EXPECT_EQ(result.candidates[0].generation_blocks.size(), 1u);
}

}  // namespace
}  // namespace harness
}  // namespace elog
