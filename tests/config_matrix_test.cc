// Parameterized end-to-end sweep: every supported configuration family
// must run a shortened paper workload to completion with internal
// invariants intact, transaction conservation, and sane accounting.

#include <gtest/gtest.h>

#include "db/database.h"

namespace elog {
namespace db {
namespace {

struct MatrixCase {
  const char* name;
  std::vector<uint32_t> generation_blocks;
  bool recirculation;
  UnflushedPolicy policy;
  bool release_on_commit;  // firewall mode
  bool lifetime_hints;
  double long_fraction;
  uint64_t seed;
};

class ConfigMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  return std::string(info.param.name) + "_s" +
         std::to_string(info.param.seed);
}

TEST_P(ConfigMatrixTest, RunsCleanlyWithInvariants) {
  const MatrixCase& c = GetParam();
  DatabaseConfig config;
  config.workload = workload::PaperMix(c.long_fraction);
  config.workload.runtime = SecondsToSimTime(25);
  config.workload.seed = c.seed;
  config.log.generation_blocks = c.generation_blocks;
  config.log.recirculation = c.recirculation;
  config.log.unflushed_policy = c.policy;
  config.log.release_on_commit = c.release_on_commit;
  if (c.lifetime_hints) {
    config.log.lifetime_hints = true;
    config.log.hint_lifetime_threshold = SecondsToSimTime(5);
    config.log.hint_target_generation =
        static_cast<uint32_t>(c.generation_blocks.size()) - 1;
    config.log.group_commit_linger = 200 * kMillisecond;
  }

  Database database(config);
  RunStats stats = database.Run();
  database.manager().CheckInvariants();

  // Conservation: every started transaction resolves exactly once.
  EXPECT_EQ(stats.total_started,
            stats.total_committed + stats.total_killed);
  EXPECT_EQ(database.generator().active(), 0u);
  EXPECT_EQ(stats.total_started, 2500);

  // Accounting sanity.
  EXPECT_GE(stats.records_appended,
            stats.total_started * 2);  // BEGIN + COMMIT at least
  EXPECT_GE(stats.log_writes_per_sec, 1.0);
  EXPECT_GT(stats.peak_memory_bytes, 0.0);

  // Generously-sized configurations must not kill anyone.
  if (config.log.total_blocks() >= 34) {
    EXPECT_EQ(stats.total_killed, 0) << "kills in a roomy log";
  }
  // Recirculating configurations never take the unsafe paths.
  if (c.recirculation && !c.release_on_commit) {
    EXPECT_EQ(stats.unsafe_commit_drops, 0);
  }
  // The stable store never runs ahead of the acknowledged state.
  for (const auto& [oid, version] : database.stable().objects()) {
    auto it = database.expected_state().find(oid);
    ASSERT_NE(it, database.expected_state().end()) << "oid " << oid;
    EXPECT_LE(version.lsn, it->second.lsn);
  }
}

std::vector<MatrixCase> MakeCases() {
  std::vector<MatrixCase> cases;
  for (uint64_t seed : {1ull, 99ull}) {
    cases.push_back({"el_2gen", {18, 16}, true,
                     UnflushedPolicy::kKeepInLog, false, false, 0.05, seed});
    cases.push_back({"el_norecirc", {18, 18}, false,
                     UnflushedPolicy::kKeepInLog, false, false, 0.05, seed});
    // 20% mix: ~200 concurrent long transactions hold ~41 blocks of live
    // records, so the chain needs real capacity in its older generations.
    cases.push_back({"el_3gen", {18, 16, 56}, true,
                     UnflushedPolicy::kKeepInLog, false, false, 0.20, seed});
    cases.push_back({"el_demand_flush", {18, 16}, true,
                     UnflushedPolicy::kFlushOnDemand, false, false, 0.05,
                     seed});
    cases.push_back({"el_hints", {18, 16}, true,
                     UnflushedPolicy::kKeepInLog, false, true, 0.05, seed});
    cases.push_back({"fw", {140}, false, UnflushedPolicy::kKeepInLog, true,
                     false, 0.05, seed});
    cases.push_back({"el_heavy_mix", {40, 40}, true,
                     UnflushedPolicy::kKeepInLog, false, false, 0.40, seed});
    cases.push_back({"el_single_ring", {40}, true,
                     UnflushedPolicy::kKeepInLog, false, false, 0.05, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, ConfigMatrixTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

}  // namespace
}  // namespace db
}  // namespace elog
