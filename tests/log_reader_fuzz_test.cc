// Fuzz-style hardening test for the log scanner: random byte flips,
// truncations, extensions and adversarial headers over a valid multi-
// generation log. The scanner must never crash, never loop, and its
// ScanStats must classify every block exactly once (Consistent()).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "db/recovery.h"
#include "disk/log_storage.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "wal/block_format.h"
#include "wal/log_reader.h"

namespace elog {
namespace wal {
namespace {

// A valid block carrying a small transaction.
BlockImage MakeValidBlock(uint32_t generation, uint64_t seq, TxId tid) {
  std::vector<LogRecord> records;
  records.push_back(LogRecord::MakeBegin(tid, tid * 10 + 1));
  records.push_back(LogRecord::MakeData(tid, tid * 10 + 2, tid % 97, 100,
                                        ComputeValueDigest(tid, tid % 97,
                                                           tid * 10 + 2)));
  records.push_back(LogRecord::MakeCommit(tid, tid * 10 + 3));
  return EncodeBlock(generation, seq, records);
}

// One of several mutation strategies, chosen and parameterized by `rng`.
void Mutate(Rng* rng, BlockImage* image) {
  switch (rng->NextBounded(5)) {
    case 0: {  // flip 1-8 random bytes anywhere (header or body)
      const uint64_t flips = 1 + rng->NextBounded(8);
      for (uint64_t i = 0; i < flips; ++i) {
        if (image->empty()) return;
        (*image)[rng->NextBounded(image->size())] ^=
            static_cast<uint8_t>(1 + rng->NextBounded(255));
      }
      break;
    }
    case 1: {  // truncate to a random prefix (possibly shorter than header)
      image->resize(rng->NextBounded(image->size() + 1));
      break;
    }
    case 2: {  // extend with random garbage
      const uint64_t extra = 1 + rng->NextBounded(64);
      for (uint64_t i = 0; i < extra; ++i) {
        image->push_back(static_cast<uint8_t>(rng->NextBounded(256)));
      }
      break;
    }
    case 3: {  // overwrite the record-count field with a huge value
      if (image->size() < 24) return;
      const uint32_t huge = 0x7fffffff;
      std::memcpy(image->data() + 20, &huge, sizeof(huge));
      break;
    }
    default: {  // replace entirely with noise of the original size
      for (auto& byte : *image) {
        byte = static_cast<uint8_t>(rng->NextBounded(256));
      }
      break;
    }
  }
}

TEST(LogReaderFuzzTest, RandomCorruptionNeverCrashesAndAccountingHolds) {
  Rng rng(20260805);
  for (int round = 0; round < 200; ++round) {
    // Build a two-generation log of valid blocks plus some empty slots.
    std::vector<BlockImage> gen0, gen1;
    for (uint64_t i = 0; i < 8; ++i) gen0.push_back(MakeValidBlock(0, i + 1, i + 1));
    for (uint64_t i = 0; i < 4; ++i) gen1.push_back(MakeValidBlock(1, i + 1, 100 + i));

    // Corrupt a random subset.
    size_t mutated = 0;
    for (auto* generation : {&gen0, &gen1}) {
      for (BlockImage& image : *generation) {
        if (rng.NextBool(0.4)) {
          Mutate(&rng, &image);
          ++mutated;
        }
      }
    }

    LogScanner scanner;
    std::vector<const BlockImage*> view0, view1;
    for (const BlockImage& image : gen0) view0.push_back(&image);
    view0.push_back(nullptr);  // never-written slot
    for (const BlockImage& image : gen1) view1.push_back(&image);
    view1.push_back(nullptr);
    scanner.AddGeneration(view0);
    scanner.AddGeneration(view1);

    const ScanStats& stats = scanner.stats();
    EXPECT_TRUE(stats.Consistent())
        << "round " << round << ": " << stats.blocks_scanned << " scanned != "
        << stats.blocks_empty << " empty + " << stats.blocks_corrupt
        << " corrupt + " << stats.blocks_valid << " valid";
    EXPECT_EQ(stats.blocks_scanned, 14u);
    // At least the two null slots; a truncation-to-zero mutation also
    // counts as empty (indistinguishable from never-written).
    EXPECT_GE(stats.blocks_empty, 2u);
    // Mutations may cancel out only with vanishing probability, but the
    // scanner never produces MORE corrupt blocks than were mutated.
    EXPECT_LE(stats.blocks_corrupt, mutated);
    // Every surviving record parses back to a well-formed type.
    for (const ScannedRecord& scanned : scanner.records()) {
      EXPECT_GE(static_cast<uint8_t>(scanned.record.type), 1);
      EXPECT_LE(static_cast<uint8_t>(scanned.record.type), 4);
    }
    // Sorting must also terminate and preserve the record count.
    EXPECT_EQ(scanner.SortedByLsn().size(), scanner.records().size());
  }
}

TEST(LogReaderFuzzTest, AdversarialRecordCountWithValidCrcIsRejected) {
  // A header claiming 2^31 records but carrying a RECOMPUTED valid CRC —
  // the strongest adversary — must be rejected by the capacity bound, not
  // by an allocation failure.
  BlockImage image = MakeValidBlock(0, 1, 1);
  const uint32_t huge = 0x7fffffff;
  std::memcpy(image.data() + 20, &huge, sizeof(huge));
  // Recompute and patch the masked CRC over [8, end) exactly the way
  // EncodeBlock does, making the corruption invisible to the checksum.
  const uint32_t crc =
      crc32c::Mask(crc32c::Value(image.data() + 8, image.size() - 8));
  for (int i = 0; i < 4; ++i) {
    image[4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  auto decoded = DecodeBlock(image);
  EXPECT_FALSE(decoded.ok());
}

TEST(LogReaderFuzzTest, DuplexMergeNeverLosesABlockValidOnEitherReplica) {
  // Two replica images of the same log suffer INDEPENDENT corruption
  // (flips, truncations, garbage, missed writes). The duplex merge must
  // stay consistent — per replica and merged — and must recover every
  // block that is still valid on at least one side.
  Rng rng(0xd00b1e0bull);
  const std::vector<uint32_t> sizes{8, 4};
  for (int round = 0; round < 100; ++round) {
    disk::LogStorage primary(sizes);
    disk::LogStorage mirror(sizes);
    // Mirror a valid log onto both replicas; leave some slots unwritten;
    // give a few slots a newer copy on one side only (a missed write —
    // the stale side still decodes, carrying the slot's older content).
    for (uint32_t gen = 0; gen < sizes.size(); ++gen) {
      for (uint32_t slot = 0; slot < sizes[gen]; ++slot) {
        if (rng.NextBool(0.15)) continue;
        const TxId tid = gen * 100 + slot + 1;
        BlockImage image = MakeValidBlock(gen, slot + 1, tid);
        primary.Put({gen, slot}, image);
        mirror.Put({gen, slot}, image);
        if (rng.NextBool(0.2)) {
          BlockImage newer = MakeValidBlock(gen, slot + 100, tid);
          (rng.NextBool(0.5) ? primary : mirror).Put({gen, slot}, newer);
        }
      }
    }
    // Corrupt each replica's copies independently.
    for (disk::LogStorage* replica : {&primary, &mirror}) {
      for (uint32_t gen = 0; gen < sizes.size(); ++gen) {
        for (uint32_t slot = 0; slot < sizes[gen]; ++slot) {
          const wal::BlockImage* current = replica->Get({gen, slot});
          if (current == nullptr || !rng.NextBool(0.3)) continue;
          BlockImage mutated = *current;
          Mutate(&rng, &mutated);
          replica->Put({gen, slot}, mutated);
        }
      }
    }

    // Ground truth, computed before recovery touches anything.
    auto side_valid = [](const disk::LogStorage& storage,
                         disk::BlockAddress addr) {
      const BlockImage* image = storage.Get(addr);
      return image != nullptr && !image->empty() && DecodeBlock(*image).ok();
    };
    size_t valid_either = 0;
    std::vector<disk::BlockAddress> salvageable;
    for (uint32_t gen = 0; gen < sizes.size(); ++gen) {
      for (uint32_t slot = 0; slot < sizes[gen]; ++slot) {
        const disk::BlockAddress addr{gen, slot};
        if (side_valid(primary, addr) || side_valid(mirror, addr)) {
          ++valid_either;
          salvageable.push_back(addr);
        }
      }
    }

    const bool read_repair = rng.NextBool(0.5);
    db::StableStore stable;
    db::RecoveryResult result = db::RecoveryManager::RecoverDuplex(
        &primary, &mirror, stable, read_repair);

    EXPECT_TRUE(result.scan.Consistent()) << "round " << round;
    for (int i = 0; i < 2; ++i) {
      EXPECT_TRUE(result.duplex.replica[i].Consistent())
          << "round " << round << " replica " << i;
      EXPECT_EQ(result.duplex.replica[i].blocks_scanned, 12u);
    }
    EXPECT_EQ(result.scan.blocks_scanned, 12u);
    // The merge never loses a block valid on either side — no more, no
    // fewer: every salvageable slot is recovered, and nothing corrupt on
    // both sides sneaks in as valid.
    EXPECT_EQ(result.scan.blocks_valid, valid_either) << "round " << round;

    if (read_repair) {
      // Both replicas must leave recovery identical on every salvageable
      // slot: decodable on each side, with matching write sequence.
      for (const disk::BlockAddress addr : salvageable) {
        const BlockImage* a = primary.Get(addr);
        const BlockImage* b = mirror.Get(addr);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        Result<DecodedBlock> da = DecodeBlock(*a);
        Result<DecodedBlock> db_ = DecodeBlock(*b);
        ASSERT_TRUE(da.ok()) << "round " << round << " gen "
                             << addr.generation << " slot " << addr.slot;
        ASSERT_TRUE(db_.ok()) << "round " << round << " gen "
                              << addr.generation << " slot " << addr.slot;
        EXPECT_EQ(da->write_seq, db_->write_seq);
      }
    }
  }
}

TEST(LogReaderFuzzTest, TruncatedBodyWithPlausibleCountIsRejectedCleanly) {
  BlockImage image = MakeValidBlock(0, 1, 1);
  image.resize(kBlockHeaderBytes + 10);  // header intact, body truncated
  auto decoded = DecodeBlock(image);
  EXPECT_FALSE(decoded.ok());
  LogScanner scanner;
  std::vector<const BlockImage*> view{&image};
  scanner.AddGeneration(view);
  EXPECT_EQ(scanner.stats().blocks_corrupt, 1u);
  EXPECT_TRUE(scanner.stats().Consistent());
}

}  // namespace
}  // namespace wal
}  // namespace elog
