#include "util/circular_queue.h"

#include <gtest/gtest.h>

#include <string>

namespace elog {
namespace {

TEST(CircularQueueTest, EmptyQueue) {
  CircularQueue<int> queue(4);
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.full());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.capacity(), 4u);
}

TEST(CircularQueueTest, FifoOrder) {
  CircularQueue<int> queue(4);
  queue.PushBack(1);
  queue.PushBack(2);
  queue.PushBack(3);
  EXPECT_EQ(queue.PopFront(), 1);
  EXPECT_EQ(queue.PopFront(), 2);
  EXPECT_EQ(queue.PopFront(), 3);
  EXPECT_TRUE(queue.empty());
}

TEST(CircularQueueTest, FrontBackIndex) {
  CircularQueue<std::string> queue(3);
  queue.PushBack("a");
  queue.PushBack("b");
  EXPECT_EQ(queue.front(), "a");
  EXPECT_EQ(queue.back(), "b");
  EXPECT_EQ(queue[0], "a");
  EXPECT_EQ(queue[1], "b");
}

TEST(CircularQueueTest, WrapAround) {
  CircularQueue<int> queue(3);
  queue.PushBack(1);
  queue.PushBack(2);
  queue.PushBack(3);
  EXPECT_TRUE(queue.full());
  EXPECT_EQ(queue.PopFront(), 1);
  queue.PushBack(4);  // wraps physically
  EXPECT_EQ(queue[0], 2);
  EXPECT_EQ(queue[1], 3);
  EXPECT_EQ(queue[2], 4);
  EXPECT_EQ(queue.PopFront(), 2);
  EXPECT_EQ(queue.PopFront(), 3);
  EXPECT_EQ(queue.PopFront(), 4);
}

TEST(CircularQueueTest, ManyWraps) {
  CircularQueue<int> queue(5);
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 100; ++round) {
    while (!queue.full()) queue.PushBack(next_in++);
    while (!queue.empty()) EXPECT_EQ(queue.PopFront(), next_out++);
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(CircularQueueTest, ClearResets) {
  CircularQueue<int> queue(3);
  queue.PushBack(1);
  queue.PushBack(2);
  queue.Clear();
  EXPECT_TRUE(queue.empty());
  queue.PushBack(9);
  EXPECT_EQ(queue.front(), 9);
}

TEST(CircularQueueDeathTest, OverflowChecks) {
  CircularQueue<int> queue(2);
  queue.PushBack(1);
  queue.PushBack(2);
  EXPECT_DEATH(queue.PushBack(3), "full");
}

TEST(CircularQueueDeathTest, UnderflowChecks) {
  CircularQueue<int> queue(2);
  EXPECT_DEATH((void)queue.PopFront(), "empty");
}

TEST(CircularQueueDeathTest, IndexOutOfRangeChecks) {
  CircularQueue<int> queue(4);
  queue.PushBack(1);
  EXPECT_DEATH((void)queue[1], "");
}

TEST(CircularQueueDeathTest, ZeroCapacityRejected) {
  EXPECT_DEATH(CircularQueue<int>(0), "");
}

}  // namespace
}  // namespace elog
