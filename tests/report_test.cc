#include "harness/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace elog {
namespace harness {
namespace {

TEST(ReportTest, VersusPaperFormatsRatio) {
  std::string cell = VersusPaper(34.0, 34.0);
  EXPECT_NE(cell.find("1.00x"), std::string::npos);
  cell = VersusPaper(35.0, 34.0);
  EXPECT_NE(cell.find("paper 34"), std::string::npos);
  EXPECT_NE(cell.find("1.03x"), std::string::npos);
}

TEST(ReportTest, VersusPaperZeroReferenceJustPrints) {
  EXPECT_EQ(VersusPaper(12.5, 0.0), "12.5");
}

TEST(ReportTest, MaybeWriteCsvEmptyPathIsNoOp) {
  TableWriter table({"a"});
  EXPECT_TRUE(MaybeWriteCsv("", table).ok());
}

TEST(ReportTest, MaybeWriteCsvWritesFile) {
  TableWriter table({"x", "y"});
  table.AddRow({"1", "2"});
  std::string path = ::testing::TempDir() + "/report_test.csv";
  ASSERT_TRUE(MaybeWriteCsv(path, table).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(ReportTest, MaybeWriteCsvBadPathErrors) {
  TableWriter table({"a"});
  EXPECT_FALSE(MaybeWriteCsv("/nonexistent-dir-xyz/out.csv", table).ok());
}

}  // namespace
}  // namespace harness
}  // namespace elog
