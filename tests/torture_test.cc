// Torture harness smoke + determinism: a small sweep passes for every
// manager, and the same spec produces identical trial records at any
// worker count (the property the CI determinism check enforces at the
// JSON level).

#include "runner/torture.h"

#include <gtest/gtest.h>

#include "runner/thread_pool.h"

namespace elog {
namespace runner {
namespace {

TortureSpec SmallSpec() {
  TortureSpec spec;
  spec.trials = 3;
  spec.base_seed = 1789;
  return spec;
}

void ExpectSameTrial(const TortureTrial& a, const TortureTrial& b,
                     const char* what, size_t index) {
  EXPECT_EQ(a.seed, b.seed) << what << " trial " << index;
  EXPECT_EQ(a.crash_time, b.crash_time) << what << " trial " << index;
  EXPECT_EQ(a.crash_events, b.crash_events) << what << " trial " << index;
  EXPECT_EQ(a.torn_write, b.torn_write) << what << " trial " << index;
  EXPECT_EQ(a.exact_checked, b.exact_checked) << what << " trial " << index;
  EXPECT_EQ(a.ok, b.ok) << what << " trial " << index;
  EXPECT_EQ(a.committed, b.committed) << what << " trial " << index;
  EXPECT_EQ(a.killed, b.killed) << what << " trial " << index;
  EXPECT_EQ(a.log_write_retries, b.log_write_retries)
      << what << " trial " << index;
  EXPECT_EQ(a.log_writes_lost, b.log_writes_lost)
      << what << " trial " << index;
  EXPECT_EQ(a.bit_rot_writes, b.bit_rot_writes) << what << " trial " << index;
  EXPECT_EQ(a.flush_retries, b.flush_retries) << what << " trial " << index;
  EXPECT_EQ(a.blocks_corrupt, b.blocks_corrupt) << what << " trial " << index;
  EXPECT_EQ(a.records_recovered, b.records_recovered)
      << what << " trial " << index;
  EXPECT_EQ(a.first_violation, b.first_violation)
      << what << " trial " << index;
  EXPECT_EQ(a.prepares_in_log, b.prepares_in_log) << what << " trial " << index;
  EXPECT_EQ(a.in_doubt_committed, b.in_doubt_committed)
      << what << " trial " << index;
  EXPECT_EQ(a.in_doubt_aborted, b.in_doubt_aborted)
      << what << " trial " << index;
  EXPECT_EQ(a.shard_disagreements, b.shard_disagreements)
      << what << " trial " << index;
}

TortureSpec ShardedSpec() {
  TortureSpec spec = SmallSpec();
  spec.shards = 4;
  spec.cross_shard_fraction = 0.3;
  return spec;
}

TEST(TortureTest, SmokeAllManagersPass) {
  TortureSpec spec = SmallSpec();
  for (TortureManager manager : AllTortureManagers()) {
    TortureReport report = RunTorture(spec, manager, nullptr, nullptr);
    EXPECT_EQ(report.failed, 0) << TortureManagerName(manager) << ": "
                                << (report.trials.empty()
                                        ? ""
                                        : report.trials[0].first_violation);
    EXPECT_EQ(report.passed, spec.trials);
    EXPECT_GT(report.total_committed, 0)
        << TortureManagerName(manager) << " ran no transactions";
  }
}

TEST(TortureTest, FaultsActuallyFire) {
  // Across a few trials of one manager, the configured rates must produce
  // observable injections — otherwise the sweep silently tests nothing.
  TortureSpec spec = SmallSpec();
  spec.trials = 5;
  TortureReport report =
      RunTorture(spec, TortureManager::kEphemeral, nullptr, nullptr);
  EXPECT_GT(report.total_log_write_retries + report.total_bit_rot_writes +
                report.total_flush_retries,
            0);
}

TEST(TortureTest, DeterministicAcrossWorkerCounts) {
  TortureSpec spec = SmallSpec();
  ThreadPool pool4(4);
  for (TortureManager manager :
       {TortureManager::kEphemeral, TortureManager::kHybrid}) {
    TortureReport serial = RunTorture(spec, manager, nullptr, nullptr);
    TortureReport parallel = RunTorture(spec, manager, &pool4, nullptr);
    ASSERT_EQ(serial.trials.size(), parallel.trials.size());
    for (size_t i = 0; i < serial.trials.size(); ++i) {
      ExpectSameTrial(serial.trials[i], parallel.trials[i],
                      TortureManagerName(manager), i);
    }
    EXPECT_EQ(serial.passed, parallel.passed);
    EXPECT_EQ(serial.total_committed, parallel.total_committed);
  }
}

TEST(TortureTest, ShardedSmokeAllManagersPass) {
  TortureSpec spec = ShardedSpec();
  for (TortureManager manager : AllTortureManagers()) {
    TortureReport report = RunTorture(spec, manager, nullptr, nullptr);
    EXPECT_EQ(report.failed, 0) << TortureManagerName(manager) << ": "
                                << (report.trials.empty()
                                        ? ""
                                        : report.trials[0].first_violation);
    EXPECT_EQ(report.passed, spec.trials);
  }
}

// The acceptance pin: a trial whose crash lands mid cross-shard commit —
// PREPAREs durable on some shards with the decision outcome split — must
// resolve its in-doubt transactions, and every replay of (seed, manager,
// index) must resolve them identically. Trial 0 of this spec leaves both
// kinds of evidence (branches redone from a committed decision elsewhere
// AND presumed aborts); if trial derivation ever changes, re-pin an index
// with both counters nonzero.
TEST(TortureTest, PinnedCrossShardCrashReplaysIdentically) {
  TortureSpec spec = ShardedSpec();
  TortureTrial first = RunTortureTrial(spec, TortureManager::kEphemeral, 0);
  EXPECT_TRUE(first.ok) << first.first_violation;
  EXPECT_GT(first.prepares_in_log, 0);
  EXPECT_GT(first.in_doubt_committed, 0);
  EXPECT_GT(first.in_doubt_aborted, 0);
  EXPECT_EQ(first.shard_disagreements, 0);
  for (int replay = 0; replay < 2; ++replay) {
    TortureTrial again = RunTortureTrial(spec, TortureManager::kEphemeral, 0);
    ExpectSameTrial(first, again, "pinned cross-shard replay", 0);
  }
}

TEST(TortureTest, ShardedDeterministicAcrossWorkerCounts) {
  TortureSpec spec = ShardedSpec();
  ThreadPool pool4(4);
  TortureReport serial =
      RunTorture(spec, TortureManager::kEphemeral, nullptr, nullptr);
  TortureReport parallel =
      RunTorture(spec, TortureManager::kEphemeral, &pool4, nullptr);
  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  for (size_t i = 0; i < serial.trials.size(); ++i) {
    ExpectSameTrial(serial.trials[i], parallel.trials[i], "sharded", i);
  }
  EXPECT_EQ(serial.total_prepares_in_log, parallel.total_prepares_in_log);
  EXPECT_GT(serial.total_prepares_in_log, 0);
}

TEST(TortureTest, ManagersDrawIndependentStreams) {
  // Different manager salts must decorrelate trials with the same index.
  TortureSpec spec = SmallSpec();
  TortureTrial el = RunTortureTrial(spec, TortureManager::kEphemeral, 0);
  TortureTrial fw = RunTortureTrial(spec, TortureManager::kFirewall, 0);
  EXPECT_NE(el.seed, fw.seed);
}

}  // namespace
}  // namespace runner
}  // namespace elog
