// Torture harness smoke + determinism: a small sweep passes for every
// manager, and the same spec produces identical trial records at any
// worker count (the property the CI determinism check enforces at the
// JSON level).

#include "runner/torture.h"

#include <gtest/gtest.h>

#include "runner/thread_pool.h"

namespace elog {
namespace runner {
namespace {

TortureSpec SmallSpec() {
  TortureSpec spec;
  spec.trials = 3;
  spec.base_seed = 1789;
  return spec;
}

void ExpectSameTrial(const TortureTrial& a, const TortureTrial& b,
                     const char* what, size_t index) {
  EXPECT_EQ(a.seed, b.seed) << what << " trial " << index;
  EXPECT_EQ(a.crash_time, b.crash_time) << what << " trial " << index;
  EXPECT_EQ(a.crash_events, b.crash_events) << what << " trial " << index;
  EXPECT_EQ(a.torn_write, b.torn_write) << what << " trial " << index;
  EXPECT_EQ(a.exact_checked, b.exact_checked) << what << " trial " << index;
  EXPECT_EQ(a.ok, b.ok) << what << " trial " << index;
  EXPECT_EQ(a.committed, b.committed) << what << " trial " << index;
  EXPECT_EQ(a.killed, b.killed) << what << " trial " << index;
  EXPECT_EQ(a.log_write_retries, b.log_write_retries)
      << what << " trial " << index;
  EXPECT_EQ(a.log_writes_lost, b.log_writes_lost)
      << what << " trial " << index;
  EXPECT_EQ(a.bit_rot_writes, b.bit_rot_writes) << what << " trial " << index;
  EXPECT_EQ(a.flush_retries, b.flush_retries) << what << " trial " << index;
  EXPECT_EQ(a.blocks_corrupt, b.blocks_corrupt) << what << " trial " << index;
  EXPECT_EQ(a.records_recovered, b.records_recovered)
      << what << " trial " << index;
  EXPECT_EQ(a.first_violation, b.first_violation)
      << what << " trial " << index;
}

TEST(TortureTest, SmokeAllManagersPass) {
  TortureSpec spec = SmallSpec();
  for (TortureManager manager : AllTortureManagers()) {
    TortureReport report = RunTorture(spec, manager, nullptr, nullptr);
    EXPECT_EQ(report.failed, 0) << TortureManagerName(manager) << ": "
                                << (report.trials.empty()
                                        ? ""
                                        : report.trials[0].first_violation);
    EXPECT_EQ(report.passed, spec.trials);
    EXPECT_GT(report.total_committed, 0)
        << TortureManagerName(manager) << " ran no transactions";
  }
}

TEST(TortureTest, FaultsActuallyFire) {
  // Across a few trials of one manager, the configured rates must produce
  // observable injections — otherwise the sweep silently tests nothing.
  TortureSpec spec = SmallSpec();
  spec.trials = 5;
  TortureReport report =
      RunTorture(spec, TortureManager::kEphemeral, nullptr, nullptr);
  EXPECT_GT(report.total_log_write_retries + report.total_bit_rot_writes +
                report.total_flush_retries,
            0);
}

TEST(TortureTest, DeterministicAcrossWorkerCounts) {
  TortureSpec spec = SmallSpec();
  ThreadPool pool4(4);
  for (TortureManager manager :
       {TortureManager::kEphemeral, TortureManager::kHybrid}) {
    TortureReport serial = RunTorture(spec, manager, nullptr, nullptr);
    TortureReport parallel = RunTorture(spec, manager, &pool4, nullptr);
    ASSERT_EQ(serial.trials.size(), parallel.trials.size());
    for (size_t i = 0; i < serial.trials.size(); ++i) {
      ExpectSameTrial(serial.trials[i], parallel.trials[i],
                      TortureManagerName(manager), i);
    }
    EXPECT_EQ(serial.passed, parallel.passed);
    EXPECT_EQ(serial.total_committed, parallel.total_committed);
  }
}

TEST(TortureTest, ManagersDrawIndependentStreams) {
  // Different manager salts must decorrelate trials with the same index.
  TortureSpec spec = SmallSpec();
  TortureTrial el = RunTortureTrial(spec, TortureManager::kEphemeral, 0);
  TortureTrial fw = RunTortureTrial(spec, TortureManager::kFirewall, 0);
  EXPECT_NE(el.seed, fw.seed);
}

}  // namespace
}  // namespace runner
}  // namespace elog
