#include "core/generation.h"

#include <gtest/gtest.h>

namespace elog {
namespace {

wal::LogRecord Record(Lsn lsn) { return wal::LogRecord::MakeBegin(1, lsn); }

TEST(GenerationTest, InitialState) {
  Generation gen(0, 8);
  EXPECT_EQ(gen.index(), 0u);
  EXPECT_EQ(gen.num_blocks(), 8u);
  EXPECT_EQ(gen.head_slot(), 0u);
  EXPECT_EQ(gen.tail_slot(), 0u);
  EXPECT_EQ(gen.used_blocks(), 0u);
  EXPECT_EQ(gen.free_blocks(), 7u);  // tail slot always reserved
  EXPECT_FALSE(gen.has_open_builder());
  EXPECT_TRUE(gen.cells().empty());
}

TEST(GenerationTest, OpenBuilderTargetsTail) {
  Generation gen(0, 4);
  gen.OpenBuilder();
  EXPECT_TRUE(gen.has_open_builder());
  EXPECT_EQ(gen.builder_slot(), 0u);
  EXPECT_TRUE(gen.builder().empty());
}

TEST(GenerationTest, CloseAdvancesTailAndUsed) {
  Generation gen(0, 4);
  gen.OpenBuilder();
  gen.builder().Add(Record(1));
  Generation::ClosedBuffer closed = gen.CloseBuilder(10);
  EXPECT_EQ(closed.slot, 0u);
  EXPECT_FALSE(gen.has_open_builder());
  EXPECT_EQ(gen.tail_slot(), 1u);
  EXPECT_EQ(gen.used_blocks(), 1u);
  EXPECT_EQ(gen.free_blocks(), 2u);
  auto decoded = wal::DecodeBlock(closed.image);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->write_seq, 10u);
  EXPECT_EQ(decoded->records.size(), 1u);
}

TEST(GenerationTest, CommitTidsHandedOverOnClose) {
  Generation gen(0, 4);
  gen.OpenBuilder();
  gen.builder().Add(Record(1));
  gen.pending_commit_tids().push_back(42);
  gen.pending_commit_tids().push_back(43);
  Generation::ClosedBuffer closed = gen.CloseBuilder(1);
  EXPECT_EQ(closed.commit_tids, (std::vector<TxId>{42, 43}));
  gen.OpenBuilder();
  EXPECT_TRUE(gen.pending_commit_tids().empty());
}

TEST(GenerationTest, TailWrapsCircularly) {
  Generation gen(0, 3);
  for (uint32_t i = 0; i < 2; ++i) {
    gen.OpenBuilder();
    gen.builder().Add(Record(i));
    gen.CloseBuilder(i);
  }
  EXPECT_EQ(gen.tail_slot(), 2u);
  EXPECT_EQ(gen.free_blocks(), 0u);
  gen.AdvanceHead();  // frees slot 0
  EXPECT_EQ(gen.head_slot(), 1u);
  gen.OpenBuilder();
  gen.builder().Add(Record(9));
  gen.CloseBuilder(9);
  EXPECT_EQ(gen.tail_slot(), 0u);  // wrapped
}

TEST(GenerationTest, BuilderEpochChangesOnOpenAndClose) {
  Generation gen(0, 4);
  uint64_t e0 = gen.builder_epoch();
  gen.OpenBuilder();
  uint64_t e1 = gen.builder_epoch();
  EXPECT_NE(e0, e1);
  gen.builder().Add(Record(1));
  gen.CloseBuilder(1);
  EXPECT_NE(gen.builder_epoch(), e1);
}

TEST(GenerationTest, SlotRecordAccounting) {
  Generation gen(0, 4);
  gen.NoteRecordAdded(0);
  gen.NoteRecordAdded(0);
  gen.NoteRecordAdded(1);
  EXPECT_EQ(gen.slot_records(0), 2u);
  gen.NoteRecordRemoved(0);
  EXPECT_EQ(gen.slot_records(0), 1u);
  EXPECT_EQ(gen.TakeSlotRecords(0), 1u);
  EXPECT_EQ(gen.slot_records(0), 0u);
  EXPECT_EQ(gen.slot_records(1), 1u);
}

TEST(GenerationTest, LiveCountAccounting) {
  Generation gen(0, 4);
  gen.AddLive(2);
  gen.AddLive(2);
  EXPECT_EQ(gen.live_count(2), 2u);
  gen.RemoveLive(2);
  EXPECT_EQ(gen.live_count(2), 1u);
}

TEST(GenerationDeathTest, CloseEmptyBuilderChecks) {
  Generation gen(0, 4);
  gen.OpenBuilder();
  EXPECT_DEATH(gen.CloseBuilder(1), "empty");
}

TEST(GenerationDeathTest, CloseWithoutFreeSlotChecks) {
  Generation gen(0, 2);  // 1 usable + reserved tail
  gen.OpenBuilder();
  gen.builder().Add(Record(1));
  gen.CloseBuilder(1);
  gen.OpenBuilder();
  gen.builder().Add(Record(2));
  EXPECT_DEATH(gen.CloseBuilder(2), "no slot");
}

TEST(GenerationDeathTest, DoubleOpenChecks) {
  Generation gen(0, 4);
  gen.OpenBuilder();
  EXPECT_DEATH(gen.OpenBuilder(), "");
}

TEST(GenerationDeathTest, AdvanceEmptyHeadChecks) {
  Generation gen(0, 4);
  EXPECT_DEATH(gen.AdvanceHead(), "");
}

TEST(GenerationDeathTest, AdvanceOverLiveRecordsChecks) {
  Generation gen(0, 4);
  gen.OpenBuilder();
  gen.builder().Add(Record(1));
  gen.CloseBuilder(1);
  gen.AddLive(0);
  EXPECT_DEATH(gen.AdvanceHead(), "live firewall records");
}

}  // namespace
}  // namespace elog
