// Unit tests of single-pass recovery over hand-built crash images.

#include "db/recovery.h"

#include <gtest/gtest.h>

#include "wal/block_format.h"

namespace elog {
namespace db {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : log_({4, 4}) {}

  /// Writes the given records into the next slot of `generation`.
  void AddBlock(uint32_t generation,
                const std::vector<wal::LogRecord>& records) {
    uint32_t slot = next_slot_[generation]++;
    log_.Put({generation, slot},
             wal::EncodeBlock(generation, next_seq_++, records));
  }

  wal::LogRecord Data(TxId tid, Lsn lsn, Oid oid) {
    return wal::LogRecord::MakeData(tid, lsn, oid, 100,
                                    wal::ComputeValueDigest(tid, oid, lsn));
  }

  disk::LogStorage log_;
  StableStore stable_;
  uint32_t next_slot_[2] = {0, 0};
  uint64_t next_seq_ = 1;
};

TEST_F(RecoveryTest, EmptyLogRecoversStableVersion) {
  stable_.ApplyFlush(5, 10, 0xAA);
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_TRUE(result.committed_in_log.empty());
  ASSERT_EQ(result.state.size(), 1u);
  EXPECT_EQ(result.state[5].lsn, 10u);
  EXPECT_EQ(result.state[5].value_digest, 0xAAu);
}

TEST_F(RecoveryTest, CommittedUpdateApplied) {
  AddBlock(0, {wal::LogRecord::MakeBegin(1, 1), Data(1, 2, 77),
               wal::LogRecord::MakeCommit(1, 3)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_TRUE(result.committed_in_log.count(1));
  ASSERT_TRUE(result.state.count(77));
  EXPECT_EQ(result.state[77].lsn, 2u);
  EXPECT_EQ(result.state[77].value_digest,
            wal::ComputeValueDigest(1, 77, 2));
  EXPECT_EQ(result.records_applied, 1u);
}

TEST_F(RecoveryTest, UncommittedUpdateIgnored) {
  AddBlock(0, {wal::LogRecord::MakeBegin(1, 1), Data(1, 2, 77)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_FALSE(result.state.count(77));
  EXPECT_EQ(result.uncommitted_records_ignored, 1u);
}

TEST_F(RecoveryTest, AbortedTransactionIgnored) {
  AddBlock(0, {wal::LogRecord::MakeBegin(1, 1), Data(1, 2, 77),
               wal::LogRecord::MakeAbort(1, 3)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_FALSE(result.state.count(77));
  EXPECT_TRUE(result.committed_in_log.empty());
}

TEST_F(RecoveryTest, LatestCommittedVersionWinsByLsn) {
  AddBlock(0, {Data(1, 2, 50), wal::LogRecord::MakeCommit(1, 3)});
  AddBlock(0, {Data(2, 10, 50), wal::LogRecord::MakeCommit(2, 11)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_EQ(result.state[50].lsn, 10u);
}

TEST_F(RecoveryTest, PhysicalOrderIrrelevant) {
  // Recirculation scrambles physical order: the newer update sits in an
  // earlier slot. LSNs must decide.
  AddBlock(0, {Data(2, 10, 50), wal::LogRecord::MakeCommit(2, 11)});
  AddBlock(0, {Data(1, 2, 50), wal::LogRecord::MakeCommit(1, 3)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_EQ(result.state[50].lsn, 10u);
}

TEST_F(RecoveryTest, ForwardedDuplicateHarmless) {
  // A forwarded record's stale copy in generation 0 plus the live copy in
  // generation 1: dedup by LSN.
  wal::LogRecord record = Data(1, 5, 9);
  AddBlock(0, {record});
  AddBlock(1, {record, wal::LogRecord::MakeCommit(1, 6)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_EQ(result.state[9].lsn, 5u);
  EXPECT_EQ(result.records_applied, 1u);  // second copy deduped
}

TEST_F(RecoveryTest, StableVersionNewerThanStaleLogRecord) {
  // The object was updated (lsn 20, flushed) after the logged update
  // (lsn 5, from a committed transaction whose stale records linger).
  stable_.ApplyFlush(9, 20, 0xFF);
  AddBlock(0, {Data(1, 5, 9), wal::LogRecord::MakeCommit(1, 6)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_EQ(result.state[9].lsn, 20u);
  EXPECT_EQ(result.state[9].value_digest, 0xFFu);
}

TEST_F(RecoveryTest, LogNewerThanStable) {
  stable_.ApplyFlush(9, 5, 0x11);
  AddBlock(0, {Data(1, 20, 9), wal::LogRecord::MakeCommit(1, 21)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_EQ(result.state[9].lsn, 20u);
}

TEST_F(RecoveryTest, CommitInDifferentGenerationThanData) {
  // The COMMIT record may have been forwarded away from its data records.
  AddBlock(0, {Data(1, 2, 30)});
  AddBlock(1, {wal::LogRecord::MakeCommit(1, 3)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_TRUE(result.state.count(30));
}

TEST_F(RecoveryTest, TornBlockSkippedRestRecovered) {
  AddBlock(0, {Data(1, 2, 30), wal::LogRecord::MakeCommit(1, 3)});
  AddBlock(0, {Data(2, 4, 31), wal::LogRecord::MakeCommit(2, 5)});
  log_.CorruptBlock({0, 1});  // the second block is torn
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_EQ(result.scan.blocks_corrupt, 1u);
  EXPECT_TRUE(result.state.count(30));
  EXPECT_FALSE(result.state.count(31));  // lost with the torn block
}

TEST_F(RecoveryTest, MultipleObjectsPerTransaction) {
  AddBlock(0, {Data(1, 2, 70), Data(1, 3, 71), Data(1, 4, 72),
               wal::LogRecord::MakeCommit(1, 5)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_EQ(result.state.size(), 3u);
  EXPECT_EQ(result.records_applied, 3u);
}

TEST_F(RecoveryTest, ProvisionalEntryOfUncommittedWriterReverted) {
  // UNDO/REDO: a stolen value sits provisionally in the stable version;
  // its writer has no COMMIT in the log -> revert to the before-image.
  stable_.ApplySteal(40, /*lsn=*/50, /*digest=*/0xBB, /*writer=*/5,
                     /*prev_lsn=*/20, /*prev_digest=*/0xAA);
  AddBlock(0, {Data(5, 50, 40)});  // the stolen record, no COMMIT
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_EQ(result.undos_applied, 1u);
  ASSERT_TRUE(result.state.count(40));
  EXPECT_EQ(result.state[40].lsn, 20u);
  EXPECT_EQ(result.state[40].value_digest, 0xAAu);
}

TEST_F(RecoveryTest, ProvisionalEntryOfCommittedWriterKept) {
  stable_.ApplySteal(40, 50, 0xBB, 5, 20, 0xAA);
  AddBlock(0, {Data(5, 50, 40), wal::LogRecord::MakeCommit(5, 51)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_EQ(result.undos_applied, 0u);
  ASSERT_TRUE(result.state.count(40));
  EXPECT_EQ(result.state[40].lsn, 50u);
  EXPECT_EQ(result.state[40].value_digest, 0xBBu);
  EXPECT_FALSE(result.state[40].provisional);
}

TEST_F(RecoveryTest, ProvisionalWithNoPredecessorVanishes) {
  stable_.ApplySteal(40, 50, 0xBB, 5, /*prev_lsn=*/0, 0);
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_EQ(result.undos_applied, 1u);
  EXPECT_FALSE(result.state.count(40));
}

TEST_F(RecoveryTest, RedoOverlayBeatsRevertedProvisional) {
  // The stolen value is reverted, but a *different* committed update of
  // the same object in the log is newer than the before-image.
  stable_.ApplySteal(40, 50, 0xBB, 5, 20, 0xAA);
  AddBlock(0, {Data(9, 30, 40), wal::LogRecord::MakeCommit(9, 31)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  ASSERT_TRUE(result.state.count(40));
  EXPECT_EQ(result.state[40].lsn, 30u);  // committed lsn 30 > prev 20
}

TEST_F(RecoveryTest, MixOfCommittedAndUncommitted) {
  AddBlock(0, {Data(1, 2, 80), Data(2, 3, 81),
               wal::LogRecord::MakeCommit(1, 4)});
  RecoveryResult result = RecoveryManager::Recover(log_, stable_);
  EXPECT_TRUE(result.state.count(80));
  EXPECT_FALSE(result.state.count(81));
  EXPECT_EQ(result.uncommitted_records_ignored, 1u);
}

}  // namespace
}  // namespace db
}  // namespace elog
