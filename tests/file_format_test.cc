// On-disk WAL framing: golden-layout pins (the format is a contract —
// any byte moving is a format break that needs a version bump), round
// trips, and a corruption/truncation fuzz pass over a real file proving
// RecoverFromFile stops cleanly at the first invalid block.

#include "disk/file_format.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/crc32c.h"
#include "util/random.h"
#include "wal/block_format.h"
#include "wal/record.h"

namespace elog {
namespace disk {
namespace {

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t ReadU64(const uint8_t* p) {
  return static_cast<uint64_t>(ReadU32(p)) |
         (static_cast<uint64_t>(ReadU32(p + 4)) << 32);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

FileGeometry SmallGeometry() {
  FileGeometry geometry;
  geometry.slot_bytes = 4096;
  geometry.generation_sizes = {3, 2};
  return geometry;
}

// --- Golden layout ------------------------------------------------------

TEST(FileFormatGoldenTest, SuperblockLayoutIsPinned) {
  std::vector<uint8_t> super = EncodeSuperblock(SmallGeometry());
  ASSERT_EQ(super.size(), kSuperblockBytes);
  // Magic is the ASCII string "ELOGWAL1", little-endian at offset 0.
  EXPECT_EQ(std::string(super.begin(), super.begin() + 8), "ELOGWAL1");
  EXPECT_EQ(ReadU64(super.data()), kFileMagic);
  EXPECT_EQ(ReadU32(super.data() + 8), kFileFormatVersion);  // version
  EXPECT_EQ(ReadU32(super.data() + 12), 4096u);              // slot_bytes
  EXPECT_EQ(ReadU32(super.data() + 16), 2u);                 // generations
  EXPECT_EQ(ReadU32(super.data() + 20), 3u);                 // gen 0 slots
  EXPECT_EQ(ReadU32(super.data() + 24), 2u);                 // gen 1 slots
  // Masked CRC32C over [8, 4088) sits in the trailing 8 bytes.
  const uint32_t stored =
      crc32c::Unmask(ReadU32(super.data() + kSuperblockBytes - 8));
  EXPECT_EQ(stored, crc32c::Value(super.data() + 8, kSuperblockBytes - 16));
  // Everything between the generation table and the CRC is zero pad.
  for (size_t i = 28; i < kSuperblockBytes - 8; ++i) {
    ASSERT_EQ(super[i], 0u) << "unexpected byte at offset " << i;
  }
}

TEST(FileFormatGoldenTest, FrameLayoutIsPinned) {
  const wal::BlockImage payload = wal::EncodeBlock(/*generation=*/1,
                                                  /*write_seq=*/7, {});
  std::vector<uint8_t> frame(FrameBytes(payload));
  EncodeFrameInto({1, 4}, /*write_seq=*/0x1122334455667788ull, payload,
                  frame.data());
  EXPECT_EQ(kFrameHeaderBytes, 32u);
  // Frame magic 0x464c4f45 little-endian at offset 0 (reads "EOLF").
  EXPECT_EQ(std::string(frame.begin(), frame.begin() + 4), "EOLF");
  EXPECT_EQ(ReadU32(frame.data() + kFrameMagicOffset), kFrameMagic);
  EXPECT_EQ(ReadU32(frame.data() + kFrameGenerationOffset), 1u);
  EXPECT_EQ(ReadU32(frame.data() + kFrameSlotOffset), 4u);
  EXPECT_EQ(ReadU64(frame.data() + kFrameSeqOffset), 0x1122334455667788ull);
  EXPECT_EQ(ReadU32(frame.data() + kFramePayloadLenOffset), payload.size());
  EXPECT_EQ(ReadU32(frame.data() + 28), 0u);  // reserved
  // Payload bytes verbatim after the header.
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         frame.begin() + kFrameHeaderBytes));
  // Masked CRC32C at offset 4 covers [8, end).
  const uint32_t stored = crc32c::Unmask(ReadU32(frame.data() + kFrameCrcOffset));
  EXPECT_EQ(stored, crc32c::Value(frame.data() + 8, frame.size() - 8));
}

// --- Round trips and rejection ------------------------------------------

TEST(FileFormatTest, SuperblockRoundTrips) {
  std::vector<uint8_t> super = EncodeSuperblock(SmallGeometry());
  FileGeometry decoded;
  ASSERT_TRUE(DecodeSuperblock(super.data(), super.size(), &decoded).ok());
  EXPECT_EQ(decoded.slot_bytes, 4096u);
  EXPECT_EQ(decoded.generation_sizes, (std::vector<uint32_t>{3, 2}));
  EXPECT_EQ(decoded.total_slots(), 5u);
  EXPECT_EQ(decoded.file_bytes(), kSuperblockBytes + 5 * 4096u);
}

TEST(FileFormatTest, SuperblockRejectsTampering) {
  std::vector<uint8_t> super = EncodeSuperblock(SmallGeometry());
  FileGeometry decoded;
  super[12] ^= 1;  // slot_bytes
  Status status = DecodeSuperblock(super.data(), super.size(), &decoded);
  EXPECT_TRUE(status.IsCorruption());
  super[12] ^= 1;
  super[0] ^= 1;  // magic
  status = DecodeSuperblock(super.data(), super.size(), &decoded);
  EXPECT_TRUE(status.IsCorruption());
}

TEST(FileFormatTest, FrameRoundTrips) {
  const wal::BlockImage payload = wal::EncodeBlock(0, 42, {});
  std::vector<uint8_t> slot(4096, 0);
  EncodeFrameInto({0, 2}, 42, payload, slot.data());
  EXPECT_FALSE(FrameIsEmpty(slot.data(), slot.size()));
  BlockAddress addr;
  uint64_t seq = 0;
  wal::BlockImage decoded;
  ASSERT_TRUE(DecodeFrame(slot.data(), slot.size(), &addr, &seq, &decoded).ok());
  EXPECT_EQ(addr, (BlockAddress{0, 2}));
  EXPECT_EQ(seq, 42u);
  EXPECT_EQ(decoded, payload);
}

TEST(FileFormatTest, FrameRejectsFlippedPayloadByte) {
  const wal::BlockImage payload = wal::EncodeBlock(0, 42, {});
  std::vector<uint8_t> slot(4096, 0);
  EncodeFrameInto({0, 2}, 42, payload, slot.data());
  slot[kFrameHeaderBytes + payload.size() / 2] ^= 0x40;
  BlockAddress addr;
  uint64_t seq = 0;
  wal::BlockImage decoded;
  EXPECT_TRUE(
      DecodeFrame(slot.data(), slot.size(), &addr, &seq, &decoded).IsCorruption());
}

TEST(FileFormatTest, FrameRejectsOverrunPayloadLength) {
  const wal::BlockImage payload = wal::EncodeBlock(0, 42, {});
  std::vector<uint8_t> slot(4096, 0);
  EncodeFrameInto({0, 2}, 42, payload, slot.data());
  // Claim a payload larger than the slot: must reject before reading it.
  slot[kFramePayloadLenOffset] = 0xff;
  slot[kFramePayloadLenOffset + 1] = 0xff;
  BlockAddress addr;
  uint64_t seq = 0;
  wal::BlockImage decoded;
  EXPECT_TRUE(
      DecodeFrame(slot.data(), slot.size(), &addr, &seq, &decoded).IsCorruption());
}

TEST(FileFormatTest, AllZeroSlotIsEmpty) {
  std::vector<uint8_t> slot(4096, 0);
  EXPECT_TRUE(FrameIsEmpty(slot.data(), slot.size()));
}

// --- Recovery from a real file ------------------------------------------

/// Writes a well-formed WAL file by hand: superblock plus a valid frame
/// in every slot of generation 0 and the first slot of generation 1.
std::string WriteWalFile(const std::string& name,
                         std::vector<BlockAddress>* written) {
  const std::string path = TempPath(name);
  FileGeometry geometry = SmallGeometry();
  std::string bytes(geometry.file_bytes(), '\0');
  std::vector<uint8_t> super = EncodeSuperblock(geometry);
  std::copy(super.begin(), super.end(), bytes.begin());
  uint64_t seq = 0;
  auto put = [&](BlockAddress addr) {
    const wal::BlockImage payload =
        wal::EncodeBlock(addr.generation, ++seq, {});
    EncodeFrameInto(addr, seq, payload,
                    reinterpret_cast<uint8_t*>(bytes.data()) +
                        geometry.SlotOffset(addr));
    if (written != nullptr) written->push_back(addr);
  };
  put({0, 0});
  put({0, 1});
  put({0, 2});
  put({1, 0});
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

TEST(RecoverFromFileTest, RecoversEveryValidBlock) {
  std::vector<BlockAddress> written;
  const std::string path = WriteWalFile("recover_ok.wal", &written);
  FileRecoveryResult result = RecoverFromFile(path);
  ASSERT_TRUE(result.status.ok()) << result.status.message();
  EXPECT_FALSE(result.stopped_early);
  EXPECT_EQ(result.blocks_valid, written.size());
  EXPECT_EQ(result.blocks_empty,
            result.geometry.total_slots() - written.size());
  for (BlockAddress addr : written) {
    EXPECT_TRUE(result.storage.IsWritten(addr));
  }
  EXPECT_FALSE(result.storage.IsWritten({1, 1}));
}

TEST(RecoverFromFileTest, MissingFileIsNotFound) {
  FileRecoveryResult result = RecoverFromFile(TempPath("does_not_exist.wal"));
  EXPECT_FALSE(result.status.ok());
}

TEST(RecoverFromFileTest, StopsAtTheFirstCorruptBlock) {
  const std::string path = WriteWalFile("recover_corrupt.wal", nullptr);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    // Flip one payload byte of {0, 1} (inside the 48-byte block header —
    // the payloads here are empty blocks): recovery must keep {0, 0},
    // stop at {0, 1}, and never reach the later valid blocks.
    FileGeometry geometry = SmallGeometry();
    file.seekp(static_cast<std::streamoff>(geometry.SlotOffset({0, 1})) +
               kFrameHeaderBytes + 10);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(-1, std::ios::cur);
    byte ^= 0x20;
    file.write(&byte, 1);
  }
  FileRecoveryResult result = RecoverFromFile(path);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.stopped_early);
  EXPECT_EQ(result.stopped_at, (BlockAddress{0, 1}));
  EXPECT_EQ(result.blocks_valid, 1u);
  EXPECT_TRUE(result.storage.IsWritten({0, 0}));
  EXPECT_FALSE(result.storage.IsWritten({0, 1}));
}

TEST(RecoverFromFileTest, FuzzedCorruptionNeverCrashes) {
  const std::string path = WriteWalFile("recover_fuzz.wal", nullptr);
  std::ifstream in(path, std::ios::binary);
  std::string pristine((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  Rng rng(20260808);
  const std::string fuzz_path = TempPath("recover_fuzz_case.wal");
  for (int round = 0; round < 200; ++round) {
    std::string bytes = pristine;
    // Either flip 1-4 bytes anywhere, truncate at a random length, or
    // both. Recovery must return a result (any status) without crashing,
    // and whatever it recovered must be internally consistent.
    const bool flip = rng.NextBounded(3) != 0;
    const bool cut = rng.NextBounded(3) == 0 || !flip;
    if (flip) {
      const int flips = 1 + static_cast<int>(rng.NextBounded(4));
      for (int i = 0; i < flips; ++i) {
        bytes[rng.NextBounded(bytes.size())] ^=
            static_cast<char>(1 + rng.NextBounded(255));
      }
    }
    if (cut) {
      bytes.resize(rng.NextBounded(bytes.size()));
    }
    std::ofstream out(fuzz_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    FileRecoveryResult result = RecoverFromFile(fuzz_path);
    if (!result.status.ok()) continue;  // superblock damage: fine
    // Every recovered block must decode as a valid block image for the
    // generation its slot claims.
    for (uint32_t g = 0; g < result.geometry.generation_sizes.size(); ++g) {
      for (uint32_t s = 0; s < result.geometry.generation_sizes[g]; ++s) {
        const wal::BlockImage* image = result.storage.Get({g, s});
        if (image == nullptr) continue;
        wal::DecodedBlock decoded;
        ASSERT_TRUE(wal::DecodeBlockInto(*image, &decoded).ok())
            << "round " << round;
        ASSERT_EQ(decoded.generation, g) << "round " << round;
      }
    }
  }
  std::remove(fuzz_path.c_str());
}

}  // namespace
}  // namespace disk
}  // namespace elog
