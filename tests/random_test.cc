#include "util/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace elog {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, Deterministic) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, ReseedResets) {
  Rng rng(7);
  uint64_t first = rng.NextUint64();
  rng.NextUint64();
  rng.Seed(7);
  EXPECT_EQ(rng.NextUint64(), first);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1'000'000'007ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, BoundedCoversSmallRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, BoundedRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int count : counts) {
    EXPECT_NEAR(count, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The fork must not replay the parent's stream.
  Rng parent_replay(31);
  parent_replay.Fork();
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (child.NextUint64() != parent.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngDeathTest, ZeroBoundRejected) {
  Rng rng(1);
  EXPECT_DEATH((void)rng.NextBounded(0), "bound");
}

}  // namespace
}  // namespace elog
