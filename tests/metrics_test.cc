#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace elog {
namespace sim {
namespace {

TEST(MetricsRegistryTest, CountersStartAtZero) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.Counter("never.touched"), 0);
}

TEST(MetricsRegistryTest, IncrAccumulates) {
  MetricsRegistry metrics;
  metrics.Incr("writes");
  metrics.Incr("writes", 4);
  metrics.Incr("writes", -2);
  EXPECT_EQ(metrics.Counter("writes"), 3);
}

TEST(MetricsRegistryTest, CountersAreIndependent) {
  MetricsRegistry metrics;
  metrics.Incr("a");
  metrics.Incr("b", 10);
  EXPECT_EQ(metrics.Counter("a"), 1);
  EXPECT_EQ(metrics.Counter("b"), 10);
}

TEST(MetricsRegistryTest, ObserveFeedsDistribution) {
  MetricsRegistry metrics;
  for (int i = 1; i <= 100; ++i) metrics.Observe("latency", i);
  const Histogram& hist = metrics.Distribution("latency");
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_DOUBLE_EQ(hist.mean(), 50.5);
}

TEST(MetricsRegistryTest, ResetClearsEverything) {
  MetricsRegistry metrics;
  metrics.Incr("x");
  metrics.Observe("y", 1.0);
  metrics.Reset();
  EXPECT_EQ(metrics.Counter("x"), 0);
  EXPECT_TRUE(metrics.counters().empty());
  EXPECT_TRUE(metrics.distributions().empty());
}

TEST(MetricsRegistryTest, ToStringListsEntries) {
  MetricsRegistry metrics;
  metrics.Incr("log.writes", 7);
  metrics.Observe("flush.seek", 3.0);
  std::string text = metrics.ToString();
  EXPECT_NE(text.find("log.writes"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("flush.seek"), std::string::npos);
}

}  // namespace
}  // namespace sim
}  // namespace elog
