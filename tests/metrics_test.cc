#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace elog {
namespace sim {
namespace {

TEST(MetricsRegistryTest, CountersStartAtZero) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.GetCounter("never.touched")->value(), 0);
}

TEST(MetricsRegistryTest, IncrAccumulates) {
  MetricsRegistry metrics;
  Counter* writes = metrics.GetCounter("writes");
  writes->Incr();
  writes->Incr(4);
  writes->Incr(-2);
  EXPECT_EQ(metrics.GetCounter("writes")->value(), 3);
}

TEST(MetricsRegistryTest, CountersAreIndependent) {
  MetricsRegistry metrics;
  metrics.GetCounter("a")->Incr();
  metrics.GetCounter("b")->Incr(10);
  EXPECT_EQ(metrics.GetCounter("a")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("b")->value(), 10);
}

TEST(MetricsRegistryTest, HandlesAreStable) {
  MetricsRegistry metrics;
  Counter* first = metrics.GetCounter("x");
  metrics.GetCounter("a");  // an earlier-sorting neighbour
  metrics.GetCounter("z");  // and a later one
  EXPECT_EQ(first, metrics.GetCounter("x"));
}

TEST(MetricsRegistryTest, ObserveFeedsDistribution) {
  MetricsRegistry metrics;
  for (int i = 1; i <= 100; ++i) metrics.Observe("latency", i);
  const Histogram& hist = metrics.Distribution("latency");
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_DOUBLE_EQ(hist.mean(), 50.5);
}

TEST(MetricsRegistryTest, ResetClearsEverything) {
  MetricsRegistry metrics;
  metrics.GetCounter("x")->Incr();
  metrics.Observe("y", 1.0);
  metrics.Reset();
  EXPECT_EQ(metrics.GetCounter("x")->value(), 0);
  EXPECT_EQ(metrics.counters().size(), 1u);  // re-created by the read
  EXPECT_TRUE(metrics.distributions().empty());
}

TEST(MetricsRegistryTest, ToStringListsEntries) {
  MetricsRegistry metrics;
  metrics.GetCounter("log.writes")->Incr(7);
  metrics.Observe("flush.seek", 3.0);
  std::string text = metrics.ToString();
  EXPECT_NE(text.find("log.writes"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("flush.seek"), std::string::npos);
}

TEST(MetricsRegistryTest, NamespaceViewWritesThroughWithPrefix) {
  MetricsRegistry metrics;
  MetricsRegistry* shard = metrics.Namespace("shard0.");
  shard->GetCounter("el.appended")->Incr(5);
  shard->GetGauge("el.memory_bytes")->Set(10, 3.0);
  shard->Observe("commit_latency", 2.0);
  EXPECT_EQ(metrics.GetCounter("shard0.el.appended")->value(), 5);
  ASSERT_NE(metrics.FindGauge("shard0.el.memory_bytes"), nullptr);
  EXPECT_EQ(metrics.Distribution("shard0.commit_latency").count(), 1u);
  // The view holds no storage of its own.
  EXPECT_TRUE(shard->counters().empty());
  // Handles resolve to the same storage whichever side acquires them.
  EXPECT_EQ(shard->GetCounter("el.appended"),
            metrics.GetCounter("shard0.el.appended"));
}

TEST(MetricsRegistryTest, NamespaceIsIdempotentAndComposes) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.Namespace("shard1."), metrics.Namespace("shard1."));
  MetricsRegistry* nested = metrics.Namespace("shard1.")->Namespace("dev.");
  nested->GetCounter("writes")->Incr();
  EXPECT_EQ(metrics.GetCounter("shard1.dev.writes")->value(), 1);
  EXPECT_EQ(nested, metrics.Namespace("shard1.dev."));
}

TEST(MetricsRegistryTest, CopiesCarryDataNotViews) {
  MetricsRegistry metrics;
  metrics.Namespace("shard0.")->GetCounter("el.appended")->Incr(2);
  MetricsRegistry snapshot = metrics;
  EXPECT_EQ(snapshot.GetCounter("shard0.el.appended")->value(), 2);
  // The source's view still routes into the source, not the copy.
  metrics.Namespace("shard0.")->GetCounter("el.appended")->Incr();
  EXPECT_EQ(metrics.GetCounter("shard0.el.appended")->value(), 3);
  EXPECT_EQ(snapshot.GetCounter("shard0.el.appended")->value(), 2);
}

}  // namespace
}  // namespace sim
}  // namespace elog
