// Smoke tests of the figure harness on shortened workloads (the full
// 500 s sweeps live in bench/).

#include "harness/figures.h"

#include <gtest/gtest.h>

namespace elog {
namespace harness {
namespace {

TEST(FiguresTest, DefaultMixesMatchPaperRange) {
  std::vector<double> mixes = DefaultMixes();
  ASSERT_EQ(mixes.size(), 5u);
  EXPECT_DOUBLE_EQ(mixes.front(), 0.05);
  EXPECT_DOUBLE_EQ(mixes.back(), 0.40);
}

TEST(FiguresTest, PaperReferenceConstants) {
  EXPECT_DOUBLE_EQ(PaperReference::kFwSpaceBlocksAt5, 123);
  EXPECT_DOUBLE_EQ(PaperReference::kElSpaceBlocksAt5, 34);
  EXPECT_DOUBLE_EQ(PaperReference::kFwBandwidthAt5, 11.63);
  EXPECT_DOUBLE_EQ(PaperReference::kElRecircSpaceBlocks, 28);
  EXPECT_DOUBLE_EQ(PaperReference::kScarceSeekDistance, 109000);
}

TEST(FiguresTest, MixSweepSmoke) {
  workload::WorkloadSpec probe = workload::PaperMix(0.05);
  LogManagerOptions base;
  // One point at a short runtime: checks plumbing, not paper numbers.
  std::vector<MixPoint> points;
  {
    workload::WorkloadSpec spec = probe;
    spec.runtime = SecondsToSimTime(20);
    MixPoint point;
    point.long_fraction = 0.05;
    point.fw = MinFirewallSpace(MakeFirewallOptions(8, base), spec);
    LogManagerOptions el = base;
    el.recirculation = false;
    point.el = MinElSpace(el, spec, 4, 24);
    points.push_back(point);
  }
  const MixPoint& point = points[0];
  EXPECT_GT(point.fw.total_blocks, point.el.total_blocks);
  EXPECT_EQ(point.fw.stats.kills, 0);
  EXPECT_EQ(point.el.stats.kills, 0);
  EXPECT_EQ(point.el.generation_blocks.size(), 2u);
}

TEST(FiguresTest, ScarceFlushSmoke) {
  workload::WorkloadSpec spec = workload::PaperMix(0.05);
  spec.runtime = SecondsToSimTime(30);
  LogManagerOptions base;
  ScarceFlushResult result = RunScarceFlush(base, spec);
  EXPECT_EQ(result.scarce.generation_blocks[0], 20u);
  EXPECT_EQ(result.scarce.stats.kills, 0);
  // The locality signature: scarce flushing produces smaller seeks.
  EXPECT_LT(result.scarce.stats.mean_flush_seek_distance,
            result.normal_stats.mean_flush_seek_distance);
  // And a larger backlog.
  EXPECT_GE(result.scarce.stats.flush_backlog,
            result.normal_stats.flush_backlog);
}

}  // namespace
}  // namespace harness
}  // namespace elog
