#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace elog {
namespace crc32c {
namespace {

uint32_t Crc(const std::string& s) {
  return Value(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC32C test vectors (RFC 3720 / iSCSI).
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Value(zeros.data(), zeros.size()), 0x8a9136aau);

  std::vector<uint8_t> ones(32, 0xff);
  EXPECT_EQ(Value(ones.data(), ones.size()), 0x62a8ab43u);

  std::vector<uint8_t> ascending(32);
  for (size_t i = 0; i < 32; ++i) ascending[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Value(ascending.data(), ascending.size()), 0x46dd794eu);
}

TEST(Crc32cTest, Empty) { EXPECT_EQ(Value(nullptr, 0), 0u); }

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(Crc("hello world"), Crc("hello worle"));
  EXPECT_NE(Crc("a"), Crc("b"));
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  std::vector<uint8_t> data(2048, 0x5c);
  uint32_t clean = Value(data.data(), data.size());
  for (size_t pos : {0u, 1000u, 2047u}) {
    data[pos] ^= 0x01;
    EXPECT_NE(Value(data.data(), data.size()), clean) << "flip at " << pos;
    data[pos] ^= 0x01;
  }
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  std::string a = "ephemeral ";
  std::string b = "logging";
  uint32_t whole = Crc(a + b);
  uint32_t extended =
      Extend(Extend(0, reinterpret_cast<const uint8_t*>(a.data()), a.size()),
             reinterpret_cast<const uint8_t*>(b.data()), b.size());
  EXPECT_EQ(whole, extended);
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, Crc("x")}) {
    EXPECT_EQ(Unmask(Mask(crc)), crc);
    EXPECT_NE(Mask(crc), crc);  // masking must change the value
  }
}

}  // namespace
}  // namespace crc32c
}  // namespace elog
