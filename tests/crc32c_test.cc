#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/random.h"

namespace elog {
namespace crc32c {
namespace {

uint32_t Crc(const std::string& s) {
  return Value(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC32C test vectors (RFC 3720 / iSCSI).
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Value(zeros.data(), zeros.size()), 0x8a9136aau);

  std::vector<uint8_t> ones(32, 0xff);
  EXPECT_EQ(Value(ones.data(), ones.size()), 0x62a8ab43u);

  std::vector<uint8_t> ascending(32);
  for (size_t i = 0; i < 32; ++i) ascending[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Value(ascending.data(), ascending.size()), 0x46dd794eu);
}

TEST(Crc32cTest, Empty) { EXPECT_EQ(Value(nullptr, 0), 0u); }

TEST(Crc32cTest, DifferentInputsDiffer) {
  EXPECT_NE(Crc("hello world"), Crc("hello worle"));
  EXPECT_NE(Crc("a"), Crc("b"));
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  std::vector<uint8_t> data(2048, 0x5c);
  uint32_t clean = Value(data.data(), data.size());
  for (size_t pos : {0u, 1000u, 2047u}) {
    data[pos] ^= 0x01;
    EXPECT_NE(Value(data.data(), data.size()), clean) << "flip at " << pos;
    data[pos] ^= 0x01;
  }
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  std::string a = "ephemeral ";
  std::string b = "logging";
  uint32_t whole = Crc(a + b);
  uint32_t extended =
      Extend(Extend(0, reinterpret_cast<const uint8_t*>(a.data()), a.size()),
             reinterpret_cast<const uint8_t*>(b.data()), b.size());
  EXPECT_EQ(whole, extended);
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, Crc("x")}) {
    EXPECT_EQ(Unmask(Mask(crc)), crc);
    EXPECT_NE(Mask(crc), crc);  // masking must change the value
  }
}

// ---- Implementation-equivalence suite: table / slice8 / hardware. ----
//
// The dispatched Extend() may pick any path; these tests pin all paths to
// the same digests so a dispatch change can never alter stored CRCs.

struct NamedImpl {
  const char* name;
  uint32_t (*fn)(uint32_t, const uint8_t*, size_t);
};

std::vector<NamedImpl> AllImpls() {
  std::vector<NamedImpl> impls = {{"table", &ExtendTable},
                                  {"slice8", &ExtendSlice8}};
  if (HardwareAvailable()) impls.push_back({"hw", &ExtendHardware});
  return impls;
}

TEST(Crc32cEquivalenceTest, Rfc3720GoldenVectors) {
  std::vector<uint8_t> zeros(32, 0);
  std::vector<uint8_t> ones(32, 0xff);
  std::vector<uint8_t> ascending(32), descending(32);
  for (size_t i = 0; i < 32; ++i) {
    ascending[i] = static_cast<uint8_t>(i);
    descending[i] = static_cast<uint8_t>(31 - i);
  }
  // RFC 3720 §B.4 test vectors.
  struct Golden {
    const std::vector<uint8_t>* data;
    uint32_t crc;
  };
  const Golden goldens[] = {{&zeros, 0x8a9136aau},
                            {&ones, 0x62a8ab43u},
                            {&ascending, 0x46dd794eu},
                            {&descending, 0x113fdb5cu}};
  for (const NamedImpl& impl : AllImpls()) {
    for (const Golden& g : goldens) {
      EXPECT_EQ(impl.fn(0, g.data->data(), g.data->size()), g.crc)
          << impl.name;
    }
  }
}

TEST(Crc32cEquivalenceTest, BlockPayloadSizedVectors) {
  // The block format checksums 2000-byte payloads (plus 40 header bytes);
  // pin the all-zero and all-ones payloads across every path.
  std::vector<uint8_t> zeros(2000, 0);
  std::vector<uint8_t> ones(2000, 0xff);
  const uint32_t zeros_crc = ExtendTable(0, zeros.data(), zeros.size());
  const uint32_t ones_crc = ExtendTable(0, ones.data(), ones.size());
  for (const NamedImpl& impl : AllImpls()) {
    EXPECT_EQ(impl.fn(0, zeros.data(), zeros.size()), zeros_crc) << impl.name;
    EXPECT_EQ(impl.fn(0, ones.data(), ones.size()), ones_crc) << impl.name;
  }
}

TEST(Crc32cEquivalenceTest, FuzzLengthsAlignmentsAndSeeds) {
  // Random contents, random lengths (odd tails included), random start
  // misalignment (0..7 bytes into an allocation), random init crc. All
  // implementations must agree bit for bit.
  Rng rng(20260805);
  std::vector<uint8_t> buffer(1 << 14);
  for (uint8_t& b : buffer) b = static_cast<uint8_t>(rng.NextBounded(256));
  for (int round = 0; round < 2000; ++round) {
    size_t offset = static_cast<size_t>(rng.NextBounded(8));
    size_t max_len = buffer.size() - offset;
    size_t len = static_cast<size_t>(rng.NextBounded(
        round % 4 == 0 ? 16 : static_cast<uint64_t>(max_len)));
    uint32_t init = static_cast<uint32_t>(rng.NextUint64());
    const uint8_t* p = buffer.data() + offset;
    uint32_t want = ExtendTable(init, p, len);
    for (const NamedImpl& impl : AllImpls()) {
      ASSERT_EQ(impl.fn(init, p, len), want)
          << impl.name << " offset=" << offset << " len=" << len
          << " init=" << init;
    }
  }
}

TEST(Crc32cEquivalenceTest, DispatchedExtendMatchesTable) {
  // Whatever ImplName() says is active, Extend() must equal the table.
  Rng rng(7);
  std::vector<uint8_t> data(4096);
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.NextBounded(256));
  EXPECT_EQ(Extend(0, data.data(), data.size()),
            ExtendTable(0, data.data(), data.size()))
      << "dispatched impl: " << ImplName();
  const std::string name = ImplName();
  EXPECT_TRUE(name == "table" || name == "slice8" || name == "hw") << name;
}

}  // namespace
}  // namespace crc32c
}  // namespace elog
