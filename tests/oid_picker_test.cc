#include "workload/oid_picker.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace elog {
namespace workload {
namespace {

TEST(OidPickerTest, AcquireReturnsDistinctWhileHeld) {
  Rng rng(1);
  OidPicker picker(100, &rng);
  std::set<Oid> held;
  for (int i = 0; i < 50; ++i) {
    Oid oid = picker.Acquire();
    EXPECT_LT(oid, 100u);
    EXPECT_TRUE(held.insert(oid).second) << "duplicate " << oid;
  }
  EXPECT_EQ(picker.held_count(), 50u);
}

TEST(OidPickerTest, ReleaseAllowsReuse) {
  Rng rng(2);
  OidPicker picker(1, &rng);  // single object: must recycle
  Oid first = picker.Acquire();
  EXPECT_EQ(first, 0u);
  picker.Release(first);
  EXPECT_EQ(picker.Acquire(), 0u);
}

TEST(OidPickerTest, IsHeldTracksState) {
  Rng rng(3);
  OidPicker picker(10, &rng);
  Oid oid = picker.Acquire();
  EXPECT_TRUE(picker.IsHeld(oid));
  picker.Release(oid);
  EXPECT_FALSE(picker.IsHeld(oid));
}

TEST(OidPickerTest, ExhaustsFullRange) {
  Rng rng(4);
  OidPicker picker(16, &rng);
  std::set<Oid> all;
  for (int i = 0; i < 16; ++i) all.insert(picker.Acquire());
  EXPECT_EQ(all.size(), 16u);
  EXPECT_EQ(*all.begin(), 0u);
  EXPECT_EQ(*all.rbegin(), 15u);
}

TEST(OidPickerTest, AcquireWhereRespectsFilter) {
  Rng rng(7);
  OidPicker picker(64, &rng);
  for (int i = 0; i < 20; ++i) {
    Oid oid = picker.AcquireWhere([](Oid o) { return o % 2 == 0; });
    EXPECT_EQ(oid % 2, 0u);
  }
}

// Distribution shape: Zipf(α) concentrates mass on low ranks — the hot
// oid 0 must be drawn far more often than a mid-range oid, and higher α
// must concentrate harder. Draws are released immediately so held-state
// rejection never distorts the frequencies.
TEST(OidPickerZipfTest, SkewsTowardLowOids) {
  constexpr Oid kObjects = 1000;
  constexpr int kDraws = 200000;
  Rng rng(11);
  OidPicker picker(kObjects, &rng, /*zipf_alpha=*/1.0);
  std::vector<int> counts(kObjects, 0);
  for (int i = 0; i < kDraws; ++i) {
    Oid oid = picker.Acquire();
    ++counts[oid];
    picker.Release(oid);
  }
  // Zipf(1): P(rank 1) / P(rank 10) = 10. Allow generous slack for
  // sampling noise (expected count for rank 1 is ~26k draws).
  EXPECT_GT(counts[0], counts[9] * 5);
  EXPECT_GT(counts[0], counts[99] * 20);
  // The head dominates: ranks 1-10 collect more than a uniform 1% share.
  int head = 0;
  for (int i = 0; i < 10; ++i) head += counts[i];
  EXPECT_GT(head, kDraws / 3);  // Zipf(1, n=1000): ~39% on the top 10
}

TEST(OidPickerZipfTest, HigherAlphaConcentratesHarder) {
  constexpr Oid kObjects = 1000;
  constexpr int kDraws = 50000;
  auto head_share = [&](double alpha, uint64_t seed) {
    Rng rng(seed);
    OidPicker picker(kObjects, &rng, alpha);
    int head = 0;
    for (int i = 0; i < kDraws; ++i) {
      Oid oid = picker.Acquire();
      if (oid < 10) ++head;
      picker.Release(oid);
    }
    return head;
  };
  const int mild = head_share(0.5, 21);
  const int steep = head_share(1.5, 21);
  EXPECT_GT(steep, mild * 2);
}

TEST(OidPickerZipfTest, DeterministicGivenSeed) {
  for (double alpha : {0.0, 0.8, 1.2}) {
    Rng rng_a(33), rng_b(33);
    OidPicker a(512, &rng_a, alpha);
    OidPicker b(512, &rng_b, alpha);
    for (int i = 0; i < 1000; ++i) {
      Oid oa = a.Acquire();
      Oid ob = b.Acquire();
      EXPECT_EQ(oa, ob) << "alpha=" << alpha << " draw " << i;
      a.Release(oa);
      b.Release(ob);
    }
  }
}

// α = 0 must preserve the paper's uniform draw — the exact historical
// RNG stream: one NextBounded(n) per accepted pick. A divergence here
// would silently invalidate every recorded golden artifact.
TEST(OidPickerZipfTest, AlphaZeroMatchesHistoricalUniformStream) {
  Rng picker_rng(55), raw_rng(55);
  OidPicker picker(128, &picker_rng, 0.0);
  for (int i = 0; i < 500; ++i) {
    Oid oid = picker.Acquire();
    EXPECT_EQ(oid, static_cast<Oid>(raw_rng.NextBounded(128)));
    picker.Release(oid);
  }
}

TEST(OidPickerZipfTest, ZipfDrawsStayInRange) {
  Rng rng(77);
  OidPicker picker(10, &rng, 2.0);  // tiny space, steep skew
  for (int i = 0; i < 5000; ++i) {
    Oid oid = picker.Acquire();
    EXPECT_LT(oid, 10u);
    picker.Release(oid);
  }
}

TEST(OidPickerDeathTest, ReleaseUnheldChecks) {
  Rng rng(5);
  OidPicker picker(10, &rng);
  EXPECT_DEATH(picker.Release(3), "not held");
}

TEST(OidPickerDeathTest, AcquireWhenExhaustedChecks) {
  Rng rng(6);
  OidPicker picker(2, &rng);
  picker.Acquire();
  picker.Acquire();
  EXPECT_DEATH(picker.Acquire(), "all objects");
}

}  // namespace
}  // namespace workload
}  // namespace elog
