#include "workload/oid_picker.h"

#include <gtest/gtest.h>

#include <set>

namespace elog {
namespace workload {
namespace {

TEST(OidPickerTest, AcquireReturnsDistinctWhileHeld) {
  Rng rng(1);
  OidPicker picker(100, &rng);
  std::set<Oid> held;
  for (int i = 0; i < 50; ++i) {
    Oid oid = picker.Acquire();
    EXPECT_LT(oid, 100u);
    EXPECT_TRUE(held.insert(oid).second) << "duplicate " << oid;
  }
  EXPECT_EQ(picker.held_count(), 50u);
}

TEST(OidPickerTest, ReleaseAllowsReuse) {
  Rng rng(2);
  OidPicker picker(1, &rng);  // single object: must recycle
  Oid first = picker.Acquire();
  EXPECT_EQ(first, 0u);
  picker.Release(first);
  EXPECT_EQ(picker.Acquire(), 0u);
}

TEST(OidPickerTest, IsHeldTracksState) {
  Rng rng(3);
  OidPicker picker(10, &rng);
  Oid oid = picker.Acquire();
  EXPECT_TRUE(picker.IsHeld(oid));
  picker.Release(oid);
  EXPECT_FALSE(picker.IsHeld(oid));
}

TEST(OidPickerTest, ExhaustsFullRange) {
  Rng rng(4);
  OidPicker picker(16, &rng);
  std::set<Oid> all;
  for (int i = 0; i < 16; ++i) all.insert(picker.Acquire());
  EXPECT_EQ(all.size(), 16u);
  EXPECT_EQ(*all.begin(), 0u);
  EXPECT_EQ(*all.rbegin(), 15u);
}

TEST(OidPickerDeathTest, ReleaseUnheldChecks) {
  Rng rng(5);
  OidPicker picker(10, &rng);
  EXPECT_DEATH(picker.Release(3), "not held");
}

TEST(OidPickerDeathTest, AcquireWhenExhaustedChecks) {
  Rng rng(6);
  OidPicker picker(2, &rng);
  picker.Acquire();
  picker.Acquire();
  EXPECT_DEATH(picker.Acquire(), "all objects");
}

}  // namespace
}  // namespace workload
}  // namespace elog
