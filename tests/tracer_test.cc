// obs::Tracer: ring-buffer wraparound, span nesting, lane registration,
// and the Chrome trace_event JSON schema (golden document + invariants).

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "db/database.h"
#include "sim/simulator.h"

namespace elog {
namespace obs {
namespace {

TEST(TracerTest, RecordsInstantAndCompleteEvents) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  const int lane = tracer.RegisterLane("test");
  EXPECT_EQ(lane, 1);  // tid 0 is the process metadata row

  sim.ScheduleAt(100, [&] {
    const SimTime begin = tracer.now();
    sim.ScheduleAt(250, [&tracer, lane, begin] {
      tracer.Complete(lane, "io", "write", begin, {{"block", 7}});
    });
    tracer.Instant(lane, "gc", "advance", {{"gen", 0}, {"used", 12}});
  });
  sim.Run();

  ASSERT_EQ(tracer.size(), 2u);
  const TraceEvent& instant = tracer.event(0);
  EXPECT_EQ(instant.phase, 'i');
  EXPECT_EQ(instant.ts, 100);
  EXPECT_STREQ(instant.name, "advance");
  EXPECT_STREQ(instant.category, "gc");
  ASSERT_EQ(instant.num_args, 2);
  EXPECT_STREQ(instant.args[1].key, "used");
  EXPECT_EQ(instant.args[1].value, 12.0);

  const TraceEvent& span = tracer.event(1);
  EXPECT_EQ(span.phase, 'X');
  EXPECT_EQ(span.ts, 100);
  EXPECT_EQ(span.dur, 150);
  EXPECT_EQ(span.tid, lane);
}

TEST(TracerTest, RegisterLaneIsIdempotentByName) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  EXPECT_EQ(tracer.RegisterLane("a"), 1);
  EXPECT_EQ(tracer.RegisterLane("b"), 2);
  EXPECT_EQ(tracer.RegisterLane("a"), 1);
  EXPECT_EQ(tracer.lanes().size(), 2u);
}

TEST(TracerTest, RingWraparoundKeepsNewestEvents) {
  sim::Simulator sim;
  Tracer tracer(&sim, TracerOptions{4});
  const int lane = tracer.RegisterLane("wrap");
  for (int i = 0; i < 10; ++i) {
    tracer.InstantAt(lane, "t", "e", i, {{"i", static_cast<double>(i)}});
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Oldest-first iteration over the survivors: events 6, 7, 8, 9.
  for (size_t i = 0; i < tracer.size(); ++i) {
    EXPECT_EQ(tracer.event(i).ts, static_cast<SimTime>(6 + i));
    EXPECT_EQ(tracer.event(i).args[0].value, static_cast<double>(6 + i));
  }
}

TEST(TracerTest, NestedSpansShareLaneAndOrderByRecording) {
  // An outer span recorded after its inner span (spans close in LIFO
  // order: the inner completes first, so it is pushed first). Perfetto
  // reconstructs nesting from containment: outer [0,100] ⊃ inner
  // [20,40]; the export must preserve recording order and both spans.
  sim::Simulator sim;
  Tracer tracer(&sim);
  const int lane = tracer.RegisterLane("nest");
  tracer.CompleteAt(lane, "txn", "inner", 20, 40);
  tracer.CompleteAt(lane, "txn", "outer", 0, 100);
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_STREQ(tracer.event(0).name, "inner");
  EXPECT_STREQ(tracer.event(1).name, "outer");
  EXPECT_LE(tracer.event(1).ts, tracer.event(0).ts);
  EXPECT_GE(tracer.event(1).ts + tracer.event(1).dur,
            tracer.event(0).ts + tracer.event(0).dur);
}

TEST(TracerTest, JsonSchemaGolden) {
  sim::Simulator sim;
  Tracer tracer(&sim);
  const int lane = tracer.RegisterLane("el");
  tracer.InstantAt(lane, "gc", "kill", 5, {{"tid", 3}});
  tracer.CompleteAt(lane, "io", "write", 10, 35, {{"block", 2.5}});
  const std::string golden =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"elog\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"el\"}},\n"
      "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"sort_index\":1}},\n"
      "{\"name\":\"kill\",\"cat\":\"gc\",\"ph\":\"i\",\"pid\":1,\"tid\":1,"
      "\"ts\":5,\"s\":\"t\",\"args\":{\"tid\":3}},\n"
      "{\"name\":\"write\",\"cat\":\"io\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":10,\"dur\":25,\"args\":{\"block\":2.5}}\n"
      "],\"dropped_events\":0}\n";
  EXPECT_EQ(tracer.ToJson(), golden);
}

TEST(TracerTest, DisabledByDefaultInDatabase) {
  db::DatabaseConfig config;
  config.workload = workload::PaperMix(0.05);
  config.workload.runtime = SecondsToSimTime(2);
  config.log.generation_blocks = {18, 12};
  db::Database database(config);
  EXPECT_EQ(database.tracer(), nullptr);
  EXPECT_EQ(database.sampler(), nullptr);
  database.Run();
}

/// End-to-end: a traced Database run produces events from every wired
/// component, in a stable lane order, without perturbing the run (the
/// tracer schedules nothing — stats match an untraced twin exactly).
TEST(TracerTest, DatabaseRunTracesAllComponentsWithoutPerturbing) {
  db::DatabaseConfig config;
  config.workload = workload::PaperMix(0.05);
  config.workload.runtime = SecondsToSimTime(10);
  config.log.generation_blocks = {18, 12};

  db::DatabaseConfig traced = config;
  traced.trace = true;
  db::Database plain_db(config);
  db::Database traced_db(traced);
  db::RunStats plain = plain_db.Run();
  db::RunStats with_trace = traced_db.Run();

  EXPECT_EQ(plain.total_committed, with_trace.total_committed);
  EXPECT_EQ(plain.records_appended, with_trace.records_appended);
  EXPECT_EQ(plain.flushes_completed, with_trace.flushes_completed);
  EXPECT_EQ(plain_db.simulator().events_processed(),
            traced_db.simulator().events_processed());

  Tracer* tracer = traced_db.tracer();
  ASSERT_NE(tracer, nullptr);
  EXPECT_GT(tracer->size(), 0u);
  const std::vector<std::string>& lanes = tracer->lanes();
  ASSERT_GE(lanes.size(), 3u);
  EXPECT_EQ(lanes[0], "log_device");
  // Device spans and workload commit spans are both present.
  bool saw_write = false;
  bool saw_commit = false;
  for (size_t i = 0; i < tracer->size(); ++i) {
    const TraceEvent& event = tracer->event(i);
    if (std::string(event.name) == "write") saw_write = true;
    if (std::string(event.name) == "commit_wait") saw_commit = true;
  }
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_commit);
}

}  // namespace
}  // namespace obs
}  // namespace elog
