// Workload trace record/replay.

#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "db/database.h"

namespace elog {
namespace workload {
namespace {

TEST(TraceFormatTest, WriteReadRoundTrip) {
  Trace trace;
  TraceEvent begin;
  begin.kind = TraceEvent::Kind::kBegin;
  begin.when = 10;
  begin.tid = 1;
  begin.lifetime = SecondsToSimTime(2);
  trace.Add(begin);
  TraceEvent update;
  update.kind = TraceEvent::Kind::kUpdate;
  update.when = 20;
  update.tid = 1;
  update.oid = 777;
  update.logged_size = 100;
  trace.Add(update);
  TraceEvent commit;
  commit.kind = TraceEvent::Kind::kCommit;
  commit.when = 30;
  commit.tid = 1;
  trace.Add(commit);

  std::stringstream stream;
  trace.Write(stream);
  Result<Trace> parsed = Trace::Read(stream);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->events(), trace.events());
}

TEST(TraceFormatTest, RejectsMalformedLines) {
  std::stringstream stream("kind,when_us,tid,lifetime_us,oid,size\n"
                           "update,1,2,3\n");
  EXPECT_FALSE(Trace::Read(stream).ok());
  std::stringstream stream2("explode,1,2,3,4,5\n");
  EXPECT_FALSE(Trace::Read(stream2).ok());
}

TEST(TraceFormatTest, EmptyInputYieldsEmptyTrace) {
  std::stringstream stream("");
  Result<Trace> parsed = Trace::Read(stream);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

/// Records a generator run against an EL manager, then replays the trace
/// against a fresh identical manager: the log traffic must be identical.
TEST(TraceReplayTest, ReplayReproducesRun) {
  Trace trace;
  int64_t recorded_writes = 0;
  {
    sim::Simulator sim;
    LogManagerOptions options;
    options.generation_blocks = {18, 12};
    options.num_objects = 10'000'000;
    disk::LogStorage storage(options.generation_blocks);
    disk::LogDevice device(&sim, &storage, options.log_write_latency,
                           nullptr);
    disk::DriveArray drives(&sim, options.num_flush_drives,
                            options.num_objects,
                            options.flush_transfer_time, nullptr);
    EphemeralLogManager manager(&sim, options, &device, &drives, nullptr);
    RecordingSink recorder(&sim, &manager, &trace);
    WorkloadSpec spec = PaperMix(0.05);
    spec.runtime = SecondsToSimTime(10);
    WorkloadGenerator generator(&sim, spec, &recorder, nullptr);
    generator.Start();
    sim.RunUntil(spec.runtime);
    recorded_writes = device.writes_completed();  // window writes only
    // Drain.
    for (int i = 0; i < 500 && generator.active() > 0; ++i) {
      manager.ForceWriteOpenBuffers();
      sim.RunUntil(sim.Now() + 100 * kMillisecond);
    }
    sim.Run();
    EXPECT_EQ(generator.committed(), 1000);
  }
  EXPECT_GT(trace.size(), 3000u);  // 1000 txns x (begin + data + commit)

  // Replay.
  {
    sim::Simulator sim;
    LogManagerOptions options;
    options.generation_blocks = {18, 12};
    options.num_objects = 10'000'000;
    disk::LogStorage storage(options.generation_blocks);
    disk::LogDevice device(&sim, &storage, options.log_write_latency,
                           nullptr);
    disk::DriveArray drives(&sim, options.num_flush_drives,
                            options.num_objects,
                            options.flush_transfer_time, nullptr);
    EphemeralLogManager manager(&sim, options, &device, &drives, nullptr);
    TraceReplayer replayer(&sim, trace, &manager);
    replayer.Start();
    sim.RunUntil(SecondsToSimTime(10));
    // Identical record stream produces identical log traffic over the
    // same window.
    EXPECT_EQ(device.writes_completed(), recorded_writes);
    sim.Run();
    manager.ForceWriteOpenBuffers();
    sim.Run();
    EXPECT_EQ(replayer.begins(), 1000);
    EXPECT_EQ(replayer.commits_durable(), 1000);
    EXPECT_EQ(replayer.skipped_after_kill(), 0);
    manager.CheckInvariants();
  }
}

TEST(TraceReplayTest, ReplayAgainstDifferentSchemeRuns) {
  // A trace recorded once can drive the FW baseline too.
  Trace trace;
  {
    sim::Simulator sim;
    LogManagerOptions options;
    options.generation_blocks = {18, 12};
    disk::LogStorage storage(options.generation_blocks);
    disk::LogDevice device(&sim, &storage, options.log_write_latency,
                           nullptr);
    disk::DriveArray drives(&sim, options.num_flush_drives,
                            options.num_objects,
                            options.flush_transfer_time, nullptr);
    EphemeralLogManager manager(&sim, options, &device, &drives, nullptr);
    RecordingSink recorder(&sim, &manager, &trace);
    WorkloadSpec spec = PaperMix(0.05);
    spec.runtime = SecondsToSimTime(5);
    WorkloadGenerator generator(&sim, spec, &recorder, nullptr);
    generator.Start();
    sim.Run();
  }
  {
    sim::Simulator sim;
    LogManagerOptions options = MakeFirewallOptions(140);
    disk::LogStorage storage(options.generation_blocks);
    disk::LogDevice device(&sim, &storage, options.log_write_latency,
                           nullptr);
    disk::DriveArray drives(&sim, options.num_flush_drives,
                            options.num_objects,
                            options.flush_transfer_time, nullptr);
    FirewallLogManager manager(&sim, options, &device, &drives, nullptr);
    TraceReplayer replayer(&sim, trace, &manager);
    replayer.Start();
    sim.Run();
    manager.ForceWriteOpenBuffers();
    sim.Run();
    EXPECT_EQ(replayer.begins(), 500);
    manager.CheckInvariants();
  }
}

}  // namespace
}  // namespace workload
}  // namespace elog
