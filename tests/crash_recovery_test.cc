// Crash/recovery property tests: at ANY crash instant, single-pass
// recovery over the durable log + stable version must reproduce exactly
// the committed state acknowledged before the crash (invariant 3 of
// DESIGN.md). Parameterized over crash times, seeds, configurations and
// torn-write injection.

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/recovery.h"

namespace elog {
namespace db {
namespace {

struct CrashCase {
  const char* name;
  std::vector<uint32_t> generation_blocks;
  bool recirculation;
  double long_fraction;
  SimTime crash_time;
  uint64_t seed;
  bool torn_write;
};

class CrashRecoveryTest : public ::testing::TestWithParam<CrashCase> {};

std::string CaseName(const ::testing::TestParamInfo<CrashCase>& info) {
  return std::string(info.param.name) + "_t" +
         std::to_string(info.param.crash_time / kMillisecond) + "ms_s" +
         std::to_string(info.param.seed) +
         (info.param.torn_write ? "_torn" : "");
}

TEST_P(CrashRecoveryTest, RecoveryReproducesAcknowledgedState) {
  const CrashCase& c = GetParam();
  DatabaseConfig config;
  config.workload = workload::PaperMix(c.long_fraction);
  config.workload.runtime = SecondsToSimTime(3600);  // crash interrupts
  config.workload.seed = c.seed;
  config.log.generation_blocks = c.generation_blocks;
  config.log.recirculation = c.recirculation;

  Database database(config);
  Database::CrashImage image =
      database.RunUntilCrash(c.crash_time, c.torn_write);

  RecoveryResult result = RecoveryManager::Recover(image.log, image.stable);

  // 1. Exactly the acknowledged updates are recovered: same object set,
  //    same version, same value.
  for (const auto& [oid, expected] : image.expected_state) {
    auto it = result.state.find(oid);
    ASSERT_NE(it, result.state.end())
        << "committed object " << oid << " lost (expected lsn "
        << expected.lsn << ")";
    EXPECT_EQ(it->second.lsn, expected.lsn) << "object " << oid;
    EXPECT_EQ(it->second.value_digest, expected.value_digest)
        << "object " << oid;
  }
  // 2. No uncommitted effects: every recovered object matches the shadow.
  for (const auto& [oid, recovered] : result.state) {
    auto it = image.expected_state.find(oid);
    ASSERT_NE(it, image.expected_state.end())
        << "object " << oid << " recovered (lsn " << recovered.lsn
        << ") but never acknowledged";
    EXPECT_EQ(recovered.lsn, it->second.lsn);
  }
  // 3. Any transaction whose COMMIT is visible in the log must be one the
  //    system acknowledged (group commit acks at durability).
  for (TxId tid : result.committed_in_log) {
    EXPECT_TRUE(image.committed_tids.count(tid))
        << "COMMIT of unacknowledged transaction " << tid << " in log";
  }
}

std::vector<CrashCase> MakeCases() {
  std::vector<CrashCase> cases;
  // EL with recirculation — the fully crash-safe configuration — across
  // crash times covering cold start, steady state, and heavy history.
  for (SimTime crash : {50 * kMillisecond, 500 * kMillisecond,
                        SecondsToSimTime(2), SecondsToSimTime(7),
                        SecondsToSimTime(20)}) {
    for (uint64_t seed : {1ull, 42ull}) {
      cases.push_back({"el_recirc", {18, 12}, true, 0.05, crash, seed,
                       /*torn_write=*/false});
    }
  }
  // A dense sweep across one group-commit/flush period: crash instants
  // offset by sub-block-fill amounts around t=8s.
  for (int offset_ms = 0; offset_ms < 100; offset_ms += 9) {
    cases.push_back({"el_dense", {18, 12}, true, 0.05,
                     SecondsToSimTime(8) + offset_ms * kMillisecond, 13,
                     offset_ms % 2 == 1});
  }
  // Torn final write.
  cases.push_back({"el_recirc", {18, 12}, true, 0.05,
                   SecondsToSimTime(5) + 7 * kMillisecond, 7, true});
  cases.push_back({"el_recirc", {18, 12}, true, 0.05,
                   SecondsToSimTime(12) + 3 * kMillisecond, 9, true});
  // Heavier long-transaction mix (40%: ~200 concurrent 10 s transactions
  // hold ~41 blocks of live records, so the chain needs real capacity —
  // an undersized log would take unsafe commit-window kills and the
  // recovery property would hold only by crash-timing luck).
  cases.push_back(
      {"el_heavy", {18, 56}, true, 0.40, SecondsToSimTime(15), 3, false});
  cases.push_back(
      {"el_tight", {18, 8}, true, 0.05, SecondsToSimTime(15), 5, true});
  // Three generations.
  cases.push_back(
      {"el_3gen", {12, 8, 8}, true, 0.20, SecondsToSimTime(10), 11, false});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrashRecoveryTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

}  // namespace
}  // namespace db
}  // namespace elog
