// EL–FW hybrid (§6): per-queue firewalls, whole-transaction regeneration,
// flat per-transaction memory.

#include "core/hybrid_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "db/recovery.h"
#include "db/stable_store.h"
#include "workload/generator.h"

namespace elog {
namespace {

class RecordingKillListener : public KillListener {
 public:
  void OnTransactionKilled(TxId tid) override { killed.push_back(tid); }
  std::vector<TxId> killed;
};

class HybridManagerTest : public ::testing::Test {
 protected:
  void Build(LogManagerOptions options) {
    options.num_objects = 1000;
    storage_ = std::make_unique<disk::LogStorage>(options.generation_blocks);
    device_ = std::make_unique<disk::LogDevice>(
        &sim_, storage_.get(), options.log_write_latency, nullptr);
    drives_ = std::make_unique<disk::DriveArray>(
        &sim_, options.num_flush_drives, options.num_objects,
        options.flush_transfer_time, nullptr);
    manager_ = std::make_unique<HybridLogManager>(
        &sim_, options, device_.get(), drives_.get(), nullptr);
    manager_->set_kill_listener(&kills_);
    manager_->set_flush_apply_hook(
        [this](Oid, Lsn, uint64_t) { ++flushes_; });
  }

  static LogManagerOptions TwoGen(uint32_t gen0 = 6, uint32_t gen1 = 8) {
    LogManagerOptions options;
    options.generation_blocks = {gen0, gen1};
    return options;
  }

  TxId Begin(SimTime lifetime = SecondsToSimTime(1)) {
    workload::TransactionType type;
    type.lifetime = lifetime;
    return manager_->BeginTransaction(type);
  }

  void Commit(TxId tid) {
    manager_->Commit(tid, [this](TxId id) { acked_.push_back(id); });
  }

  sim::Simulator sim_;
  std::unique_ptr<disk::LogStorage> storage_;
  std::unique_ptr<disk::LogDevice> device_;
  std::unique_ptr<disk::DriveArray> drives_;
  std::unique_ptr<HybridLogManager> manager_;
  RecordingKillListener kills_;
  std::vector<TxId> acked_;
  int flushes_ = 0;
};

TEST_F(HybridManagerTest, LifecycleBasics) {
  Build(TwoGen());
  TxId tid = Begin();
  manager_->WriteUpdate(tid, 1, 100);
  manager_->WriteUpdate(tid, 2, 100);
  EXPECT_EQ(manager_->table_size(), 1u);
  EXPECT_EQ(manager_->records_appended(), 3);
  Commit(tid);
  manager_->ForceWriteOpenBuffers();
  sim_.Run();
  ASSERT_EQ(acked_.size(), 1u);
  EXPECT_EQ(flushes_, 2);
  EXPECT_EQ(manager_->table_size(), 0u);  // released after flushing
  manager_->CheckInvariants();
}

TEST_F(HybridManagerTest, MemoryIsFlatPerTransaction) {
  // The §6 motivation: per-transaction cost does not grow with the
  // number of updated objects (EL's does).
  Build(TwoGen(18, 18));
  TxId tid = Begin();
  double before = manager_->modeled_memory_bytes();
  for (int i = 0; i < 50; ++i) manager_->WriteUpdate(tid, i, 100);
  EXPECT_DOUBLE_EQ(manager_->modeled_memory_bytes(), before);
}

TEST_F(HybridManagerTest, AbortReleasesEntry) {
  Build(TwoGen());
  TxId tid = Begin();
  manager_->WriteUpdate(tid, 1, 100);
  manager_->Abort(tid);
  EXPECT_EQ(manager_->table_size(), 0u);
  sim_.Run();
  EXPECT_EQ(flushes_, 0);
  manager_->CheckInvariants();
}

TEST_F(HybridManagerTest, MigrationRegeneratesWholeTransaction) {
  Build(TwoGen(4, 12));
  TxId keeper = Begin(SecondsToSimTime(100));
  for (int i = 0; i < 3; ++i) manager_->WriteUpdate(keeper, 900 + i, 100);
  // Flood generation 0 with committing traffic so the keeper's oldest
  // record reaches the head.
  for (int round = 0; round < 30; ++round) {
    TxId tid = Begin();
    manager_->WriteUpdate(tid, round, 100);
    Commit(tid);
    manager_->ForceWriteOpenBuffers();
    sim_.Run();
  }
  EXPECT_GT(manager_->migrations(), 0);
  // Regeneration rewrites all records, not just the head block's: at
  // least BEGIN + 3 data records per migration of the keeper.
  EXPECT_GE(manager_->records_regenerated(), 4);
  EXPECT_TRUE(kills_.killed.empty());
  EXPECT_GE(manager_->table_size(), 1u);
  manager_->CheckInvariants();
}

TEST_F(HybridManagerTest, NoRecirculationKillsAtLastHead) {
  LogManagerOptions options;
  options.generation_blocks = {6};
  options.recirculation = false;
  Build(options);
  TxId victim = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(victim, 999, 100);
  TxId flooder = Begin(SecondsToSimTime(100));
  for (int i = 0; i < 200 && kills_.killed.empty(); ++i) {
    manager_->WriteUpdate(flooder, i, 100);
  }
  ASSERT_FALSE(kills_.killed.empty());
  EXPECT_EQ(kills_.killed[0], victim);
  manager_->CheckInvariants();
}

TEST_F(HybridManagerTest, RecirculationMigratesWithinLastGeneration) {
  LogManagerOptions options;
  options.generation_blocks = {6};
  options.recirculation = true;
  Build(options);
  TxId keeper = Begin(SecondsToSimTime(100));
  manager_->WriteUpdate(keeper, 900, 100);
  for (int round = 0; round < 40; ++round) {
    TxId tid = Begin();
    manager_->WriteUpdate(tid, round, 100);
    Commit(tid);
    manager_->ForceWriteOpenBuffers();
    sim_.Run();
  }
  EXPECT_TRUE(kills_.killed.empty());
  EXPECT_GT(manager_->migrations(), 0);
  manager_->CheckInvariants();
}

TEST_F(HybridManagerTest, CrashRecoveryReproducesAcknowledgedState) {
  // The hybrid retains committed-unflushed transactions in the log by
  // whole-transaction migration, so recovery from any crash instant must
  // reproduce exactly the acknowledged state — same property as EL.
  // Pressured but not wedged: kills of still-active transactions are
  // fine (they never acked), but the unsafe commit-window path must not
  // fire — the assertion below pins that.
  LogManagerOptions options = TwoGen(12, 32);
  options.num_objects = 1000;
  options.recirculation = true;
  options.flush_transfer_time = 80 * kMillisecond;  // flushes lag
  Build(options);

  db::StableStore stable;
  manager_->set_flush_apply_hook([&](Oid oid, Lsn lsn, uint64_t digest) {
    stable.ApplyFlush(oid, lsn, digest);
  });
  std::unordered_map<Oid, db::ObjectVersion> shadow;
  manager_->set_commit_hook(
      [&](TxId, const std::vector<wal::LogRecord>& updates) {
        for (const wal::LogRecord& record : updates) {
          db::ObjectVersion& version = shadow[record.oid];
          if (record.lsn > version.lsn) {
            version.lsn = record.lsn;
            version.value_digest = record.value_digest;
          }
        }
      });

  // 40 TPS x 2.1 updates = 84 updates/s against 100 flushes/s capacity:
  // a real backlog, but one that drains — committed records are never
  // forced out of the log before their flushes land.
  workload::WorkloadSpec spec = workload::PaperMix(0.10);
  spec.runtime = SecondsToSimTime(3600);
  spec.num_objects = 1000;
  spec.arrival_rate_tps = 40;
  workload::WorkloadGenerator generator(&sim_, spec, manager_.get(),
                                        nullptr);
  class Relay : public KillListener {
   public:
    explicit Relay(workload::WorkloadGenerator* g) : generator(g) {}
    void OnTransactionKilled(TxId tid) override {
      generator->NotifyKilled(tid);
    }
    workload::WorkloadGenerator* generator;
  } relay(&generator);
  manager_->set_kill_listener(&relay);
  generator.Start();

  for (SimTime crash : {SecondsToSimTime(2), SecondsToSimTime(5),
                        SecondsToSimTime(11)}) {
    sim_.RunUntil(crash);
    manager_->CheckInvariants();
    ASSERT_EQ(manager_->unsafe_committing_kills(), 0)
        << "config saturated: the property below only holds without "
           "commit-window kills";
    ASSERT_EQ(manager_->forced_releases(), 0)
        << "config saturated: committed records were evicted unflushed";
    disk::LogStorage log_image = storage_->Clone();
    db::StableStore stable_image = stable.Clone();
    db::RecoveryResult result =
        db::RecoveryManager::Recover(log_image, stable_image);
    ASSERT_EQ(result.state.size(), shadow.size()) << "at t=" << crash;
    for (const auto& [oid, expected] : shadow) {
      auto it = result.state.find(oid);
      ASSERT_NE(it, result.state.end()) << "lost object " << oid;
      EXPECT_EQ(it->second.lsn, expected.lsn) << "object " << oid;
      EXPECT_EQ(it->second.value_digest, expected.value_digest);
    }
  }
}

TEST_F(HybridManagerTest, EndToEndWorkloadRuns) {
  Build(TwoGen(18, 18));
  workload::WorkloadSpec spec = workload::PaperMix(0.05);
  spec.runtime = SecondsToSimTime(10);
  spec.num_objects = 1000;
  workload::WorkloadGenerator generator(&sim_, spec, manager_.get(),
                                        nullptr);
  // Wire kills back to the generator.
  class Relay : public KillListener {
   public:
    explicit Relay(workload::WorkloadGenerator* g) : generator(g) {}
    void OnTransactionKilled(TxId tid) override {
      generator->NotifyKilled(tid);
    }
    workload::WorkloadGenerator* generator;
  } relay(&generator);
  manager_->set_kill_listener(&relay);

  generator.Start();
  sim_.RunUntil(spec.runtime);
  // Drain.
  for (int i = 0; i < 200 && generator.active() > 0; ++i) {
    manager_->ForceWriteOpenBuffers();
    sim_.RunUntil(sim_.Now() + 100 * kMillisecond);
  }
  sim_.Run();
  EXPECT_EQ(generator.started(), 1000);
  EXPECT_EQ(generator.killed(), 0);
  EXPECT_EQ(generator.committed(), 1000);
  manager_->CheckInvariants();
}

}  // namespace
}  // namespace elog
