#include "core/options.h"

#include <gtest/gtest.h>

#include "core/fw_manager.h"

namespace elog {
namespace {

TEST(OptionsTest, DefaultsMatchPaperFixedParameters) {
  LogManagerOptions options;
  EXPECT_EQ(options.min_free_blocks, 2u);            // k = 2
  EXPECT_EQ(options.buffers_per_generation, 4u);     // 4 buffers
  EXPECT_EQ(options.log_write_latency, 15 * kMillisecond);
  EXPECT_EQ(options.num_flush_drives, 10u);
  EXPECT_EQ(options.flush_transfer_time, 25 * kMillisecond);
  EXPECT_EQ(options.num_objects, 10'000'000u);
  EXPECT_EQ(options.el_bytes_per_transaction, 40u);
  EXPECT_EQ(options.el_bytes_per_object, 40u);
  EXPECT_EQ(options.fw_bytes_per_transaction, 22u);
  EXPECT_TRUE(options.Validate().ok());
}

TEST(OptionsTest, RejectsEmptyGenerations) {
  LogManagerOptions options;
  options.generation_blocks = {};
  EXPECT_FALSE(options.Validate().ok());
}

TEST(OptionsTest, RejectsTooSmallGeneration) {
  LogManagerOptions options;
  options.generation_blocks = {18, 3};  // needs >= k + 2 = 4
  EXPECT_FALSE(options.Validate().ok());
  options.generation_blocks = {18, 4};
  EXPECT_TRUE(options.Validate().ok());
}

TEST(OptionsTest, RejectsSingleBuffer) {
  LogManagerOptions options;
  options.buffers_per_generation = 1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(OptionsTest, RejectsBadLatencies) {
  LogManagerOptions options;
  options.log_write_latency = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.flush_transfer_time = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(OptionsTest, RejectsIndivisibleObjects) {
  LogManagerOptions options;
  options.num_objects = 10'000'001;  // not divisible by 10 drives
  EXPECT_FALSE(options.Validate().ok());
}

TEST(OptionsTest, RejectsBadHintTarget) {
  LogManagerOptions options;
  options.lifetime_hints = true;
  options.hint_target_generation = 5;
  EXPECT_FALSE(options.Validate().ok());
  options.hint_target_generation = 1;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(OptionsTest, TotalsAndCounts) {
  LogManagerOptions options;
  options.generation_blocks = {18, 16};
  EXPECT_EQ(options.num_generations(), 2u);
  EXPECT_EQ(options.total_blocks(), 34u);
}

TEST(FirewallOptionsTest, ConfiguresSingleQueue) {
  LogManagerOptions base;
  base.flush_transfer_time = 45 * kMillisecond;
  LogManagerOptions fw = MakeFirewallOptions(123, base);
  EXPECT_EQ(fw.generation_blocks, (std::vector<uint32_t>{123}));
  EXPECT_FALSE(fw.recirculation);
  EXPECT_TRUE(fw.release_on_commit);
  EXPECT_FALSE(fw.lifetime_hints);
  // Other knobs inherited.
  EXPECT_EQ(fw.flush_transfer_time, 45 * kMillisecond);
  EXPECT_TRUE(fw.Validate().ok());
}

TEST(RetryPolicyTest, DefaultsMatchHistoricalLogWriteRetry) {
  // The unified policy must be bit-for-bit the constants it replaced:
  // 8 attempts, 5 ms base, doubling backoff, no jitter, no deadline.
  RetryPolicy policy;
  EXPECT_EQ(policy.max_attempts, 8u);
  EXPECT_EQ(policy.base_backoff, 5 * kMillisecond);
  EXPECT_DOUBLE_EQ(policy.growth, 2.0);
  EXPECT_DOUBLE_EQ(policy.jitter, 0.0);
  EXPECT_EQ(policy.deadline, 0);
  EXPECT_TRUE(policy.Validate().ok());
}

TEST(RetryPolicyTest, DoublingBackoffIsShiftIdentical) {
  // growth == 2.0 must reproduce the historical integer expression
  // `base << min(attempt - 1, 16)` exactly — no floating-point detour.
  RetryPolicy policy;
  EXPECT_EQ(policy.BackoffForAttempt(0), 0);
  for (uint32_t attempt = 1; attempt <= 20; ++attempt) {
    const uint32_t exponent = attempt - 1 < 16 ? attempt - 1 : 16;
    EXPECT_EQ(policy.BackoffForAttempt(attempt),
              policy.base_backoff << exponent)
        << "attempt " << attempt;
  }
}

TEST(RetryPolicyTest, ConstantBackoffForFlushDrives) {
  RetryPolicy policy;
  policy.growth = 1.0;
  for (uint32_t attempt = 1; attempt <= 10; ++attempt) {
    EXPECT_EQ(policy.BackoffForAttempt(attempt), policy.base_backoff);
  }
}

TEST(RetryPolicyTest, JitterStaysWithinBand) {
  RetryPolicy policy;
  policy.jitter = 0.25;
  Rng rng(99);
  for (uint32_t attempt = 1; attempt <= 6; ++attempt) {
    const SimTime nominal = policy.base_backoff << (attempt - 1);
    const SimTime drawn = policy.BackoffForAttempt(attempt, &rng);
    EXPECT_GE(drawn, static_cast<SimTime>(0.75 * nominal));
    EXPECT_LE(drawn, static_cast<SimTime>(1.25 * nominal));
  }
  // No rng supplied: jitter silently disabled, nominal value returned.
  EXPECT_EQ(policy.BackoffForAttempt(1), policy.base_backoff);
}

TEST(RetryPolicyTest, ValidateRejectsBadKnobs) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.base_backoff = -1;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.growth = 0.5;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.jitter = 1.5;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.deadline = -1;
  EXPECT_FALSE(policy.Validate().ok());
}

}  // namespace
}  // namespace elog
