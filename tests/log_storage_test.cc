#include "disk/log_storage.h"

#include <gtest/gtest.h>

namespace elog {
namespace disk {
namespace {

wal::BlockImage MakeImage(Lsn lsn) {
  return wal::EncodeBlock(0, lsn, {wal::LogRecord::MakeBegin(1, lsn)});
}

TEST(LogStorageTest, FreshSlotsUnwritten) {
  LogStorage storage({4, 2});
  EXPECT_EQ(storage.num_generations(), 2u);
  EXPECT_EQ(storage.generation_size(0), 4u);
  EXPECT_EQ(storage.generation_size(1), 2u);
  EXPECT_EQ(storage.total_blocks(), 6u);
  EXPECT_FALSE(storage.IsWritten({0, 0}));
  EXPECT_EQ(storage.Get({1, 1}), nullptr);
}

TEST(LogStorageTest, PutThenGet) {
  LogStorage storage({3});
  wal::BlockImage image = MakeImage(7);
  storage.Put({0, 1}, image);
  ASSERT_TRUE(storage.IsWritten({0, 1}));
  EXPECT_EQ(*storage.Get({0, 1}), image);
  EXPECT_FALSE(storage.IsWritten({0, 0}));
}

TEST(LogStorageTest, OverwriteReplaces) {
  LogStorage storage({2});
  storage.Put({0, 0}, MakeImage(1));
  wal::BlockImage second = MakeImage(2);
  storage.Put({0, 0}, second);
  EXPECT_EQ(*storage.Get({0, 0}), second);
}

TEST(LogStorageTest, GenerationBlocksInSlotOrder) {
  LogStorage storage({3});
  storage.Put({0, 2}, MakeImage(9));
  auto blocks = storage.GenerationBlocks(0);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0], nullptr);
  EXPECT_EQ(blocks[1], nullptr);
  ASSERT_NE(blocks[2], nullptr);
}

TEST(LogStorageTest, CloneIsDeep) {
  LogStorage storage({2});
  storage.Put({0, 0}, MakeImage(1));
  LogStorage snapshot = storage.Clone();
  storage.Put({0, 0}, MakeImage(2));
  storage.Put({0, 1}, MakeImage(3));
  // The snapshot still sees the old state.
  ASSERT_TRUE(snapshot.IsWritten({0, 0}));
  auto decoded = wal::DecodeBlock(*snapshot.Get({0, 0}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->write_seq, 1u);
  EXPECT_FALSE(snapshot.IsWritten({0, 1}));
}

TEST(LogStorageTest, CorruptBlockFailsDecode) {
  LogStorage storage({1});
  storage.Put({0, 0}, MakeImage(1));
  storage.CorruptBlock({0, 0});
  ASSERT_TRUE(storage.IsWritten({0, 0}));
  EXPECT_FALSE(wal::DecodeBlock(*storage.Get({0, 0})).ok());
}

TEST(LogStorageDeathTest, OutOfRangeChecks) {
  LogStorage storage({2});
  EXPECT_DEATH(storage.Put({1, 0}, {}), "");
  EXPECT_DEATH(storage.Put({0, 2}, {}), "");
  EXPECT_DEATH((void)storage.generation_size(5), "");
}

TEST(LogStorageDeathTest, EmptyGenerationRejected) {
  EXPECT_DEATH(LogStorage({3, 0}), "at least one block");
}

}  // namespace
}  // namespace disk
}  // namespace elog
